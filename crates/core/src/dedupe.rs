//! Whole-database object distinction: resolve *every* name at once.
//!
//! The paper evaluates DISTINCT name-by-name; a production deployment
//! wants the closure of that process — one pass over the reference
//! relation that assigns every reference a global entity id, splitting
//! each shared name into as many entities as the linkage evidence
//! supports. Names are independent (references with different names can
//! never corefer in this problem setting), so the pass is a per-name
//! clustering loop with consolidated bookkeeping.

use crate::pipeline::Distinct;
use relstore::{FxHashMap, TupleRef, Value};
use serde::{Deserialize, Serialize};

/// Options for a whole-database resolution pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DedupeOptions {
    /// Names with fewer references than this are assigned one entity
    /// without clustering (a single reference cannot be split; the paper
    /// likewise drops sparsely-referenced authors from evaluation).
    pub min_refs_to_cluster: usize,
    /// Skip names with more references than this (safety valve: pairwise
    /// profile comparison is quadratic per name).
    pub max_refs_per_name: usize,
    /// Worker threads for the profile-precomputation phase (0 or 1 runs
    /// serially; results are identical either way).
    pub threads: usize,
}

impl Default for DedupeOptions {
    fn default() -> Self {
        DedupeOptions {
            min_refs_to_cluster: 2,
            max_refs_per_name: 2_000,
            threads: 1,
        }
    }
}

/// Result of resolving one name within a pass.
#[derive(Debug, Clone)]
pub struct NameResolution {
    /// The shared name.
    pub name: String,
    /// Number of references.
    pub refs: usize,
    /// Number of entities the references were split into.
    pub entities: usize,
}

/// A global entity assignment over the reference relation.
#[derive(Debug, Clone, Default)]
pub struct EntityAssignment {
    /// Entity id per reference.
    entity_of: FxHashMap<TupleRef, usize>,
    /// Per-name resolution summaries, in processing order.
    pub resolutions: Vec<NameResolution>,
    /// Names skipped because they exceeded `max_refs_per_name`.
    pub skipped: Vec<String>,
    next_entity: usize,
}

impl EntityAssignment {
    /// The entity id of a reference, if it was assigned.
    pub fn entity(&self, r: TupleRef) -> Option<usize> {
        self.entity_of.get(&r).copied()
    }

    /// Number of assigned references.
    pub fn assigned_refs(&self) -> usize {
        self.entity_of.len()
    }

    /// Total number of entities.
    pub fn entity_count(&self) -> usize {
        self.next_entity
    }

    /// Names whose references were split into more than one entity.
    pub fn split_names(&self) -> Vec<&NameResolution> {
        self.resolutions.iter().filter(|r| r.entities > 1).collect()
    }

    /// References grouped by entity id.
    pub fn groups(&self) -> Vec<Vec<TupleRef>> {
        let mut out = vec![Vec::new(); self.next_entity];
        let mut items: Vec<(&TupleRef, &usize)> = self.entity_of.iter().collect();
        items.sort();
        for (&r, &e) in items {
            out[e].push(r);
        }
        out
    }
}

impl Distinct {
    /// Resolve every name in the reference relation, producing a global
    /// [`EntityAssignment`]. Deterministic: names are processed in the
    /// order of their first appearance in the relation.
    pub fn resolve_all(&self, opts: &DedupeOptions) -> EntityAssignment {
        // Collect references per name in first-appearance order.
        let rel = self.catalog().relation(self.paths().start);
        let attr = self.ref_attr_index();
        let mut order: Vec<Value> = Vec::new();
        let mut by_name: FxHashMap<Value, Vec<TupleRef>> = FxHashMap::default();
        // distinct-lint: allow(D104, reason="single grouping scan over the reference relation; per-name budget charging starts in the resolve stage below, which dominates")
        for (tid, t) in rel.iter() {
            let v = t.get(attr);
            if v.is_null() {
                continue;
            }
            let entry = by_name.entry(v.clone()).or_default();
            if entry.is_empty() {
                order.push(v.clone());
            }
            entry.push(TupleRef::new(self.paths().start, tid));
        }

        // Warm the profile cache for every reference that will be
        // clustered, optionally in parallel.
        if opts.threads > 1 {
            let clusterable: Vec<TupleRef> = order
                .iter()
                .filter(|name| {
                    let n = by_name[*name].len();
                    n >= opts.min_refs_to_cluster && n <= opts.max_refs_per_name
                })
                .flat_map(|name| by_name[name].iter().copied())
                .collect();
            self.precompute_profiles(&clusterable, opts.threads);
        }

        let mut assignment = EntityAssignment::default();
        for name in order {
            let refs = &by_name[&name];
            let display = name.to_string();
            if refs.len() > opts.max_refs_per_name {
                assignment.skipped.push(display);
                continue;
            }
            if refs.len() < opts.min_refs_to_cluster {
                let e = assignment.next_entity;
                assignment.next_entity += 1;
                for &r in refs {
                    assignment.entity_of.insert(r, e);
                }
                assignment.resolutions.push(NameResolution {
                    name: display,
                    refs: refs.len(),
                    entities: 1,
                });
                continue;
            }
            let clustering = self
                .resolve(&crate::request::ResolveRequest::new(refs).threads(opts.threads))
                .clustering;
            let k = clustering.cluster_count();
            let base = assignment.next_entity;
            assignment.next_entity += k;
            for (&r, &label) in refs.iter().zip(&clustering.labels) {
                assignment.entity_of.insert(r, base + label);
            }
            assignment.resolutions.push(NameResolution {
                name: display,
                refs: refs.len(),
                entities: k,
            });
        }
        assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DistinctConfig, TrainingConfig};
    use datagen::{to_catalog, AmbiguousSpec, World, WorldConfig};

    fn engine_and_truth() -> (Distinct, datagen::DblpDataset) {
        let mut config = WorldConfig::tiny(7);
        config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![8, 6])];
        let d = to_catalog(&World::generate(config)).unwrap();
        let cfg = DistinctConfig {
            training: TrainingConfig {
                positives: 60,
                negatives: 60,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", cfg).unwrap();
        engine.train().unwrap();
        (engine, d)
    }

    #[test]
    fn every_reference_is_assigned_exactly_once() {
        let (engine, d) = engine_and_truth();
        let assignment = engine.resolve_all(&DedupeOptions::default());
        let publish = d.catalog.relation(d.publish);
        assert_eq!(assignment.assigned_refs(), publish.len());
        // Groups partition the reference set.
        let total: usize = assignment.groups().iter().map(Vec::len).sum();
        assert_eq!(total, publish.len());
        assert!(assignment.skipped.is_empty());
    }

    #[test]
    fn same_name_refs_share_name_and_entities_respect_names() {
        // References with different names can never share an entity.
        let (engine, d) = engine_and_truth();
        let assignment = engine.resolve_all(&DedupeOptions::default());
        for group in assignment.groups() {
            let names: std::collections::HashSet<String> = group
                .iter()
                .map(|&r| d.catalog.value(r, 0).to_string())
                .collect();
            assert!(names.len() <= 1, "entity spans names: {names:?}");
        }
    }

    #[test]
    fn planted_name_is_split() {
        let (engine, _d) = engine_and_truth();
        let assignment = engine.resolve_all(&DedupeOptions::default());
        let wei = assignment
            .resolutions
            .iter()
            .find(|r| r.name == "Wei Wang")
            .expect("Wei Wang resolved");
        assert_eq!(wei.refs, 14);
        assert!(wei.entities >= 2, "planted ambiguity not split");
        assert!(!assignment.split_names().is_empty());
    }

    #[test]
    fn entity_count_bounds() {
        let (engine, d) = engine_and_truth();
        let assignment = engine.resolve_all(&DedupeOptions::default());
        let names = d.catalog.relation(d.authors).len();
        // At least one entity per name, at most one per reference.
        assert!(assignment.entity_count() >= names);
        assert!(assignment.entity_count() <= assignment.assigned_refs());
    }

    #[test]
    fn max_refs_safety_valve() {
        let (engine, _) = engine_and_truth();
        let opts = DedupeOptions {
            max_refs_per_name: 5,
            ..Default::default()
        };
        let assignment = engine.resolve_all(&opts);
        assert!(assignment.skipped.contains(&"Wei Wang".to_string()));
        // Skipped references are not assigned.
        for r in &assignment.resolutions {
            assert!(r.refs <= 5);
        }
    }

    #[test]
    fn deterministic() {
        let (engine, _) = engine_and_truth();
        let a = engine.resolve_all(&DedupeOptions::default());
        let b = engine.resolve_all(&DedupeOptions::default());
        assert_eq!(a.entity_count(), b.entity_count());
        assert_eq!(a.groups(), b.groups());
    }

    #[test]
    fn parallel_precompute_matches_serial() {
        let (engine, _) = engine_and_truth();
        let serial = engine.resolve_all(&DedupeOptions::default());
        // A fresh engine with a cold cache, warmed by 4 threads.
        let (engine2, _) = engine_and_truth();
        let parallel = engine2.resolve_all(&DedupeOptions {
            threads: 4,
            ..Default::default()
        });
        assert_eq!(serial.entity_count(), parallel.entity_count());
        assert_eq!(serial.groups(), parallel.groups());
    }
}

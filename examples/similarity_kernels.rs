//! Selecting the similarity kernel: pruned-default resolve vs explicit
//! `Exact`, kernel-unit accounting, and builder validation — the
//! `Resemblance` API (DESIGN.md §15) through the public crate surface.

use datagen::{AmbiguousSpec, World, WorldConfig};
use distinct::{Distinct, DistinctConfig, Resemblance, ResolveRequest, SketchConfig};

fn main() {
    let mut config = WorldConfig::tiny(3);
    config.n_authors = 120;
    config.n_venues = 12;
    config.n_communities = 5;
    config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![6, 4])];
    let d = datagen::to_catalog(&World::generate(config)).expect("world");
    let engine = Distinct::prepare(&d.catalog, "Publish", "author", DistinctConfig::default())
        .expect("prepare");
    let refs = &d.truths[0].refs;

    // Default request runs the pruned kernel.
    let req = ResolveRequest::new(refs).threads(8);
    assert!(matches!(
        req.similarity_kernel(),
        Resemblance::Pruned { .. }
    ));
    let pruned = engine.resolve(&req);
    assert!(pruned.degraded.is_none());
    let exec = pruned.exec;
    assert_eq!(exec.pairs_pruned + exec.pairs_exact, exec.pairs_total);
    assert!(exec.pairs_total > 0 && exec.pairs_pruned > 0);

    // Exact is one builder call away and must agree label for label.
    let exact = engine.resolve(
        &ResolveRequest::new(refs)
            .threads(8)
            .similarity(Resemblance::Exact)
            .expect("Exact validates"),
    );
    assert_eq!(exact.clustering.labels, pruned.clustering.labels);
    assert_eq!(
        exact.clustering.dendrogram.merges(),
        pruned.clustering.dendrogram.merges()
    );
    assert_eq!(exact.exec.pairs_pruned, 0);

    // Invalid sketch parameters surface as typed errors at build time.
    let err = ResolveRequest::new(refs)
        .similarity(Resemblance::Pruned {
            sketch: SketchConfig {
                prefix_len: 0,
                minhash_bits: 9,
            },
        })
        .unwrap_err();
    println!("rejected config: {err}");
    println!(
        "pruned kernel: {} / {} units pruned ({:.1}%), labels identical to Exact across {} refs",
        exec.pairs_pruned,
        exec.pairs_total,
        100.0 * exec.pairs_pruned as f64 / exec.pairs_total as f64,
        refs.len()
    );
}

//! The checked-in debt baseline (`lint.toml`).
//!
//! The baseline is a ratchet with exact-count semantics per `(lint, file)`:
//! more findings than baselined means new debt (fail), fewer means the
//! baseline is stale and must be regenerated (also fail, so the recorded
//! debt can only shrink deliberately). `--fix-baseline` rewrites the file
//! from the current findings.
//!
//! The parser is a tiny hand-rolled subset of TOML — `[[entry]]` tables
//! with `key = "string"` / `key = integer` pairs — because this crate is
//! dependency-free by design.

use crate::catalog::{Finding, LintId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One baselined debt bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Which lint.
    pub id: LintId,
    /// Workspace-relative file.
    pub file: String,
    /// Exact number of findings tolerated in that file.
    pub count: usize,
}

/// The whole baseline, keyed for exact-count comparison.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(id, file) -> count`, sorted for stable serialization.
    pub entries: BTreeMap<(LintId, String), usize>,
}

/// What comparing current findings against the baseline produced.
#[derive(Debug, Clone, Default)]
pub struct Diff {
    /// Buckets with more findings than baselined (new debt) — the excess
    /// findings themselves, to report precisely.
    pub new_debt: Vec<Finding>,
    /// Buckets with fewer findings than baselined (stale entries).
    pub stale: Vec<(LintId, String, usize, usize)>,
}

impl Diff {
    /// Clean means the run matches the baseline exactly.
    pub fn is_clean(&self) -> bool {
        self.new_debt.is_empty() && self.stale.is_empty()
    }
}

impl Baseline {
    /// Parse the baseline file. Unknown keys are rejected so typos cannot
    /// silently widen the ratchet.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let mut out = Baseline::default();
        let mut cur: Option<(Option<LintId>, Option<String>, Option<usize>)> = None;
        let mut flush = |cur: &mut Option<(Option<LintId>, Option<String>, Option<usize>)>|
         -> Result<(), String> {
            if let Some((id, file, count)) = cur.take() {
                let id = id.ok_or("entry missing `id`")?;
                let file = file.ok_or("entry missing `file`")?;
                let count = count.ok_or("entry missing `count`")?;
                if count == 0 {
                    return Err(format!("entry {id} {file} has count = 0; delete it"));
                }
                if out.entries.insert((id, file.clone()), count).is_some() {
                    return Err(format!("duplicate entry for {id} {file}"));
                }
            }
            Ok(())
        };
        for (lineno, raw) in src.lines().enumerate() {
            let line = raw.trim();
            let at = |m: &str| format!("lint.toml:{}: {m}", lineno + 1);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[entry]]" {
                flush(&mut cur).map_err(|e| at(&e))?;
                cur = Some((None, None, None));
                continue;
            }
            let Some((key, val)) = line.split_once('=') else {
                return Err(at(&format!("unrecognized line `{line}`")));
            };
            let (key, val) = (key.trim(), val.trim());
            let Some(slot) = cur.as_mut() else {
                return Err(at("key outside any [[entry]] table"));
            };
            match key {
                "id" => {
                    let s = unquote(val).map_err(|e| at(&e))?;
                    let id =
                        LintId::parse(&s).ok_or_else(|| at(&format!("unknown lint id `{s}`")))?;
                    slot.0 = Some(id);
                }
                "file" => slot.1 = Some(unquote(val).map_err(|e| at(&e))?),
                "count" => {
                    slot.2 = Some(val.parse::<usize>().map_err(|_| {
                        at(&format!(
                            "count must be a non-negative integer, got `{val}`"
                        ))
                    })?)
                }
                other => return Err(at(&format!("unknown key `{other}`"))),
            }
        }
        flush(&mut cur)?;
        Ok(out)
    }

    /// Serialize back to the canonical `lint.toml` text.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "# distinct-lint baseline: pre-existing debt, per (lint, file), exact counts.\n\
             # A run must match these counts exactly — more findings is new debt,\n\
             # fewer means this file is stale. Regenerate deliberately with:\n\
             #   cargo run -p lint -- check --fix-baseline\n",
        );
        for ((id, file), count) in &self.entries {
            let _ = write!(
                s,
                "\n[[entry]]\nid = \"{id}\"\nfile = \"{file}\"\ncount = {count}\n"
            );
        }
        s
    }

    /// Build a baseline that exactly covers `findings` (D000 excluded:
    /// suppression hygiene is never baselined).
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut out = Baseline::default();
        for f in findings {
            if f.id == LintId::D000 {
                continue;
            }
            *out.entries.entry((f.id, f.file.clone())).or_insert(0) += 1;
        }
        out
    }

    /// Compare findings against the baseline with exact-count semantics.
    pub fn diff(&self, findings: &[Finding]) -> Diff {
        let mut diff = Diff::default();
        let mut got: BTreeMap<(LintId, String), Vec<&Finding>> = BTreeMap::new();
        for f in findings {
            if f.id == LintId::D000 {
                // Suppression hygiene cannot be baselined away.
                diff.new_debt.push(f.clone());
                continue;
            }
            got.entry((f.id, f.file.clone())).or_default().push(f);
        }
        for (key, fs) in &got {
            let allowed = self.entries.get(key).copied().unwrap_or(0);
            if fs.len() > allowed {
                // Report the excess count's worth of findings, highest
                // lines last so the listing reads top-down.
                for f in fs.iter().skip(allowed) {
                    diff.new_debt.push((*f).clone());
                }
            }
        }
        for ((id, file), &allowed) in &self.entries {
            let have = got.get(&(*id, file.clone())).map_or(0, |v| v.len());
            if have < allowed {
                diff.stale.push((*id, file.clone(), allowed, have));
            }
        }
        // The grouping above walks buckets in (lint, file) order and puts
        // D000s first, which interleaves badly in the report. Re-sort to
        // the same (file, line, id) order the analysis itself uses, so
        // `check` output is byte-stable and reads top-down per file.
        diff.new_debt
            .sort_by(|a, b| (&a.file, a.line, a.id).cmp(&(&b.file, b.line, b.id)));
        diff
    }
}

fn unquote(v: &str) -> Result<String, String> {
    v.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a double-quoted string, got `{v}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: LintId, file: &str, line: u32) -> Finding {
        Finding {
            id,
            file: file.into(),
            line,
            message: "m".into(),
        }
    }

    #[test]
    fn roundtrip() {
        let b = Baseline::from_findings(&[
            f(LintId::D002, "a.rs", 1),
            f(LintId::D002, "a.rs", 2),
            f(LintId::D005, "b.rs", 3),
        ]);
        let text = b.render();
        let b2 = Baseline::parse(&text).unwrap();
        assert_eq!(b, b2);
        assert_eq!(b2.entries[&(LintId::D002, "a.rs".into())], 2);
    }

    #[test]
    fn exact_counts_both_directions() {
        let b = Baseline::from_findings(&[f(LintId::D002, "a.rs", 1), f(LintId::D002, "a.rs", 2)]);
        // Matching count: clean.
        assert!(b
            .diff(&[f(LintId::D002, "a.rs", 1), f(LintId::D002, "a.rs", 5)])
            .is_clean());
        // One extra: new debt, and only the excess is reported.
        let d = b.diff(&[
            f(LintId::D002, "a.rs", 1),
            f(LintId::D002, "a.rs", 2),
            f(LintId::D002, "a.rs", 3),
        ]);
        assert_eq!(d.new_debt.len(), 1);
        // One fewer: stale.
        let d = b.diff(&[f(LintId::D002, "a.rs", 1)]);
        assert!(d.new_debt.is_empty());
        assert_eq!(d.stale.len(), 1);
        assert_eq!(d.stale[0].2, 2);
        assert_eq!(d.stale[0].3, 1);
    }

    #[test]
    fn unbaselined_finding_is_new_debt() {
        let b = Baseline::default();
        let d = b.diff(&[f(LintId::D001, "x.rs", 7)]);
        assert_eq!(d.new_debt.len(), 1);
    }

    #[test]
    fn d000_cannot_be_baselined() {
        let b = Baseline::from_findings(&[f(LintId::D000, "a.rs", 1)]);
        assert!(b.entries.is_empty());
        let d = b.diff(&[f(LintId::D000, "a.rs", 1)]);
        assert_eq!(d.new_debt.len(), 1);
    }

    #[test]
    fn new_debt_is_sorted_by_file_line_id() {
        // Unbaselined findings across several files and lints, fed in
        // shuffled order, with a D000 (which short-circuits the bucket
        // walk) thrown in: the report order must still be (file, line, id).
        let b = Baseline::default();
        let d = b.diff(&[
            f(LintId::D005, "b.rs", 9),
            f(LintId::D000, "b.rs", 2),
            f(LintId::D002, "a.rs", 30),
            f(LintId::D001, "a.rs", 30),
            f(LintId::D002, "a.rs", 4),
        ]);
        let order: Vec<(String, u32, LintId)> = d
            .new_debt
            .iter()
            .map(|x| (x.file.clone(), x.line, x.id))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".into(), 4, LintId::D002),
                ("a.rs".into(), 30, LintId::D001),
                ("a.rs".into(), 30, LintId::D002),
                ("b.rs".into(), 2, LintId::D000),
                ("b.rs".into(), 9, LintId::D005),
            ]
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("id = \"D001\"").is_err()); // key outside table
        assert!(Baseline::parse("[[entry]]\nid = \"D999\"\nfile = \"a\"\ncount = 1").is_err());
        assert!(Baseline::parse("[[entry]]\nid = \"D001\"\nfile = \"a\"\ncount = 0").is_err());
        assert!(Baseline::parse("[[entry]]\nid = \"D001\"\nfile = \"a\"").is_err());
        assert!(Baseline::parse("[[entry]]\nwhat = 3").is_err());
        let dup = "[[entry]]\nid = \"D001\"\nfile = \"a\"\ncount = 1\n\
                   [[entry]]\nid = \"D001\"\nfile = \"a\"\ncount = 2";
        assert!(Baseline::parse(dup).is_err());
    }
}

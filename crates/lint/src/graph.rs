//! Crate/module graph of the workspace, built by parsing each member's
//! `Cargo.toml` with the same minimal hand-rolled TOML reading used for
//! the baseline. Drives the `graph` subcommand and the layering
//! assertions in the self-check suite.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// One workspace member crate.
#[derive(Debug, Clone)]
pub struct CrateNode {
    /// Directory name under `crates/` (the lint's crate key, e.g. `core`).
    pub dir: String,
    /// `[package] name` from the manifest (e.g. `distinct`).
    pub package: String,
    /// Workspace-internal dependencies, as directory names, sorted.
    pub deps: Vec<String>,
    /// `.rs` modules under `src/`, workspace-relative, sorted.
    pub modules: Vec<String>,
}

/// The whole workspace graph, keyed by directory name.
#[derive(Debug, Clone, Default)]
pub struct CrateGraph {
    /// Members, sorted by directory name.
    pub nodes: BTreeMap<String, CrateNode>,
}

impl CrateGraph {
    /// Build the graph by scanning `crates/*/Cargo.toml` under `root`.
    pub fn load(root: &Path) -> Result<CrateGraph, String> {
        // Dependency keys in member manifests are workspace aliases
        // (`cluster.workspace = true`), which match the directory names,
        // so the alias set is just the directory listing.
        let crates_dir = root.join("crates");
        let mut dirs: Vec<String> = fs::read_dir(&crates_dir)
            .map_err(|e| format!("read_dir crates/: {e}"))?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().join("Cargo.toml").exists())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        dirs.sort();

        let mut graph = CrateGraph::default();
        for dir in &dirs {
            let manifest_path = crates_dir.join(dir).join("Cargo.toml");
            let text = fs::read_to_string(&manifest_path)
                .map_err(|e| format!("read {}: {e}", manifest_path.display()))?;
            let mut package = String::new();
            let mut deps = Vec::new();
            let mut section = String::new();
            for raw in text.lines() {
                let line = raw.trim();
                if line.starts_with('[') && line.ends_with(']') {
                    section = line.trim_matches(['[', ']']).to_string();
                    continue;
                }
                let Some((key, val)) = line.split_once('=') else {
                    continue;
                };
                let (key, val) = (key.trim(), val.trim());
                if section == "package" && key == "name" {
                    package = val.trim_matches('"').to_string();
                }
                if section == "dependencies" || section == "dev-dependencies" {
                    // `cluster.workspace = true` or `cluster = { workspace = true }`
                    let dep = key.split('.').next().unwrap_or(key).to_string();
                    if dirs.contains(&dep) && !deps.contains(&dep) {
                        deps.push(dep);
                    }
                }
            }
            deps.sort();
            let mut modules = Vec::new();
            collect_modules(root, &crates_dir.join(dir).join("src"), &mut modules);
            modules.sort();
            graph.nodes.insert(
                dir.clone(),
                CrateNode {
                    dir: dir.clone(),
                    package,
                    deps,
                    modules,
                },
            );
        }
        Ok(graph)
    }

    /// Return the members in dependency order, or the cycle that prevents
    /// one. Cargo would reject a cycle anyway; the self-check uses this to
    /// assert the layering stays intentional.
    pub fn topo_order(&self) -> Result<Vec<String>, String> {
        let mut order = Vec::new();
        // 0 = unvisited, 1 = on stack, 2 = done.
        let mut state: BTreeMap<&str, u8> = BTreeMap::new();
        fn visit<'a>(
            g: &'a CrateGraph,
            name: &'a str,
            state: &mut BTreeMap<&'a str, u8>,
            order: &mut Vec<String>,
        ) -> Result<(), String> {
            match state.get(name).copied().unwrap_or(0) {
                1 => return Err(format!("dependency cycle through `{name}`")),
                2 => return Ok(()),
                _ => {}
            }
            state.insert(name, 1);
            if let Some(node) = g.nodes.get(name) {
                for dep in &node.deps {
                    visit(g, dep, state, order)?;
                }
            }
            state.insert(name, 2);
            order.push(name.to_string());
            Ok(())
        }
        for name in self.nodes.keys() {
            visit(self, name, &mut state, &mut order)?;
        }
        Ok(order)
    }

    /// Crates with no workspace-internal dependencies (the foundation layer).
    pub fn foundations(&self) -> Vec<&str> {
        self.nodes
            .values()
            .filter(|n| n.deps.is_empty())
            .map(|n| n.dir.as_str())
            .collect()
    }

    /// Human-readable report for the `graph` subcommand.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let order = self.topo_order().unwrap_or_else(|e| vec![format!("<{e}>")]);
        let _ = writeln!(s, "workspace crates in dependency order:");
        for name in &order {
            let Some(n) = self.nodes.get(name) else {
                continue;
            };
            let deps = if n.deps.is_empty() {
                "-".to_string()
            } else {
                n.deps.join(", ")
            };
            let _ = writeln!(
                s,
                "  {:<10} ({:<17} {:>2} modules)  deps: {}",
                n.dir,
                format!("{},", n.package),
                n.modules.len(),
                deps
            );
        }
        s
    }
}

fn collect_modules(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            collect_modules(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::find_root;

    #[test]
    fn loads_and_orders_this_workspace() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
        let g = CrateGraph::load(&root).expect("graph");
        assert!(g.nodes.contains_key("core"));
        assert_eq!(g.nodes["core"].package, "distinct");
        // exec is a foundation crate and core depends on it.
        assert!(g.nodes["exec"].deps.is_empty());
        assert!(g.nodes["core"].deps.contains(&"exec".to_string()));
        // lint depends on nothing in the workspace.
        assert!(g.nodes["lint"].deps.is_empty());
        let order = g.topo_order().expect("acyclic");
        let pos = |n: &str| order.iter().position(|x| x == n).unwrap_or(usize::MAX);
        assert!(pos("exec") < pos("core"));
        assert!(pos("relgraph") < pos("core"));
    }
}

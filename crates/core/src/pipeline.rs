//! The DISTINCT pipeline: prepare → train → resolve.
//!
//! ```text
//! let mut engine = Distinct::prepare(&catalog, "Publish", "author", config)?;
//! engine.train()?;                                  // §3 (or skip: uniform weights)
//! let refs = engine.references_of("Wei Wang");
//! let clustering = engine.resolve(&refs);           // §4
//! ```

use crate::config::{DistinctConfig, WeightingMode};
use crate::control::{InterruptKind, Progress, RunControl, Stage};
use crate::features::{
    build_profile, build_profile_guarded, empty_profile, resemblance_features, walk_features,
    Profile,
};
use crate::learn::{learn_weights_guarded, LearnedModel, PathWeights};
use crate::paths::PathSet;
use crate::refcluster::DistinctMerger;
use crate::training::{build_training_set, TrainingError, TrainingSet};
use cluster::{agglomerate, agglomerate_guarded, Clustering};
use parking_lot::Mutex;
use relgraph::LinkGraph;
use relstore::{Catalog, FxHashMap, StoreError, TupleId, TupleRef, Value};
use std::fmt;
use std::sync::Arc;
use svm::{Dataset, SvmError};

/// Errors surfaced by the pipeline.
#[derive(Debug)]
#[allow(missing_docs)] // variant payloads are self-describing
pub enum DistinctError {
    /// Invalid configuration.
    Config(String),
    /// The reference relation/attribute could not be resolved.
    BadReferenceSpec(String),
    /// Underlying store failure.
    Store(StoreError),
    /// Training-set construction failure.
    Training(TrainingError),
    /// SVM training failure.
    Svm(SvmError),
    /// A [`RunControl`] limit stopped an operation that cannot degrade
    /// gracefully (training must either finish or not install weights).
    Interrupted {
        /// The stage that was running when the limit tripped.
        stage: Stage,
        /// Which limit tripped.
        kind: InterruptKind,
        /// How far the stage had progressed.
        progress: Progress,
    },
    /// A checkpoint file failed integrity or compatibility verification;
    /// nothing was installed (see [`crate::checkpoint`]).
    CorruptCheckpoint {
        /// The offending file.
        path: String,
        /// What failed.
        reason: String,
    },
}

impl fmt::Display for DistinctError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistinctError::Config(s) => write!(f, "bad configuration: {s}"),
            DistinctError::BadReferenceSpec(s) => write!(f, "bad reference spec: {s}"),
            DistinctError::Store(e) => write!(f, "store error: {e}"),
            DistinctError::Training(e) => write!(f, "training error: {e}"),
            DistinctError::Svm(e) => write!(f, "svm error: {e}"),
            DistinctError::Interrupted {
                stage,
                kind,
                progress,
            } => {
                write!(f, "interrupted ({kind}) during {stage} at {progress}")
            }
            DistinctError::CorruptCheckpoint { path, reason } => {
                write!(f, "corrupt checkpoint `{path}`: {reason}")
            }
        }
    }
}

impl std::error::Error for DistinctError {}

impl From<StoreError> for DistinctError {
    fn from(e: StoreError) -> Self {
        DistinctError::Store(e)
    }
}
impl From<TrainingError> for DistinctError {
    fn from(e: TrainingError) -> Self {
        DistinctError::Training(e)
    }
}
impl From<SvmError> for DistinctError {
    fn from(e: SvmError) -> Self {
        DistinctError::Svm(e)
    }
}

/// How a [`Distinct::resolve_ctl`] run was degraded by its limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degraded {
    /// The stage running when the first limit tripped.
    pub stage: Stage,
    /// Which limit tripped first.
    pub kind: InterruptKind,
    /// Profiles fully computed before profiling was cut off. References
    /// beyond this count were resolved with zero-mass placeholder profiles
    /// and therefore stay singletons.
    pub profiles_computed: usize,
    /// Total references in the resolve call.
    pub refs_total: usize,
    /// Whether the agglomerative merge loop ran to completion. When
    /// `false` the clustering holds only a prefix of the merge sequence —
    /// the highest-similarity merges, since merging is strongest-first.
    pub clustering_completed: bool,
}

impl fmt::Display for Degraded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "degraded ({}) at {}: {}/{} profiles, clustering {}",
            self.kind,
            self.stage,
            self.profiles_computed,
            self.refs_total,
            if self.clustering_completed {
                "completed"
            } else {
                "partial"
            }
        )
    }
}

/// Result of a limit-aware resolution: always a valid clustering over all
/// input references, plus a [`Degraded`] report when a limit tripped.
#[derive(Debug, Clone)]
pub struct ResolveOutcome {
    /// The (possibly partial) clustering; `labels.len()` always equals the
    /// number of input references.
    pub clustering: Clustering,
    /// `None` when the run finished within its limits.
    pub degraded: Option<Degraded>,
}

impl ResolveOutcome {
    /// Whether the run finished within its limits.
    pub fn is_complete(&self) -> bool {
        self.degraded.is_none()
    }
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// Names that passed the rare-name uniqueness filter.
    pub unique_names: usize,
    /// Positive / negative pair counts actually used.
    pub positives: usize,
    /// Negative pair count.
    pub negatives: usize,
    /// Training accuracy of the resemblance SVM.
    pub resem_accuracy: f64,
    /// Training accuracy of the walk SVM.
    pub walk_accuracy: f64,
    /// Per-path `(description, resemblance weight, walk weight)`.
    pub path_weights: Vec<(String, f64, f64)>,
}

/// The prepared DISTINCT engine.
pub struct Distinct {
    config: DistinctConfig,
    catalog: Catalog,
    graph: LinkGraph,
    paths: PathSet,
    ref_attr_idx: usize,
    weights: PathWeights,
    learned: Option<LearnedModel>,
    profile_cache: Mutex<FxHashMap<TupleRef, Arc<Profile>>>,
}

impl Distinct {
    /// Prepare the engine over a catalog.
    ///
    /// `ref_relation.ref_attr` designates the references (a foreign key to
    /// the named-object relation). The input catalog need not be
    /// finalized; if `config.expand_attributes` is set (the default, per
    /// §2.1) a value-expanded copy is analyzed instead.
    pub fn prepare(
        catalog: &Catalog,
        ref_relation: &str,
        ref_attr: &str,
        config: DistinctConfig,
    ) -> Result<Distinct, DistinctError> {
        config.validate().map_err(DistinctError::Config)?;
        let catalog = if config.expand_attributes {
            relstore::expand_values(catalog)?.catalog
        } else {
            let mut c = catalog.clone();
            if !c.is_finalized() {
                c.finalize(false)?;
            }
            c
        };
        let paths = PathSet::build(&catalog, ref_relation, ref_attr, config.max_path_len)
            .ok_or_else(|| {
                DistinctError::BadReferenceSpec(format!(
                    "`{ref_relation}.{ref_attr}` is not a foreign-key reference attribute"
                ))
            })?;
        if paths.is_empty() {
            return Err(DistinctError::BadReferenceSpec(
                "no join paths available from the reference relation".into(),
            ));
        }
        let ref_attr_idx = catalog
            .relation(paths.start)
            .schema()
            .attr_index(ref_attr)
            .expect("attr resolved by PathSet");
        let graph = LinkGraph::build(&catalog);
        let n_paths = paths.len();
        Ok(Distinct {
            config,
            catalog,
            graph,
            paths,
            ref_attr_idx,
            weights: PathWeights::uniform(n_paths),
            learned: None,
            profile_cache: Mutex::new(FxHashMap::default()),
        })
    }

    /// The (possibly expanded) catalog under analysis.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The engine configuration.
    pub fn config(&self) -> &DistinctConfig {
        &self.config
    }

    /// The join paths under analysis.
    pub fn paths(&self) -> &PathSet {
        &self.paths
    }

    /// Index of the reference attribute within the reference relation.
    pub fn ref_attr_index(&self) -> usize {
        self.ref_attr_idx
    }

    /// Current per-path weights.
    pub fn weights(&self) -> &PathWeights {
        &self.weights
    }

    /// Override the per-path weights (e.g. to reuse a serialized model).
    ///
    /// Returns an error if the dimensionality does not match the path set.
    pub fn set_weights(&mut self, weights: PathWeights) -> Result<(), DistinctError> {
        if weights.resem.len() != self.paths.len() || weights.walk.len() != self.paths.len() {
            return Err(DistinctError::Config(format!(
                "weights cover {} paths, engine has {}",
                weights.resem.len(),
                self.paths.len()
            )));
        }
        self.weights = weights;
        Ok(())
    }

    /// The learned model from the last [`Distinct::train`] call.
    pub fn learned(&self) -> Option<&LearnedModel> {
        self.learned.as_ref()
    }

    /// All references whose value equals `name`.
    pub fn references_of(&self, name: &str) -> Vec<TupleRef> {
        self.catalog
            .relation(self.paths.start)
            .lookup(self.ref_attr_idx, &Value::str(name))
            .into_iter()
            .map(|tid: TupleId| TupleRef::new(self.paths.start, tid))
            .collect()
    }

    /// The profile of a reference (cached).
    pub fn profile(&self, r: TupleRef) -> Arc<Profile> {
        if let Some(p) = self.profile_cache.lock().get(&r) {
            return Arc::clone(p);
        }
        let p = Arc::new(build_profile(&self.graph, &self.catalog, &self.paths, r));
        self.profile_cache.lock().insert(r, Arc::clone(&p));
        p
    }

    /// The profile of a reference (cached), charged against `ctl`. Returns
    /// `None` when a control limit trips mid-computation; nothing partial
    /// is cached.
    pub fn profile_ctl(&self, r: TupleRef, ctl: &RunControl) -> Option<Arc<Profile>> {
        if let Some(p) = self.profile_cache.lock().get(&r) {
            return Some(Arc::clone(p));
        }
        let p = Arc::new(build_profile_guarded(
            &self.graph,
            &self.catalog,
            &self.paths,
            r,
            &mut ctl.guard(),
        )?);
        self.profile_cache.lock().insert(r, Arc::clone(&p));
        Some(p)
    }

    /// Number of profiles currently cached.
    pub fn cached_profiles(&self) -> usize {
        self.profile_cache.lock().len()
    }

    /// Snapshot of the profile cache (for checkpointing).
    pub(crate) fn profile_cache_snapshot(&self) -> Vec<(TupleRef, Arc<Profile>)> {
        self.profile_cache
            .lock()
            .iter()
            .map(|(&r, p)| (r, Arc::clone(p)))
            .collect()
    }

    /// Replace the profile cache wholesale (checkpoint restore).
    pub(crate) fn install_profiles(&mut self, entries: Vec<(TupleRef, Arc<Profile>)>) {
        let mut cache = self.profile_cache.lock();
        cache.clear();
        cache.extend(entries);
    }

    /// Install a learned model without retraining (checkpoint restore).
    pub(crate) fn install_learned(&mut self, model: Option<LearnedModel>) {
        self.learned = model;
    }

    /// Override the clustering threshold (checkpoint restore).
    pub(crate) fn set_min_sim(&mut self, min_sim: f64) {
        self.config.min_sim = min_sim;
    }

    /// Compute and cache the profiles of `refs` using `threads` worker
    /// threads (profile construction is the pipeline's dominant cost and
    /// is embarrassingly parallel — the engine state it reads is
    /// immutable). A `threads` of 0 or 1 computes serially. Results are
    /// bit-identical to serial computation.
    pub fn precompute_profiles(&self, refs: &[TupleRef], threads: usize) {
        // Skip already-cached references.
        let todo: Vec<TupleRef> = {
            let cache = self.profile_cache.lock();
            let mut todo: Vec<TupleRef> = refs
                .iter()
                .copied()
                .filter(|r| !cache.contains_key(r))
                .collect();
            todo.sort_unstable();
            todo.dedup();
            todo
        };
        if todo.is_empty() {
            return;
        }
        if threads <= 1 || todo.len() < 2 {
            for r in todo {
                let _ = self.profile(r);
            }
            return;
        }
        let chunk = todo.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for part in todo.chunks(chunk) {
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(part.len());
                    for &r in part {
                        local.push((
                            r,
                            Arc::new(build_profile(&self.graph, &self.catalog, &self.paths, r)),
                        ));
                    }
                    let mut cache = self.profile_cache.lock();
                    for (r, p) in local {
                        cache.entry(r).or_insert(p);
                    }
                });
            }
        });
    }

    /// Build the automatically constructed training set (§3) without
    /// learning — exposed for inspection and experiments.
    pub fn build_training_pairs(&self) -> Result<TrainingSet, DistinctError> {
        let rel_name = self.catalog.relation(self.paths.start).name().to_string();
        let attr_name = self.catalog.relation(self.paths.start).schema().attributes
            [self.ref_attr_idx]
            .name
            .clone();
        Ok(build_training_set(
            &self.catalog,
            &rel_name,
            &attr_name,
            &self.config.training,
        )?)
    }

    /// Construct the training set, learn per-path weights with the SVM,
    /// and install them (§3).
    ///
    /// If the engine is configured with [`WeightingMode::Uniform`] this
    /// still trains (for reporting) but leaves uniform weights installed.
    pub fn train(&mut self) -> Result<TrainingReport, DistinctError> {
        self.train_ctl(&RunControl::new())
    }

    /// [`Distinct::train`] under execution limits. Training cannot degrade
    /// gracefully — a half-trained model would silently misweight every
    /// later resolution — so tripping a limit aborts with
    /// [`DistinctError::Interrupted`] and leaves the previously installed
    /// weights untouched.
    pub fn train_ctl(&mut self, ctl: &RunControl) -> Result<TrainingReport, DistinctError> {
        let interrupted = |stage, kind, done: usize, total: usize| DistinctError::Interrupted {
            stage,
            kind,
            progress: Progress { done, total },
        };
        if let Some(kind) = ctl.status() {
            return Err(interrupted(Stage::TrainingSet, kind, 0, 0));
        }
        let ts = self.build_training_pairs()?;
        if let Some(kind) = ctl.status() {
            return Err(interrupted(
                Stage::TrainingSet,
                kind,
                ts.pairs.len(),
                ts.pairs.len(),
            ));
        }
        let mut resem_data = Dataset::new();
        let mut walk_data = Dataset::new();
        for (i, pair) in ts.pairs.iter().enumerate() {
            let trip = |ctl: &RunControl| {
                ctl.status().unwrap_or(InterruptKind::Cancelled) // latch guarantees Some
            };
            let Some(pa) = self.profile_ctl(pair.a, ctl) else {
                return Err(interrupted(Stage::Profiles, trip(ctl), i, ts.pairs.len()));
            };
            let Some(pb) = self.profile_ctl(pair.b, ctl) else {
                return Err(interrupted(Stage::Profiles, trip(ctl), i, ts.pairs.len()));
            };
            resem_data
                .push(resemblance_features(&pa, &pb), pair.label)
                .map_err(DistinctError::Svm)?;
            walk_data
                .push(walk_features(&pa, &pb), pair.label)
                .map_err(DistinctError::Svm)?;
        }
        let model = learn_weights_guarded(
            &resem_data,
            &walk_data,
            self.config.training.svm_c,
            self.config.training.seed,
            &mut ctl.guard(),
        )
        .map_err(|e| match e {
            SvmError::Interrupted { passes_done } => interrupted(
                Stage::SvmTraining,
                ctl.status().unwrap_or(InterruptKind::Cancelled),
                passes_done,
                0,
            ),
            other => DistinctError::Svm(other),
        })?;
        let report = TrainingReport {
            unique_names: ts.unique_names,
            positives: ts.positives,
            negatives: ts.negatives,
            resem_accuracy: model.resem_train_accuracy,
            walk_accuracy: model.walk_train_accuracy,
            path_weights: self
                .paths
                .descriptions
                .iter()
                .cloned()
                .zip(model.weights.resem.iter().copied())
                .zip(model.weights.walk.iter().copied())
                .map(|((d, r), w)| (d, r, w))
                .collect(),
        };
        if self.config.weighting == WeightingMode::Supervised {
            self.weights = model.weights.clone();
        }
        self.learned = Some(model);
        Ok(report)
    }

    /// Calibrate `min_sim` automatically from pseudo-ambiguous groups of
    /// unique names (see [`crate::calibrate`]) and install the selected
    /// threshold. Call after [`Distinct::train`] so the calibration runs
    /// under the final weights.
    ///
    /// Returns `None` (leaving the configured threshold untouched) when too
    /// few unique names exist to synthesize groups.
    pub fn calibrate_threshold(
        &mut self,
        cfg: &crate::calibrate::CalibrationConfig,
    ) -> Result<Option<crate::calibrate::CalibrationResult>, DistinctError> {
        let ts = self.build_training_pairs()?;
        let result = crate::calibrate::calibrate_min_sim(self, &ts.names, cfg);
        if let Some(r) = &result {
            self.config.min_sim = r.min_sim;
        }
        Ok(result)
    }

    /// Cluster a set of references (§4) with the configured measure,
    /// weighting, composite, and `min_sim`.
    pub fn resolve(&self, refs: &[TupleRef]) -> Clustering {
        self.resolve_with_min_sim(refs, self.config.min_sim)
    }

    /// Cluster with an explicit `min_sim` (used by the baselines' per-
    /// method threshold sweep in Fig. 4).
    pub fn resolve_with_min_sim(&self, refs: &[TupleRef], min_sim: f64) -> Clustering {
        let profiles: Vec<Profile> = refs.iter().map(|&r| (*self.profile(r)).clone()).collect();
        let mut merger = DistinctMerger::from_profiles(
            &profiles,
            &self.weights,
            self.config.measure,
            self.config.composite,
        );
        agglomerate(refs.len(), &mut merger, min_sim)
    }

    /// [`Distinct::resolve`] under execution limits, degrading gracefully.
    ///
    /// Unlike training, resolution always has a meaningful partial answer:
    /// references whose profiles could not be computed in time stay
    /// singletons (their pairwise similarities are zero, below any positive
    /// `min_sim`), and an interrupted merge loop keeps the merges already
    /// made — the strongest-evidence ones, since merging proceeds in
    /// decreasing similarity order. The result is therefore never an error:
    /// it is a valid clustering over all of `refs`, tagged with a
    /// [`Degraded`] report when any limit tripped.
    pub fn resolve_ctl(&self, refs: &[TupleRef], ctl: &RunControl) -> ResolveOutcome {
        self.resolve_with_min_sim_ctl(refs, self.config.min_sim, ctl)
    }

    /// [`Distinct::resolve_ctl`] with an explicit `min_sim`.
    pub fn resolve_with_min_sim_ctl(
        &self,
        refs: &[TupleRef],
        min_sim: f64,
        ctl: &RunControl,
    ) -> ResolveOutcome {
        let mut profiles: Vec<Profile> = Vec::with_capacity(refs.len());
        let mut profiles_computed = 0usize;
        let mut trip: Option<(Stage, InterruptKind)> = None;
        for &r in refs {
            if trip.is_none() {
                match self.profile_ctl(r, ctl) {
                    Some(p) => {
                        profiles.push((*p).clone());
                        profiles_computed += 1;
                        continue;
                    }
                    None => {
                        let kind = ctl.status().unwrap_or(InterruptKind::Cancelled);
                        trip = Some((Stage::Profiles, kind));
                    }
                }
            }
            profiles.push(empty_profile(&self.paths, r));
        }
        let mut merger = DistinctMerger::from_profiles(
            &profiles,
            &self.weights,
            self.config.measure,
            self.config.composite,
        );
        let partial = agglomerate_guarded(refs.len(), &mut merger, min_sim, &mut ctl.guard());
        if !partial.completed && trip.is_none() {
            let kind = ctl.status().unwrap_or(InterruptKind::Cancelled);
            trip = Some((Stage::Clustering, kind));
        }
        let degraded = trip.map(|(stage, kind)| Degraded {
            stage,
            kind,
            profiles_computed,
            refs_total: refs.len(),
            clustering_completed: partial.completed,
        });
        ResolveOutcome {
            clustering: partial.clustering,
            degraded,
        }
    }

    /// Calibrated probability that two references denote the same entity,
    /// combining the trained resemblance and walk models through their
    /// Platt scalers. Returns `None` before training.
    pub fn pair_probability(&self, a: TupleRef, b: TupleRef) -> Option<f64> {
        let learned = self.learned.as_ref()?;
        let pa = self.profile(a);
        let pb = self.profile(b);
        Some(learned.pair_probability(&resemblance_features(&pa, &pb), &walk_features(&pa, &pb)))
    }

    /// Convenience: references of `name`, clustered.
    pub fn resolve_name(&self, name: &str) -> (Vec<TupleRef>, Clustering) {
        let refs = self.references_of(name);
        let clustering = self.resolve(&refs);
        (refs, clustering)
    }

    /// Cluster under user-supplied constraints: `must_link` /
    /// `cannot_link` pairs are indexes into `refs`. Constraint semantics
    /// follow [`cluster::ConstrainedMerger`]: vetoes propagate across
    /// merges, forced pairs merge before anything else.
    ///
    /// # Panics
    /// Panics on out-of-range, self-referential, or contradictory
    /// constraint pairs (programmer error, matching the wrapped merger).
    pub fn resolve_constrained(
        &self,
        refs: &[TupleRef],
        must_link: &[(usize, usize)],
        cannot_link: &[(usize, usize)],
    ) -> Clustering {
        let profiles: Vec<Profile> = refs.iter().map(|&r| (*self.profile(r)).clone()).collect();
        let inner = DistinctMerger::from_profiles(
            &profiles,
            &self.weights,
            self.config.measure,
            self.config.composite,
        );
        let mut merger = cluster::ConstrainedMerger::new(inner, refs.len(), must_link, cannot_link);
        agglomerate(refs.len(), &mut merger, self.config.min_sim)
    }

    /// Export the trained state (configuration + weights + path
    /// descriptions) as JSON. Returns `None` before training.
    pub fn export_model(&self) -> Option<String> {
        let learned = self.learned.as_ref()?;
        let saved = SavedModel {
            config: self.config.clone(),
            weights: self.weights.clone(),
            paths: self.paths.descriptions.clone(),
            resem_train_accuracy: learned.resem_train_accuracy,
            walk_train_accuracy: learned.walk_train_accuracy,
        };
        Some(serde_json::to_string_pretty(&saved).expect("model serializes"))
    }

    /// Import a model exported by [`Distinct::export_model`] into this
    /// engine. The path descriptions must match exactly — a model is only
    /// valid for the schema (and path enumeration settings) it was trained
    /// on.
    pub fn import_model(&mut self, json: &str) -> Result<(), DistinctError> {
        let saved: SavedModel = serde_json::from_str(json)
            .map_err(|e| DistinctError::Config(format!("unparseable model: {e}")))?;
        if saved.paths != self.paths.descriptions {
            return Err(DistinctError::Config(
                "model was trained on a different join-path set".into(),
            ));
        }
        self.config.min_sim = saved.config.min_sim;
        self.config.measure = saved.config.measure;
        self.config.composite = saved.config.composite;
        self.set_weights(saved.weights)
    }
}

/// On-disk form of a trained engine (see [`Distinct::export_model`]).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct SavedModel {
    config: DistinctConfig,
    weights: PathWeights,
    paths: Vec<String>,
    resem_train_accuracy: f64,
    walk_train_accuracy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MeasureMode;
    use datagen::{AmbiguousSpec, World, WorldConfig};
    use eval::pairwise_scores;

    fn dataset() -> datagen::DblpDataset {
        let mut config = WorldConfig::tiny(21);
        config.ambiguous = vec![
            AmbiguousSpec::new("Wei Wang", vec![10, 8, 5]),
            AmbiguousSpec::new("Hui Fang", vec![5, 4]),
        ];
        datagen::to_catalog(&World::generate(config)).unwrap()
    }

    fn small_training() -> crate::config::TrainingConfig {
        crate::config::TrainingConfig {
            positives: 80,
            negatives: 80,
            ..Default::default()
        }
    }

    #[test]
    fn prepare_validates_inputs() {
        let d = dataset();
        let mut bad = DistinctConfig::default();
        bad.max_path_len = 0;
        assert!(matches!(
            Distinct::prepare(&d.catalog, "Publish", "author", bad),
            Err(DistinctError::Config(_))
        ));
        assert!(matches!(
            Distinct::prepare(&d.catalog, "Nope", "author", DistinctConfig::default()),
            Err(DistinctError::BadReferenceSpec(_))
        ));
    }

    #[test]
    fn prepare_exposes_paths_and_uniform_weights() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        assert!(!engine.paths().is_empty());
        assert_eq!(engine.weights().path_count(), engine.paths().len());
        assert!(engine.learned().is_none());
        let sum: f64 = engine.weights().resem.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn references_of_finds_planted_name() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let refs = engine.references_of("Wei Wang");
        assert_eq!(refs.len(), 23);
        assert!(engine.references_of("Nobody Here").is_empty());
    }

    #[test]
    fn profiles_are_cached() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let r = engine.references_of("Wei Wang")[0];
        assert_eq!(engine.cached_profiles(), 0);
        let p1 = engine.profile(r);
        let p2 = engine.profile(r);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(engine.cached_profiles(), 1);
    }

    #[test]
    fn training_learns_informative_weights() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let report = engine.train().unwrap();
        assert!(report.unique_names >= 2);
        assert_eq!(report.positives, 80);
        assert_eq!(report.negatives, 80);
        // Hard, realistic training data: an author's two papers often share
        // nothing, so accuracies well above chance (not near 1.0) are the
        // expected regime.
        assert!(
            report.resem_accuracy > 0.6,
            "resem acc {}",
            report.resem_accuracy
        );
        assert!(
            report.walk_accuracy > 0.55,
            "walk acc {}",
            report.walk_accuracy
        );
        // Weights are installed and normalized.
        let sum: f64 = engine.weights().resem.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(engine.learned().is_some());
        // The coauthor-flavored path family (through sibling Publish
        // records) must dominate the resemblance weights.
        let coauthor_family: f64 = report
            .path_weights
            .iter()
            .filter(|(d, _, _)| d.contains("<-[paper_key] Publish"))
            .map(|(_, r, _)| r)
            .sum();
        assert!(
            coauthor_family > 0.2,
            "coauthor-family resem weight {coauthor_family}"
        );
    }

    #[test]
    fn uniform_mode_trains_but_keeps_uniform_weights() {
        let d = dataset();
        let config = DistinctConfig {
            weighting: WeightingMode::Uniform,
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let before = engine.weights().clone();
        engine.train().unwrap();
        assert_eq!(engine.weights(), &before);
        assert!(engine.learned().is_some());
    }

    #[test]
    fn end_to_end_distinguishes_planted_entities() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        engine.train().unwrap();
        let truth = &d.truths[0];
        let clustering = engine.resolve(&truth.refs);
        let scores = pairwise_scores(&truth.labels, &clustering.labels);
        assert!(
            scores.f_measure > 0.75,
            "f-measure {} (p {}, r {})",
            scores.f_measure,
            scores.precision,
            scores.recall
        );
    }

    #[test]
    fn resolve_name_matches_manual_resolution() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let (refs, clustering) = engine.resolve_name("Hui Fang");
        assert_eq!(refs.len(), 9);
        assert_eq!(clustering.labels.len(), 9);
    }

    #[test]
    fn set_weights_validates_dimension() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        assert!(engine.set_weights(PathWeights::uniform(1)).is_err());
        let n = engine.paths().len();
        assert!(engine.set_weights(PathWeights::uniform(n)).is_ok());
    }

    #[test]
    fn min_sim_extremes() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let refs = engine.references_of("Wei Wang");
        // Impossibly high threshold: all singletons.
        let c = engine.resolve_with_min_sim(&refs, 10.0);
        assert_eq!(c.cluster_count(), refs.len());
        // Zero-ish threshold merges anything with positive similarity:
        // far fewer clusters.
        let c = engine.resolve_with_min_sim(&refs, 1e-12);
        assert!(c.cluster_count() < refs.len());
    }

    #[test]
    fn constrained_resolution_honors_user_feedback() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        engine.train().unwrap();
        let truth = &d.truths[0];
        let unconstrained = engine.resolve(&truth.refs);

        // Cannot-link two references that the unconstrained run merged.
        let groups = unconstrained.groups();
        let merged_group = groups.iter().find(|g| g.len() >= 2).expect("some merge");
        let (a, b) = (merged_group[0], merged_group[1]);
        let c = engine.resolve_constrained(&truth.refs, &[], &[(a, b)]);
        assert_ne!(c.labels[a], c.labels[b]);

        // Must-link two references the unconstrained run separated.
        let (x, y) = {
            let mut found = None;
            'outer: for i in 0..truth.refs.len() {
                for j in (i + 1)..truth.refs.len() {
                    if unconstrained.labels[i] != unconstrained.labels[j] {
                        found = Some((i, j));
                        break 'outer;
                    }
                }
            }
            found.expect("some separated pair")
        };
        let c = engine.resolve_constrained(&truth.refs, &[(x, y)], &[]);
        assert_eq!(c.labels[x], c.labels[y]);
    }

    #[test]
    fn model_export_import_round_trip() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut trained =
            Distinct::prepare(&d.catalog, "Publish", "author", config.clone()).unwrap();
        assert!(trained.export_model().is_none(), "no model before training");
        trained.train().unwrap();
        let json = trained.export_model().unwrap();

        let mut fresh = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        fresh.import_model(&json).unwrap();
        assert_eq!(fresh.weights(), trained.weights());
        let truth = &d.truths[0];
        assert_eq!(
            fresh.resolve(&truth.refs).labels,
            trained.resolve(&truth.refs).labels
        );

        // A model for a different path set is rejected.
        let mut shallow = Distinct::prepare(
            &d.catalog,
            "Publish",
            "author",
            DistinctConfig {
                max_path_len: 2,
                training: small_training(),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(matches!(
            shallow.import_model(&json),
            Err(DistinctError::Config(_))
        ));
        assert!(fresh.import_model("not json").is_err());
    }

    #[test]
    fn pair_probability_orders_same_vs_cross_entity_pairs() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        assert!(engine
            .pair_probability(d.truths[0].refs[0], d.truths[0].refs[1])
            .is_none());
        engine.train().unwrap();
        let truth = &d.truths[0];
        // Average probability over same-entity pairs must exceed the
        // average over cross-entity pairs, and all values must be valid
        // probabilities.
        let (mut same, mut cross) = (Vec::new(), Vec::new());
        for i in 0..truth.refs.len() {
            for j in (i + 1)..truth.refs.len() {
                let p = engine
                    .pair_probability(truth.refs[i], truth.refs[j])
                    .unwrap();
                assert!((0.0..=1.0).contains(&p), "p = {p}");
                if truth.labels[i] == truth.labels[j] {
                    same.push(p);
                } else {
                    cross.push(p);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&same) > mean(&cross),
            "same-entity mean P {} vs cross {}",
            mean(&same),
            mean(&cross)
        );
    }

    #[test]
    fn empty_and_singleton_reference_sets() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let empty = engine.resolve(&[]);
        assert!(empty.labels.is_empty());
        assert_eq!(empty.cluster_count(), 0);
        let one = engine.resolve(&d.truths[0].refs[..1]);
        assert_eq!(one.labels, vec![0]);
        assert_eq!(one.cluster_count(), 1);
    }

    #[test]
    fn unexpanded_mode_still_works() {
        // expand_attributes = false: only the raw FK paths exist
        // (no pseudo-value relations), but the pipeline must run end to end.
        let d = dataset();
        let config = DistinctConfig {
            expand_attributes: false,
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        // No pseudo-relations in the analyzed catalog.
        assert!(
            engine.paths().descriptions.iter().all(|p| !p.contains('#')),
            "{:?}",
            engine.paths().descriptions
        );
        engine.train().unwrap();
        let truth = &d.truths[0];
        let c = engine.resolve(&truth.refs);
        assert_eq!(c.labels.len(), truth.refs.len());
        let s = pairwise_scores(&truth.labels, &c.labels);
        assert!(s.f_measure > 0.3, "f {}", s.f_measure);
    }

    #[test]
    fn unlimited_control_resolve_matches_plain_resolve() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        engine.train().unwrap();
        let truth = &d.truths[0];
        let plain = engine.resolve(&truth.refs);
        let outcome = engine.resolve_ctl(&truth.refs, &RunControl::new());
        assert!(outcome.is_complete());
        assert_eq!(outcome.clustering.labels, plain.labels);
    }

    #[test]
    fn tight_budget_resolve_degrades_without_panicking() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let refs = engine.references_of("Wei Wang");
        // Budgets from starvation up to generous: every run must return a
        // full-length, valid partition and report degradation iff it was
        // actually cut short.
        for budget in [0, 1, 10, 100, 1_000, 100_000_000] {
            let ctl = RunControl::new().with_budget(budget);
            let outcome = engine.resolve_ctl(&refs, &ctl);
            assert_eq!(outcome.clustering.labels.len(), refs.len());
            let k = outcome.clustering.cluster_count();
            assert!(k >= 1 && k <= refs.len());
            if let Some(d) = &outcome.degraded {
                assert_eq!(d.kind, InterruptKind::BudgetExhausted);
                assert_eq!(d.refs_total, refs.len());
                assert!(d.profiles_computed <= refs.len());
                if d.stage == Stage::Clustering {
                    // Profiling finished; only the merge loop was cut.
                    assert_eq!(d.profiles_computed, refs.len());
                    assert!(!d.clustering_completed);
                }
                let shown = d.to_string();
                assert!(shown.contains("work budget exhausted"), "{shown}");
            }
        }
        // Starvation budget on a *fresh* engine (the loop above filled the
        // shared profile cache, and cached profiles are free): nothing
        // profiles, everything stays singleton.
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let fresh = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let ctl = RunControl::new().with_budget(0);
        let outcome = fresh.resolve_ctl(&refs, &ctl);
        let deg = outcome.degraded.expect("zero budget must degrade");
        assert_eq!(deg.stage, Stage::Profiles);
        assert_eq!(deg.profiles_computed, 0);
        assert_eq!(outcome.clustering.cluster_count(), refs.len());
    }

    #[test]
    fn cancelled_resolve_still_returns_full_partition() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let refs = engine.references_of("Hui Fang");
        let ctl = RunControl::new();
        ctl.token().cancel();
        let outcome = engine.resolve_ctl(&refs, &ctl);
        assert_eq!(outcome.clustering.labels.len(), refs.len());
        let deg = outcome.degraded.expect("cancelled run must degrade");
        assert_eq!(deg.kind, InterruptKind::Cancelled);
    }

    #[test]
    fn interrupted_training_is_an_error_and_leaves_weights_untouched() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let before = engine.weights().clone();
        let ctl = RunControl::new().with_budget(0);
        let err = engine.train_ctl(&ctl).unwrap_err();
        match err {
            DistinctError::Interrupted { kind, .. } => {
                assert_eq!(kind, InterruptKind::BudgetExhausted);
            }
            other => panic!("expected Interrupted, got {other}"),
        }
        assert_eq!(engine.weights(), &before);
        assert!(engine.learned().is_none());
    }

    #[test]
    fn zero_deadline_training_is_interrupted() {
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        let ctl = RunControl::new().with_deadline(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let err = engine.train_ctl(&ctl).unwrap_err();
        assert!(
            matches!(
                err,
                DistinctError::Interrupted {
                    kind: InterruptKind::DeadlineExceeded,
                    ..
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn degraded_budget_sweep_is_monotone_enough() {
        // More budget can only profile more references; the count of real
        // (non-placeholder) profiles must be non-decreasing in the budget.
        let d = dataset();
        let config = DistinctConfig {
            training: small_training(),
            ..Default::default()
        };
        let refs = {
            let engine =
                Distinct::prepare(&d.catalog, "Publish", "author", config.clone()).unwrap();
            engine.references_of("Wei Wang")
        };
        let mut last = 0usize;
        for budget in [50, 500, 5_000, 50_000, 500_000] {
            // Fresh engine per run: the profile cache would otherwise let
            // later runs reuse earlier runs' work.
            let engine =
                Distinct::prepare(&d.catalog, "Publish", "author", config.clone()).unwrap();
            let outcome = engine.resolve_ctl(&refs, &RunControl::new().with_budget(budget));
            let computed = outcome
                .degraded
                .as_ref()
                .map(|deg| deg.profiles_computed)
                .unwrap_or(refs.len());
            assert!(
                computed >= last,
                "budget {budget}: {computed} < previous {last}"
            );
            last = computed;
        }
    }

    #[test]
    fn measure_modes_produce_valid_clusterings() {
        let d = dataset();
        for measure in [
            MeasureMode::Combined,
            MeasureMode::SetResemblance,
            MeasureMode::RandomWalk,
        ] {
            let config = DistinctConfig {
                measure,
                training: small_training(),
                ..Default::default()
            };
            let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
            let truth = &d.truths[1];
            let c = engine.resolve(&truth.refs);
            assert_eq!(c.labels.len(), truth.refs.len());
        }
    }
}

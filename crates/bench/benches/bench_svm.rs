//! Criterion bench: the from-scratch SVM solvers (SMO dual vs Pegasos
//! primal) at the training-set sizes DISTINCT uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use svm::{train_pegasos, train_smo, Dataset, Kernel, PegasosConfig, SmoConfig};

fn blobs(n_per: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new();
    for _ in 0..n_per {
        let pos: Vec<f64> = (0..dim).map(|_| 1.0 + rng.gen_range(-0.5..0.5)).collect();
        d.push(pos, 1.0).unwrap();
        let neg: Vec<f64> = (0..dim).map(|_| -1.0 + rng.gen_range(-0.5..0.5)).collect();
        d.push(neg, -1.0).unwrap();
    }
    d
}

fn bench_svm(c: &mut Criterion) {
    let mut group = c.benchmark_group("svm_train");
    group.sample_size(10);
    for &n_per in &[100usize, 500] {
        let data = blobs(n_per, 19, 7); // 19 = join-path count of the DBLP schema
        group.bench_with_input(
            BenchmarkId::new("smo_linear", n_per * 2),
            &data,
            |b, data| {
                b.iter(|| {
                    let m = train_smo(data, Kernel::Linear, &SmoConfig::default()).unwrap();
                    black_box(m.sv_count())
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("pegasos", n_per * 2), &data, |b, data| {
            b.iter(|| {
                let m = train_pegasos(data, &PegasosConfig::default()).unwrap();
                black_box(m.bias)
            })
        });
    }
    group.finish();

    // Prediction throughput.
    let data = blobs(500, 19, 9);
    let model = train_smo(&data, Kernel::Linear, &SmoConfig::default())
        .unwrap()
        .to_linear()
        .unwrap();
    c.bench_function("linear_predict_1000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (x, _) in data.iter() {
                acc += model.decision(black_box(x));
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_svm);
criterion_main!(benches);

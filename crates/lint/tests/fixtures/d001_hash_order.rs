//@ crate: relgraph
//@ path: crates/relgraph/src/bad_d001.rs
//@ role: library

use rustc_hash::FxHashMap;

/// Accumulates f64 in hash order: the textbook determinism bug.
pub fn total(weights: &FxHashMap<u32, f64>) -> f64 {
    let mut t = 0.0;
    for (_, w) in weights { //~ D001
        t += w;
    }
    t
}

/// Reduces a hash iterator directly — same bug, iterator-chain shape.
pub fn total_chain(weights: &FxHashMap<u32, f64>) -> f64 {
    weights.values().sum() //~ D001
}

/// Emits output rows in hash order.
pub fn rows(weights: &FxHashMap<u32, f64>) -> Vec<u32> {
    let mut out = Vec::new();
    for (k, _) in weights { //~ D001
        out.push(*k);
    }
    out
}

/// Ordered iteration is fine: BTreeMap walks in key order.
pub fn total_sorted(by_node: &std::collections::BTreeMap<u32, f64>) -> f64 {
    by_node.values().sum()
}

//@ crate: cluster
//@ path: crates/cluster/src/suppressed.rs
//@ role: library

/// A proven-safe unwrap, allowed with its invariant as the reason: the
/// finding is consumed and nothing surfaces.
pub fn covered(xs: &[f64]) -> f64 {
    // distinct-lint: allow(D002, reason="caller guarantees xs is non-empty")
    xs.first().unwrap() + 1.0
}

/// Trailing-comment form covers its own line.
pub fn covered_inline(xs: &[f64]) -> f64 {
    xs.first().unwrap() + 2.0 // distinct-lint: allow(D002, reason="caller guarantees xs is non-empty")
}

/// An allow that matches nothing must surface as D000 so dead
/// suppressions cannot accumulate.
pub fn stale_allow() -> u32 {
    // distinct-lint: allow(D004, reason="left behind after a refactor") //~ D000
    7
}

/// An allow without a reason is malformed: D000 at the comment.
pub fn lazy_allow(xs: &[f64]) -> f64 {
    // distinct-lint: allow(D002) //~ D000
    xs.first().unwrap() //~ D002
}

//! Regenerate the golden conformance corpus under `tests/golden/`.
//!
//! Usage: `cargo run -p oracle --bin regen-golden`
//!
//! Rewrites one JSON file per golden case. CI runs this binary and fails
//! if `git diff -- tests/golden` is non-empty afterwards, so the corpus
//! can never silently drift from the oracle.

use std::fs;
use std::path::PathBuf;

fn main() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden");
    fs::create_dir_all(&dir).expect("create tests/golden");
    for template in oracle::golden_cases() {
        let case = oracle::compute_case(&template);
        let path = dir.join(format!("{}.json", case.name));
        let mut text = serde_json::to_string_pretty(&case).expect("serialize golden case");
        text.push('\n');
        fs::write(&path, text).expect("write golden case");
        println!(
            "wrote {} ({} groups, fingerprint {:016x})",
            path.display(),
            case.groups.len(),
            case.catalog_fingerprint
        );
    }
}

//! The synthetic bibliographic world: entities, communities, venues, and
//! papers with community-structured coauthorship.
//!
//! Structural properties (the ones DISTINCT exploits, per §1–2 of the
//! paper):
//!
//! * every real author (entity) belongs to a research community; coauthors
//!   come overwhelmingly from that community, with sticky repeat
//!   collaborations — so references to one entity share coauthor context;
//! * each community prefers a small set of venues — so references to one
//!   entity share conference context;
//! * a configurable fraction of papers pull a coauthor from a foreign
//!   community — the cross-linkage noise that produces realistic errors;
//! * planted ambiguous entities share one author string but live in
//!   different communities (two may share a community when the spec packs
//!   more entities than communities, mirroring the genuinely hard cases).

use crate::config::{AmbiguousSpec, WorldConfig};
use crate::names::NamePool;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Identifier of an entity (a real author).
pub type EntityId = usize;

/// One real author.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Dense id.
    pub id: EntityId,
    /// Display name ("First Last") — shared across entities for planted
    /// ambiguous names.
    pub name: String,
    /// Home community.
    pub community: usize,
    /// Number of authorship records this entity must produce.
    pub target_refs: usize,
    /// True if this entity belongs to a planted ambiguous group.
    pub planted: bool,
    /// Active publication years, inclusive (real authors publish within a
    /// career window, which makes the year attribute genuinely
    /// informative — namesakes from different eras rarely overlap).
    pub active_years: (i64, i64),
}

/// One venue (conference series).
#[derive(Debug, Clone)]
pub struct Venue {
    /// Dense id.
    pub id: usize,
    /// Conference name, unique.
    pub name: String,
    /// Publisher name.
    pub publisher: String,
}

/// One paper.
#[derive(Debug, Clone)]
pub struct Paper {
    /// Dense id.
    pub id: usize,
    /// Title (unique).
    pub title: String,
    /// Venue id.
    pub venue: usize,
    /// Publication year.
    pub year: i64,
    /// Author entities, in byline order (no duplicates).
    pub authors: Vec<EntityId>,
}

/// A planted ambiguous group: which entities share the name.
#[derive(Debug, Clone)]
pub struct AmbiguousGroup {
    /// The shared name.
    pub name: String,
    /// Entity ids sharing it (index = entity number within the group).
    pub entity_ids: Vec<EntityId>,
}

/// The generated world.
#[derive(Debug, Clone)]
pub struct World {
    /// Configuration it was generated from.
    pub config: WorldConfig,
    /// All entities; planted ones come after the ordinary ones.
    pub entities: Vec<Entity>,
    /// All venues.
    pub venues: Vec<Venue>,
    /// All papers.
    pub papers: Vec<Paper>,
    /// Planted groups with ground truth entity ids.
    pub ambiguous_groups: Vec<AmbiguousGroup>,
    /// Per-community preferred venue ids.
    pub community_venues: Vec<Vec<usize>>,
}

/// Venue name for an index (deterministic, acronym-like).
fn venue_name(i: usize) -> String {
    const STEMS: &[&str] = &[
        "VLDB", "SIGMOD", "ICDE", "KDD", "ICDM", "SDM", "CIKM", "WWW", "EDBT", "PODS", "DASFAA",
        "PAKDD", "SSDBM", "WSDM", "ECML", "ICML", "AAAI", "IJCAI", "SIGIR", "WISE",
    ];
    if i < STEMS.len() {
        STEMS[i].to_string()
    } else {
        format!("{}-{}", STEMS[i % STEMS.len()], i / STEMS.len() + 1)
    }
}

/// Publisher name for an index.
fn publisher_name(i: usize) -> String {
    const NAMES: &[&str] = &[
        "ACM",
        "IEEE",
        "Springer",
        "Elsevier",
        "Morgan Kaufmann",
        "USENIX",
    ];
    if i < NAMES.len() {
        NAMES[i].to_string()
    } else {
        format!("Press-{i}")
    }
}

impl World {
    /// Generate a world from a configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails [`WorldConfig::validate`].
    pub fn generate(config: WorldConfig) -> World {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid WorldConfig: {e}")); // distinct-lint: allow(D002, reason="failing fast on an invalid test config is the generator's contract; dev-only crate, never on the resolve path")
        let mut rng = StdRng::seed_from_u64(config.seed);

        // --- Venues & publishers -----------------------------------------
        let venues: Vec<Venue> = (0..config.n_venues)
            .map(|i| Venue {
                id: i,
                name: venue_name(i),
                publisher: publisher_name(rng.gen_range(0..config.n_publishers)),
            })
            .collect();

        // Preferred venues per community.
        let mut community_venues = Vec::with_capacity(config.n_communities);
        let mut venue_ids: Vec<usize> = (0..config.n_venues).collect();
        for _ in 0..config.n_communities {
            venue_ids.shuffle(&mut rng);
            community_venues.push(venue_ids[..config.venues_per_community].to_vec());
        }

        // --- Ordinary entities -------------------------------------------
        let first = NamePool::first_names(config.first_name_pool, config.zipf_exponent);
        let last = NamePool::last_names(config.last_name_pool, config.zipf_exponent);
        let career = |rng: &mut StdRng| career_window(config.year_range, rng);
        let mut entities: Vec<Entity> = Vec::with_capacity(config.n_authors);
        for id in 0..config.n_authors {
            let name = format!("{} {}", first.sample(&mut rng), last.sample(&mut rng));
            // Geometric-ish paper count with mean ≈ mean_papers_per_author,
            // floored at 3 (the paper drops authors with ≤ 2 papers).
            let extra_mean = (config.mean_papers_per_author - 3.0).max(0.0);
            let mut refs = 3usize;
            if extra_mean > 0.0 {
                let p = 1.0 / (1.0 + extra_mean);
                while rng.gen::<f64>() > p {
                    refs += 1;
                    if refs > 200 {
                        break;
                    }
                }
            }
            let active_years = career(&mut rng);
            entities.push(Entity {
                id,
                name,
                community: rng.gen_range(0..config.n_communities),
                target_refs: refs,
                planted: false,
                active_years,
            });
        }

        // --- Planted ambiguous entities ----------------------------------
        let mut ambiguous_groups = Vec::with_capacity(config.ambiguous.len());
        for spec in &config.ambiguous {
            let group = plant_group(
                spec,
                &mut entities,
                config.n_communities,
                config.year_range,
                &first,
                &last,
                &mut rng,
            );
            ambiguous_groups.push(group);
        }

        // --- Papers --------------------------------------------------------
        let papers = generate_papers(&config, &entities, &community_venues, &mut rng);

        World {
            config,
            entities,
            venues,
            papers,
            ambiguous_groups,
            community_venues,
        }
    }

    /// Entities in a community.
    pub fn community_members(&self, community: usize) -> Vec<EntityId> {
        self.entities
            .iter()
            .filter(|e| e.community == community)
            .map(|e| e.id)
            .collect()
    }

    /// Total number of authorship records across all papers.
    pub fn reference_count(&self) -> usize {
        self.papers.iter().map(|p| p.authors.len()).sum()
    }

    /// Number of references produced for an entity.
    pub fn refs_of(&self, entity: EntityId) -> usize {
        self.papers
            .iter()
            .map(|p| p.authors.iter().filter(|&&a| a == entity).count())
            .sum()
    }
}

/// Create the entities for one ambiguous spec, assigning communities
/// round-robin so entities sharing the name differ in context wherever
/// the community budget allows.
///
/// Also plants *namesake* ordinary authors sharing the first or last token
/// of the ambiguous name ("Wei Xu", "Jing Wang"). Real ambiguous names are
/// ambiguous precisely because their parts are common; without namesakes
/// the automatic training-set builder would judge the planted name rare —
/// hence unique — and feed cross-entity pairs to the SVM as positives.
fn plant_group(
    spec: &AmbiguousSpec,
    entities: &mut Vec<Entity>,
    n_communities: usize,
    year_range: (i64, i64),
    first_pool: &NamePool,
    last_pool: &NamePool,
    rng: &mut StdRng,
) -> AmbiguousGroup {
    let start_comm = rng.gen_range(0..n_communities);
    let mut entity_ids = Vec::with_capacity(spec.refs_per_entity.len());
    for (k, &refs) in spec.refs_per_entity.iter().enumerate() {
        let id = entities.len();
        entities.push(Entity {
            id,
            name: spec.name.clone(),
            community: (start_comm + k) % n_communities,
            target_refs: refs,
            planted: true,
            active_years: career_window(year_range, rng),
        });
        entity_ids.push(id);
    }
    // Namesakes: 6 sharing the first token, 6 sharing the last token.
    let tokens: Vec<&str> = spec.name.split_whitespace().collect();
    if let (Some(&first_tok), Some(&last_tok)) = (tokens.first(), tokens.last()) {
        for _ in 0..6 {
            let id = entities.len();
            entities.push(Entity {
                id,
                name: format!("{first_tok} {}", last_pool.sample(rng)),
                community: rng.gen_range(0..n_communities),
                target_refs: 3 + rng.gen_range(0..4),
                planted: false,
                active_years: career_window(year_range, rng),
            });
            let id = id + 1;
            entities.push(Entity {
                id,
                name: format!("{} {last_tok}", first_pool.sample(rng)),
                community: rng.gen_range(0..n_communities),
                target_refs: 3 + rng.gen_range(0..4),
                planted: false,
                active_years: career_window(year_range, rng),
            });
        }
    }
    AmbiguousGroup {
        name: spec.name.clone(),
        entity_ids,
    }
}

/// Draw a career window: a 5–10 year active span inside the global range
/// (clamped to it).
fn career_window(range: (i64, i64), rng: &mut StdRng) -> (i64, i64) {
    let (lo, hi) = range;
    let span = (hi - lo).max(0);
    let duration = rng.gen_range(5..=10).min(span + 1);
    let start = lo + rng.gen_range(0..=(span + 1 - duration).max(0));
    (start, (start + duration - 1).min(hi))
}

/// Generate papers until every entity has produced its target number of
/// authorship records.
fn generate_papers(
    config: &WorldConfig,
    entities: &[Entity],
    community_venues: &[Vec<usize>],
    rng: &mut StdRng,
) -> Vec<Paper> {
    // Community membership lists for fresh-coauthor draws.
    let mut members: Vec<Vec<EntityId>> = vec![Vec::new(); config.n_communities];
    for e in entities {
        members[e.community].push(e.id);
    }
    // Remaining reference budget per entity; past collaborators per entity.
    let mut budget: Vec<usize> = entities.iter().map(|e| e.target_refs).collect();
    let mut collaborators: Vec<Vec<EntityId>> = vec![Vec::new(); entities.len()];

    let mut papers: Vec<Paper> = Vec::new();
    // Lead authors in shuffled order, revisited while they have budget.
    let mut leads: Vec<EntityId> = (0..entities.len()).collect();
    leads.shuffle(rng);

    let mut title_counter = 0usize;
    loop {
        let mut progressed = false;
        for &lead in &leads {
            if budget[lead] == 0 {
                continue;
            }
            progressed = true;
            // --- Assemble the byline -----------------------------------
            let n_co = rng.gen_range(config.coauthors_per_paper.0..=config.coauthors_per_paper.1);
            let mut authors = vec![lead];
            let home = entities[lead].community;
            for _ in 0..n_co {
                let candidate = if !collaborators[lead].is_empty()
                    && rng.gen::<f64>() < config.repeat_collaborator_prob
                {
                    collaborators[lead][rng.gen_range(0..collaborators[lead].len())]
                } else if rng.gen::<f64>() < config.cross_community_prob {
                    // Cross-community noise coauthor.
                    rng.gen_range(0..entities.len())
                } else {
                    let pool = &members[home];
                    pool[rng.gen_range(0..pool.len())]
                };
                // Planted entities must hit their Table-1 reference counts
                // exactly, so they stop appearing once their budget is spent.
                if entities[candidate].planted && budget[candidate] == 0 {
                    continue;
                }
                if !authors.contains(&candidate) {
                    authors.push(candidate);
                }
            }
            // --- Venue & year -------------------------------------------
            let venue = if rng.gen::<f64>() < config.venue_affinity {
                let pref = &community_venues[home];
                pref[rng.gen_range(0..pref.len())]
            } else {
                rng.gen_range(0..config.n_venues)
            };
            // Years come from the lead author's career window.
            let (y0, y1) = entities[lead].active_years;
            let year = rng.gen_range(y0..=y1);
            // --- Record ---------------------------------------------------
            for &a in &authors {
                budget[a] = budget[a].saturating_sub(1);
            }
            // Sticky collaboration only forms inside a community: real
            // cross-community coauthorships are one-off, and letting them
            // into the repeat-collaborator pool would amplify a single
            // noise edge into a bridge between communities.
            for i in 0..authors.len() {
                for j in 0..authors.len() {
                    if i != j
                        && entities[authors[i]].community == entities[authors[j]].community
                        && !collaborators[authors[i]].contains(&authors[j])
                    {
                        collaborators[authors[i]].push(authors[j]);
                    }
                }
            }
            title_counter += 1;
            papers.push(Paper {
                id: papers.len(),
                title: format!("On Topic {title_counter}"),
                venue,
                year,
                authors,
            });
        }
        if !progressed {
            break;
        }
    }
    papers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        let mut config = WorldConfig::tiny(7);
        config.ambiguous = vec![
            AmbiguousSpec::new("Wei Wang", vec![20, 10, 5]),
            AmbiguousSpec::new("Hui Fang", vec![4, 3]),
        ];
        World::generate(config)
    }

    #[test]
    fn world_has_expected_shape() {
        let w = tiny_world();
        // 250 ordinary + (3 + 2) planted + 12 namesakes per planted group.
        assert_eq!(w.entities.len(), 250 + 3 + 2 + 24);
        assert_eq!(w.venues.len(), 24);
        assert_eq!(w.ambiguous_groups.len(), 2);
        assert!(!w.papers.is_empty());
        assert_eq!(w.community_venues.len(), 10);
        for cv in &w.community_venues {
            assert_eq!(cv.len(), w.config.venues_per_community);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_world();
        let b = tiny_world();
        assert_eq!(a.papers.len(), b.papers.len());
        for (pa, pb) in a.papers.iter().zip(&b.papers) {
            assert_eq!(pa.authors, pb.authors);
            assert_eq!(pa.venue, pb.venue);
            assert_eq!(pa.year, pb.year);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(WorldConfig::tiny(1));
        let b = World::generate(WorldConfig::tiny(2));
        let same = a.papers.len() == b.papers.len()
            && a.papers
                .iter()
                .zip(&b.papers)
                .all(|(x, y)| x.authors == y.authors);
        assert!(!same);
    }

    #[test]
    fn planted_entities_share_name_and_meet_ref_targets() {
        let w = tiny_world();
        let group = &w.ambiguous_groups[0];
        assert_eq!(group.name, "Wei Wang");
        assert_eq!(group.entity_ids.len(), 3);
        for &eid in &group.entity_ids {
            assert_eq!(w.entities[eid].name, "Wei Wang");
            assert!(w.entities[eid].planted);
        }
        // Planted reference counts are exact (Table 1 fidelity).
        for (k, &eid) in group.entity_ids.iter().enumerate() {
            let want = w.config.ambiguous[0].refs_per_entity[k];
            let got = w.refs_of(eid);
            assert_eq!(got, want, "entity {eid}");
        }
    }

    #[test]
    fn planted_entities_get_distinct_communities() {
        let w = tiny_world();
        let group = &w.ambiguous_groups[0];
        let comms: std::collections::HashSet<usize> = group
            .entity_ids
            .iter()
            .map(|&e| w.entities[e].community)
            .collect();
        // 3 entities, 6 communities -> all distinct.
        assert_eq!(comms.len(), 3);
    }

    #[test]
    fn every_entity_reaches_its_budget() {
        let w = tiny_world();
        for e in &w.entities {
            let got = w.refs_of(e.id);
            assert!(
                got >= e.target_refs,
                "entity {} got {got} < {}",
                e.id,
                e.target_refs
            );
        }
    }

    #[test]
    fn bylines_have_no_duplicates() {
        let w = tiny_world();
        for p in &w.papers {
            let set: std::collections::HashSet<_> = p.authors.iter().collect();
            assert_eq!(
                set.len(),
                p.authors.len(),
                "paper {} byline {:?}",
                p.id,
                p.authors
            );
            assert!(!p.authors.is_empty());
        }
    }

    #[test]
    fn coauthorship_is_community_dominated() {
        let w = tiny_world();
        let mut same = 0usize;
        let mut cross = 0usize;
        for p in &w.papers {
            let lead_comm = w.entities[p.authors[0]].community;
            for &a in &p.authors[1..] {
                if w.entities[a].community == lead_comm {
                    same += 1;
                } else {
                    cross += 1;
                }
            }
        }
        assert!(same > 3 * cross, "same {same}, cross {cross}");
    }

    #[test]
    fn venues_are_community_dominated() {
        let w = tiny_world();
        let mut preferred = 0usize;
        let mut other = 0usize;
        for p in &w.papers {
            let lead_comm = w.entities[p.authors[0]].community;
            if w.community_venues[lead_comm].contains(&p.venue) {
                preferred += 1;
            } else {
                other += 1;
            }
        }
        assert!(
            preferred > 2 * other,
            "preferred {preferred}, other {other}"
        );
    }

    #[test]
    fn years_within_range() {
        let w = tiny_world();
        let (lo, hi) = w.config.year_range;
        assert!(w.papers.iter().all(|p| (lo..=hi).contains(&p.year)));
    }

    #[test]
    fn titles_are_unique() {
        let w = tiny_world();
        let set: std::collections::HashSet<&str> =
            w.papers.iter().map(|p| p.title.as_str()).collect();
        assert_eq!(set.len(), w.papers.len());
    }

    #[test]
    fn community_members_listing() {
        let w = tiny_world();
        let all: usize = (0..w.config.n_communities)
            .map(|c| w.community_members(c).len())
            .sum();
        assert_eq!(all, w.entities.len());
    }

    #[test]
    fn reference_count_sums_bylines() {
        let w = tiny_world();
        let total: usize = w.papers.iter().map(|p| p.authors.len()).sum();
        assert_eq!(w.reference_count(), total);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Small random-but-valid configurations.
        fn arbitrary_config() -> impl Strategy<Value = WorldConfig> {
            (
                any::<u64>(),
                20usize..80,                                   // authors
                2usize..8,                                     // communities
                1usize..3,                                     // venues per community
                0.0f64..0.9,                                   // repeat collaborator
                0.0f64..0.4,                                   // cross community
                0.3f64..1.0,                                   // venue affinity
                proptest::option::of((2usize..5, 3usize..12)), // ambiguous spec
            )
                .prop_map(
                    |(seed, authors, comms, vpc, repeat, cross, affinity, amb)| WorldConfig {
                        seed,
                        n_authors: authors,
                        n_venues: (comms * vpc).max(4) + 4,
                        n_communities: comms,
                        venues_per_community: vpc,
                        repeat_collaborator_prob: repeat,
                        cross_community_prob: cross,
                        venue_affinity: affinity,
                        mean_papers_per_author: 4.0,
                        first_name_pool: 30,
                        last_name_pool: 60,
                        ambiguous: amb
                            .map(|(entities, per)| {
                                vec![AmbiguousSpec::new("Test Name", vec![per; entities])]
                            })
                            .unwrap_or_default(),
                        ..Default::default()
                    },
                )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn generated_worlds_satisfy_invariants(config in arbitrary_config()) {
                config.validate().unwrap();
                let w = World::generate(config.clone());
                // Every entity reaches its reference budget; planted ones
                // exactly.
                for e in &w.entities {
                    let got = w.refs_of(e.id);
                    if e.planted {
                        prop_assert_eq!(got, e.target_refs, "planted entity {}", e.id);
                    } else {
                        prop_assert!(got >= e.target_refs);
                    }
                }
                // Bylines are duplicate-free and non-empty; years in the
                // lead author's window.
                for p in &w.papers {
                    prop_assert!(!p.authors.is_empty());
                    let set: std::collections::HashSet<_> = p.authors.iter().collect();
                    prop_assert_eq!(set.len(), p.authors.len());
                    let (lo, hi) = w.entities[p.authors[0]].active_years;
                    prop_assert!((lo..=hi).contains(&p.year));
                    prop_assert!(p.venue < w.venues.len());
                }
                // The catalog emits with referential integrity.
                let d = crate::dblp::to_catalog(&w).unwrap();
                prop_assert!(d.catalog.is_finalized());
                prop_assert_eq!(
                    d.publish_entities.len(),
                    d.catalog.relation(d.publish).len()
                );
            }

            #[test]
            fn generation_is_deterministic_for_any_config(config in arbitrary_config()) {
                let a = World::generate(config.clone());
                let b = World::generate(config);
                prop_assert_eq!(a.papers.len(), b.papers.len());
                for (x, y) in a.papers.iter().zip(&b.papers) {
                    prop_assert_eq!(&x.authors, &y.authors);
                    prop_assert_eq!(x.venue, y.venue);
                }
            }
        }
    }
}

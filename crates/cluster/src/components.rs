//! Component-scoped cluster repair.
//!
//! Incremental resolution re-clusters only the connected components of the
//! similarity graph that an update touched, then composes the per-component
//! results back into one global [`Clustering`]. This is lossless whenever
//! the merge threshold is positive: two items in different components have
//! zero similarity under every composite measure (child-sum arithmetic
//! keeps cross-component cluster sums at exactly zero), so the batch
//! engine could never have merged across a component boundary.

use crate::dendrogram::Dendrogram;
use crate::engine::Clustering;

/// Connected components of an `n`-item similarity graph, probing
/// `adjacent(i, j)` for every pair (`i < j`).
///
/// Components are returned with members ascending, ordered by smallest
/// member — a canonical form independent of probe order.
pub fn connected_components(n: usize, adjacent: &dyn Fn(usize, usize) -> bool) -> Vec<Vec<usize>> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        // distinct-lint: allow(D104, reason="path-halving union-find walk, amortized near-constant and bounded by the forest depth")
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if adjacent(i, j) {
                let ri = find(&mut parent, i);
                let rj = find(&mut parent, j);
                if ri != rj {
                    let (lo, hi) = if ri < rj { (ri, rj) } else { (rj, ri) };
                    parent[hi] = lo;
                }
            }
        }
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let root = find(&mut parent, i);
        members[root].push(i);
    }
    members.retain(|m| !m.is_empty());
    members
}

/// One component's clustering, expressed in that component's local item
/// space (`0..members.len()`), tagged with the global indices it covers.
#[derive(Debug, Clone)]
pub struct ComponentClustering {
    /// Global item indices, ascending; local item `l` is `members[l]`.
    pub members: Vec<usize>,
    /// Merge history over the local items.
    pub dendrogram: Dendrogram,
}

/// Compose per-component clusterings into one global [`Clustering`] over
/// `n` items, equal (labels and partition) to what a batch run over the
/// full similarity matrix would produce when no merge crosses a component
/// boundary.
///
/// Every item in `0..n` must appear in exactly one component. Merges are
/// replayed by repeatedly taking the pending merge with the highest
/// similarity whose part-internal predecessors have all been replayed
/// (ties broken by part index) — each part's internal merge order, and
/// thereby every local id dependency, is always respected, even when a
/// non-monotone measure produced similarity inversions inside a part.
/// When every part's similarities are non-increasing this is exactly the
/// global non-increasing order. Labels are dense in order of first
/// appearance, exactly like [`Dendrogram::cut`] — and since
/// [`Dendrogram::cut`] applies merges order-independently, the labels
/// match a batch run regardless of inversions.
pub fn compose(n: usize, parts: &[ComponentClustering]) -> Clustering {
    debug_assert_eq!(
        parts.iter().map(|p| p.members.len()).sum::<usize>(),
        n,
        "components must partition the item set"
    );
    let mut dendrogram = Dendrogram::new(n);
    // Per part: local cluster id -> global cluster id. Local leaves map
    // through `members`; local merge ids are filled in as we replay.
    let mut global_id: Vec<Vec<usize>> = parts
        .iter()
        .map(|part| {
            let local_n = part.members.len();
            let mut ids = part.members.clone();
            ids.resize(local_n + part.dendrogram.merges().len(), usize::MAX);
            ids
        })
        .collect();
    // K-way head pick over the parts' merge sequences.
    let mut next: Vec<usize> = vec![0; parts.len()];
    let total: usize = parts.iter().map(|p| p.dendrogram.merges().len()).sum();
    for _ in 0..total {
        let mut best: Option<(f64, usize)> = None;
        for (p, part) in parts.iter().enumerate() {
            if let Some(m) = part.dendrogram.merges().get(next[p]) {
                let better = match best {
                    Some((sim, _)) => m.similarity > sim,
                    None => true,
                };
                if better {
                    best = Some((m.similarity, p));
                }
            }
        }
        let Some((_, p)) = best else { break };
        let part = &parts[p];
        let m = part.dendrogram.merges()[next[p]];
        next[p] += 1;
        let a = global_id[p][m.a];
        let b = global_id[p][m.b];
        debug_assert!(a != usize::MAX && b != usize::MAX, "merge replay order");
        let into = dendrogram.record(a, b, m.similarity, m.size);
        global_id[p][m.into] = into;
    }
    let labels = dendrogram.cut(f64::NEG_INFINITY);
    Clustering { labels, dendrogram }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{agglomerate, MatrixMerger};
    use crate::linkage::Linkage;

    /// A block-diagonal similarity matrix: items within one block connect,
    /// blocks never do.
    fn block_matrix(blocks: &[&[usize]], sims: &dyn Fn(usize, usize) -> f64) -> Vec<Vec<f64>> {
        let n: usize = blocks.iter().map(|b| b.len()).sum();
        let mut m = vec![vec![0.0; n]; n];
        for block in blocks {
            for &i in *block {
                for &j in *block {
                    if i != j {
                        m[i][j] = sims(i, j);
                    }
                }
            }
        }
        m
    }

    #[test]
    fn components_of_block_matrix() {
        let blocks: &[&[usize]] = &[&[0, 2, 4], &[1, 3], &[5]];
        let m = block_matrix(blocks, &|i, j| 0.1 + 0.01 * (i + j) as f64);
        let comps = connected_components(6, &|i, j| m[i][j] != 0.0);
        assert_eq!(comps, vec![vec![0, 2, 4], vec![1, 3], vec![5]]);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        assert!(connected_components(0, &|_, _| true).is_empty());
        assert_eq!(connected_components(1, &|_, _| true), vec![vec![0]]);
        assert_eq!(
            connected_components(3, &|_, _| false),
            vec![vec![0], vec![1], vec![2]]
        );
    }

    #[test]
    fn compose_equals_batch_on_block_diagonal_matrices() {
        // Several interleavings of three blocks, including equal
        // similarities across blocks to exercise the tie-break.
        let blocks: &[&[usize]] = &[&[0, 3, 5, 6], &[1, 4], &[2, 7, 8]];
        let sims = |i: usize, j: usize| 0.2 + ((i * 7 + j * 13) % 5) as f64 * 0.15;
        let sym = |i: usize, j: usize| if i < j { sims(i, j) } else { sims(j, i) };
        let m = block_matrix(blocks, &sym);
        let n = m.len();
        let min_sim = 0.25;

        let mut batch = MatrixMerger::new(m.clone(), Linkage::Average);
        let batch = agglomerate(n, &mut batch, min_sim);

        let comps = connected_components(n, &|i, j| m[i][j] != 0.0);
        let parts: Vec<ComponentClustering> = comps
            .into_iter()
            .map(|members| {
                let local: Vec<Vec<f64>> = members
                    .iter()
                    .map(|&i| members.iter().map(|&j| m[i][j]).collect())
                    .collect();
                let mut merger = MatrixMerger::new(local, Linkage::Average);
                let c = agglomerate(members.len(), &mut merger, min_sim);
                ComponentClustering {
                    members,
                    dendrogram: c.dendrogram,
                }
            })
            .collect();
        let composed = compose(n, &parts);
        assert_eq!(composed.labels, batch.labels);
        // The composed dendrogram keeps the non-increasing similarity
        // prefix property.
        let sims: Vec<f64> = composed
            .dendrogram
            .merges()
            .iter()
            .map(|m| m.similarity)
            .collect();
        assert!(sims.windows(2).all(|w| w[0] >= w[1]), "{sims:?}");
    }

    #[test]
    fn compose_of_single_component_is_identity() {
        let m = vec![
            vec![0.0, 0.9, 0.1],
            vec![0.9, 0.0, 0.2],
            vec![0.1, 0.2, 0.0],
        ];
        let mut merger = MatrixMerger::new(m, Linkage::Average);
        let batch = agglomerate(3, &mut merger, 0.05);
        let parts = vec![ComponentClustering {
            members: vec![0, 1, 2],
            dendrogram: batch.dendrogram.clone(),
        }];
        let composed = compose(3, &parts);
        assert_eq!(composed.labels, batch.labels);
        assert_eq!(composed.dendrogram.merges(), batch.dendrogram.merges());
    }
}

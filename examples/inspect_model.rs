//! Model inspection: train DISTINCT, auto-calibrate the threshold, and
//! dump everything a practitioner would want to see — the learned weight
//! of every join path, the similarity distributions of same-entity vs
//! cross-entity reference pairs, and a full min-sim sweep.
//!
//! Run: `cargo run --release --example inspect_model [seed] [--tiny]`

use datagen::{AmbiguousSpec, World, WorldConfig};
use distinct::{Distinct, DistinctConfig, TrainingConfig};

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let mut config = if tiny {
        WorldConfig::tiny(42)
    } else {
        WorldConfig::default()
    };
    config.ambiguous = vec![
        AmbiguousSpec::new("Wei Wang", vec![10, 8, 5]),
        AmbiguousSpec::new("Hui Fang", vec![5, 4]),
    ];
    if let Some(seed) = std::env::args().nth(1).filter(|a| a != "--tiny") {
        config.seed = seed.parse().unwrap();
    }
    let d = datagen::to_catalog(&World::generate(config)).unwrap();
    let cfg = DistinctConfig {
        training: TrainingConfig {
            positives: 250,
            negatives: 250,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", cfg).unwrap();
    let report = engine.train().unwrap();
    if let Some(c) = engine
        .calibrate_threshold(&distinct::CalibrationConfig::default())
        .unwrap()
    {
        println!(
            "calibrated min_sim = {} (f {:.3}, acc {:.3}, {} groups)",
            c.min_sim, c.f_measure, c.accuracy, c.groups
        );
        for (t, a, f) in &c.sweep {
            println!("  cal sweep {t:.0e}: acc {a:.3} f {f:.3}");
        }
    }
    println!(
        "unique names: {}, pos {}, neg {}, resem acc {:.3}, walk acc {:.3}",
        report.unique_names,
        report.positives,
        report.negatives,
        report.resem_accuracy,
        report.walk_accuracy
    );
    for (desc, r, w) in &report.path_weights {
        println!("  resem {r:.4}  walk {w:.4}  {desc}");
    }

    // Similarity distributions for the Wei Wang refs.
    let truth = &d.truths[0];
    let profiles: Vec<_> = truth
        .refs
        .iter()
        .map(|&r| (*engine.profile(r)).clone())
        .collect();
    let merger = distinct::DistinctMerger::from_profiles(
        &profiles,
        engine.weights(),
        distinct::MeasureMode::Combined,
        distinct::CompositeMode::Geometric,
    );
    let mut same = Vec::new();
    let mut diff = Vec::new();
    for i in 0..profiles.len() {
        for j in (i + 1)..profiles.len() {
            let r = merger.leaf_resemblance(i, j);
            let w = merger.leaf_walk(i, j);
            let s = (r * w).sqrt();
            if truth.labels[i] == truth.labels[j] {
                same.push((r, w, s));
            } else {
                diff.push((r, w, s));
            }
        }
    }
    let stats = |v: &[(f64, f64, f64)]| {
        let n = v.len() as f64;
        let mr = v.iter().map(|x| x.0).sum::<f64>() / n;
        let mw = v.iter().map(|x| x.1).sum::<f64>() / n;
        let ms = v.iter().map(|x| x.2).sum::<f64>() / n;
        let mut sims: Vec<f64> = v.iter().map(|x| x.2).collect();
        sims.sort_by(f64::total_cmp);
        (mr, mw, ms, sims[sims.len() / 2], sims[sims.len() * 9 / 10])
    };
    let (mr, mw, ms, med, p90) = stats(&same);
    println!("same:  resem {mr:.4} walk {mw:.6} geo {ms:.5} median {med:.5} p90 {p90:.5}");
    let (mr, mw, ms, med, p90) = stats(&diff);
    println!("diff:  resem {mr:.4} walk {mw:.6} geo {ms:.5} median {med:.5} p90 {p90:.5}");

    // min-sim sweep on both planted names.
    for grid in distinct::min_sim_grid() {
        let mut line = format!("min_sim {grid:>8.0e}:");
        for truth in &d.truths {
            let c = engine
                .resolve(&distinct::ResolveRequest::new(&truth.refs).min_sim(grid))
                .clustering;
            let s = eval::pairwise_scores(&truth.labels, &c.labels);
            line.push_str(&format!(
                "  {} f={:.3} p={:.3} r={:.3} k={}",
                truth.name,
                s.f_measure,
                s.precision,
                s.recall,
                c.cluster_count()
            ));
        }
        println!("{line}");
    }
}

//! Inline suppressions: `// distinct-lint: allow(D002, reason="...")`.
//!
//! A suppression comment covers findings on its own line; a comment that
//! stands alone on a line covers the next source line instead. Every
//! suppression must carry a non-empty reason, and every suppression must
//! actually suppress something — violations of either rule surface as
//! [`LintId::D000`] findings, so dead or lazy allows cannot accumulate.
//!
//! A second body form, `// distinct-lint: shared(<merge-discipline>)`, is
//! not a suppression: it *declares* an interior-mutability cell's
//! ordered-commit or commutative-merge story for the D108 shared-state
//! registry ([`crate::concur`]). A third, `// distinct-lint:
//! scratch(<reuse-discipline>)`, declares a reusable arena/cache/scratch
//! structure's cross-call reuse story for the D112 scratch registry
//! ([`crate::alloc`]). Both are parsed here (so a malformed body still
//! surfaces as D000) but collected and validated by the semantic passes,
//! not by the per-line suppression matcher.

use crate::catalog::{Finding, LintId};
use crate::lexer::TokKind;
use crate::model::FileCtx;

/// One parsed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Lints this comment allows.
    pub ids: Vec<LintId>,
    /// The mandatory justification.
    pub reason: String,
    /// Line the comment sits on.
    pub comment_line: u32,
    /// Line whose findings it covers.
    pub target_line: u32,
    /// Whether any finding was actually suppressed (filled by the driver).
    pub used: bool,
}

/// Scan a file's comment tokens for suppressions. Malformed ones come back
/// as D000 findings immediately.
pub fn collect(ctx: &FileCtx) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut findings = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != TokKind::Comment {
            continue;
        }
        let Some(pos) = t.text.find("distinct-lint:") else {
            continue;
        };
        let body = t.text[pos + "distinct-lint:".len()..].trim();
        if body.starts_with("shared") {
            // A shared(...) registry declaration, not a suppression; its
            // shape and placement are validated by concur::d108.
            if parse_shared(body).is_err() {
                findings.push(Finding {
                    id: LintId::D000,
                    file: ctx.path.clone(),
                    line: t.line,
                    message: format!(
                        "expected `shared(<merge-discipline>)` with a non-empty discipline, got `{body}`"
                    ),
                });
            }
            continue;
        }
        if body.starts_with("scratch") {
            // A scratch(...) registry declaration, not a suppression; its
            // shape and placement are validated by alloc::d112.
            if parse_scratch(body).is_err() {
                findings.push(Finding {
                    id: LintId::D000,
                    file: ctx.path.clone(),
                    line: t.line,
                    message: format!(
                        "expected `scratch(<reuse-discipline>)` with a non-empty discipline, got `{body}`"
                    ),
                });
            }
            continue;
        }
        match parse_body(body) {
            Ok((ids, reason)) => {
                // A comment with code before it on the same line covers
                // that line; a standalone comment covers the next line.
                let standalone = ctx
                    .prev_code(i)
                    .map(|p| ctx.toks[p].line < t.line)
                    .unwrap_or(true);
                let target_line = if standalone { t.line + 1 } else { t.line };
                sups.push(Suppression {
                    ids,
                    reason,
                    comment_line: t.line,
                    target_line,
                    used: false,
                });
            }
            Err(why) => findings.push(Finding {
                id: LintId::D000,
                file: ctx.path.clone(),
                line: t.line,
                message: why,
            }),
        }
    }
    (sups, findings)
}

/// Parse `shared(<merge-discipline>)` into the discipline text. The
/// discipline is free prose naming the cell's ordered-commit or
/// commutative-merge story; only non-emptiness is enforced here.
pub fn parse_shared(body: &str) -> Result<String, String> {
    let inner = body
        .trim()
        .strip_prefix("shared")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.rfind(')').map(|e| &r[..e]))
        .ok_or_else(|| format!("expected `shared(<merge-discipline>)`, got `{body}`"))?;
    if inner.trim().is_empty() {
        return Err("shared(...) declaration must name its merge discipline".into());
    }
    Ok(inner.trim().to_string())
}

/// Parse `scratch(<reuse-discipline>)` into the discipline text. The
/// discipline is free prose naming how the structure is reused across
/// calls and why reuse preserves bit-identical output; only
/// non-emptiness is enforced here.
pub fn parse_scratch(body: &str) -> Result<String, String> {
    let inner = body
        .trim()
        .strip_prefix("scratch")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.rfind(')').map(|e| &r[..e]))
        .ok_or_else(|| format!("expected `scratch(<reuse-discipline>)`, got `{body}`"))?;
    if inner.trim().is_empty() {
        return Err("scratch(...) declaration must name its reuse discipline".into());
    }
    Ok(inner.trim().to_string())
}

/// Parse `allow(D001, D004, reason="...")`.
fn parse_body(body: &str) -> Result<(Vec<LintId>, String), String> {
    let body = body.trim();
    let inner = body
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.rfind(')').map(|e| &r[..e]))
        .ok_or_else(|| format!("expected `allow(D00x, reason=\"...\")`, got `{body}`"))?;
    let mut ids = Vec::new();
    let mut reason = None;
    for part in split_args(inner) {
        let part = part.trim();
        if let Some(r) = part.strip_prefix("reason") {
            let r = r.trim_start();
            let r = r
                .strip_prefix('=')
                .map(str::trim)
                .ok_or("`reason` must be `reason=\"...\"`")?;
            let r = r
                .strip_prefix('"')
                .and_then(|r| r.strip_suffix('"'))
                .ok_or("reason must be a double-quoted string")?;
            if r.trim().is_empty() {
                return Err("reason string must not be empty".into());
            }
            reason = Some(r.to_string());
        } else if !part.is_empty() {
            let id = LintId::parse(part).ok_or_else(|| format!("unknown lint id `{part}`"))?;
            ids.push(id);
        }
    }
    if ids.is_empty() {
        return Err("suppression names no lint ids".into());
    }
    let reason = reason.ok_or("suppression is missing its reason=\"...\"")?;
    Ok((ids, reason))
}

/// Split on commas that are not inside the reason string.
fn split_args(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    out.push(cur);
    out
}

/// Drop findings covered by a suppression, marking those suppressions used.
/// Returns the surviving findings; afterwards, unused suppressions are the
/// caller's D000s.
pub fn apply(findings: Vec<Finding>, sups: &mut [Suppression]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            for s in sups.iter_mut() {
                if s.target_line == f.line && s.ids.contains(&f.id) {
                    s.used = true;
                    return false;
                }
            }
            true
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Role;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::new("crates/c/src/a.rs", "c", Role::Library, src)
    }

    #[test]
    fn trailing_suppression_covers_its_line() {
        let c = ctx("let x = m.get(&k); // distinct-lint: allow(D002, reason=\"checked above\")");
        let (sups, bad) = collect(&c);
        assert!(bad.is_empty());
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].target_line, 1);
        assert_eq!(sups[0].ids, vec![LintId::D002]);
        assert_eq!(sups[0].reason, "checked above");
    }

    #[test]
    fn standalone_suppression_covers_next_line() {
        let c = ctx(
            "// distinct-lint: allow(D001, reason=\"integer counts only\")\nfor v in m.values() {}",
        );
        let (sups, bad) = collect(&c);
        assert!(bad.is_empty());
        assert_eq!(sups[0].target_line, 2);
    }

    #[test]
    fn multiple_ids() {
        let c = ctx("x(); // distinct-lint: allow(D002, D004, reason=\"why, and more\")");
        let (sups, bad) = collect(&c);
        assert!(bad.is_empty());
        assert_eq!(sups[0].ids, vec![LintId::D002, LintId::D004]);
        assert_eq!(sups[0].reason, "why, and more");
    }

    #[test]
    fn missing_reason_is_d000() {
        let c = ctx("x(); // distinct-lint: allow(D002)");
        let (sups, bad) = collect(&c);
        assert!(sups.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].id, LintId::D000);
    }

    #[test]
    fn empty_reason_is_d000() {
        let c = ctx("x(); // distinct-lint: allow(D002, reason=\"  \")");
        let (_, bad) = collect(&c);
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn unknown_id_is_d000() {
        let c = ctx("x(); // distinct-lint: allow(D042, reason=\"nope\")");
        let (_, bad) = collect(&c);
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn shared_declaration_is_neither_suppression_nor_d000() {
        let c = ctx(
            "// distinct-lint: shared(first-insert-wins: racing inserts are bit-identical)\nshards: Vec<Mutex<Map>>,",
        );
        let (sups, bad) = collect(&c);
        assert!(sups.is_empty());
        assert!(bad.is_empty());
    }

    #[test]
    fn empty_shared_discipline_is_d000() {
        let c = ctx("// distinct-lint: shared(  )\nx: Mutex<u32>,");
        let (sups, bad) = collect(&c);
        assert!(sups.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].id, LintId::D000);
    }

    #[test]
    fn scratch_declaration_is_neither_suppression_nor_d000() {
        let c = ctx(
            "// distinct-lint: scratch(rebuilt in place per call: identical inputs intern identically)\nlet arena = SetArena::build(sets);",
        );
        let (sups, bad) = collect(&c);
        assert!(sups.is_empty());
        assert!(bad.is_empty());
    }

    #[test]
    fn empty_scratch_discipline_is_d000() {
        let c = ctx("// distinct-lint: scratch()\nlet pool = ArenaPool::new();");
        let (sups, bad) = collect(&c);
        assert!(sups.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].id, LintId::D000);
    }

    #[test]
    fn apply_consumes_matching_findings() {
        let c = ctx("bad(); // distinct-lint: allow(D002, reason=\"proven\")");
        let (mut sups, _) = collect(&c);
        let fs = vec![
            Finding {
                id: LintId::D002,
                file: "f".into(),
                line: 1,
                message: "m".into(),
            },
            Finding {
                id: LintId::D002,
                file: "f".into(),
                line: 9,
                message: "m".into(),
            },
        ];
        let left = apply(fs, &mut sups);
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].line, 9);
        assert!(sups[0].used);
    }
}

//! Hyperparameter grid search with cross-validation.

use crate::cv::{cross_validate, mean};
use crate::data::{Dataset, Result, SvmError};
use crate::kernel::Kernel;
use crate::smo::{train_smo, SmoConfig};

/// Result of a grid search.
#[derive(Debug, Clone)]
pub struct GridSearchResult {
    /// Selected soft-margin penalty.
    pub c: f64,
    /// Mean cross-validated accuracy at the selected value.
    pub accuracy: f64,
    /// Full sweep: `(C, mean accuracy)` per candidate.
    pub sweep: Vec<(f64, f64)>,
}

/// The default candidate grid for C (log-spaced).
pub fn default_c_grid() -> Vec<f64> {
    vec![0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0]
}

/// Select the soft-margin penalty `C` for a linear SVM by k-fold
/// cross-validation; ties break toward the smaller (more regularized) C.
pub fn select_c(
    data: &Dataset,
    kernel: Kernel,
    candidates: &[f64],
    folds: usize,
    seed: u64,
) -> Result<GridSearchResult> {
    if candidates.is_empty() {
        return Err(SvmError::BadParameter {
            name: "candidates",
            reason: "need at least one C value".into(),
        });
    }
    let mut sweep = Vec::with_capacity(candidates.len());
    for &c in candidates {
        if c <= 0.0 {
            return Err(SvmError::BadParameter {
                name: "candidates",
                reason: format!("C = {c} is not positive"),
            });
        }
        let accs = cross_validate(data, folds, seed, |train| {
            let cfg = SmoConfig {
                c,
                ..Default::default()
            };
            let model = train_smo(train, kernel, &cfg)?;
            Ok(move |x: &[f64]| model.predict(x))
        })?;
        sweep.push((c, mean(&accs)));
    }
    let (c, accuracy) = sweep
        .iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.total_cmp(&a.0)))
        .expect("non-empty sweep"); // distinct-lint: allow(D002, reason="empty candidate lists are rejected with BadParameter at entry, so the sweep has at least one element")
    Ok(GridSearchResult { c, accuracy, sweep })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy_blobs(n_per: usize, noise: f64, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n_per {
            d.push(vec![1.0 + rng.gen_range(-noise..noise)], 1.0)
                .unwrap();
            d.push(vec![-1.0 + rng.gen_range(-noise..noise)], -1.0)
                .unwrap();
        }
        d
    }

    #[test]
    fn selects_a_candidate_and_reports_sweep() {
        let data = noisy_blobs(40, 0.8, 1);
        let r = select_c(&data, Kernel::Linear, &[0.1, 1.0, 10.0], 4, 7).unwrap();
        assert!([0.1, 1.0, 10.0].contains(&r.c));
        assert_eq!(r.sweep.len(), 3);
        assert!((0.0..=1.0).contains(&r.accuracy));
        // The selected accuracy is the sweep maximum.
        let best = r.sweep.iter().map(|&(_, a)| a).fold(0.0f64, f64::max);
        assert!((r.accuracy - best).abs() < 1e-12);
    }

    #[test]
    fn clean_data_achieves_high_cv_accuracy() {
        let data = noisy_blobs(40, 0.3, 2);
        let r = select_c(&data, Kernel::Linear, &default_c_grid(), 5, 3).unwrap();
        assert!(r.accuracy > 0.95, "cv accuracy {}", r.accuracy);
    }

    #[test]
    fn ties_prefer_smaller_c() {
        // Perfectly separable: most Cs achieve 1.0; the smallest must win.
        let data = noisy_blobs(30, 0.1, 3);
        let r = select_c(&data, Kernel::Linear, &[0.5, 5.0, 50.0], 3, 5).unwrap();
        if r.accuracy == 1.0 {
            assert_eq!(r.c, 0.5);
        }
    }

    #[test]
    fn invalid_grids_rejected() {
        let data = noisy_blobs(10, 0.3, 4);
        assert!(select_c(&data, Kernel::Linear, &[], 3, 0).is_err());
        assert!(select_c(&data, Kernel::Linear, &[0.0], 3, 0).is_err());
        assert!(select_c(&data, Kernel::Linear, &[-1.0], 3, 0).is_err());
    }
}

//! Constraint-driven entity resolution: simulate an analyst reviewing
//! DISTINCT's output and injecting must-link / cannot-link corrections,
//! then measure how much each round of feedback improves the clustering.
//!
//! Run: `cargo run --release --example user_feedback`

use datagen::{to_catalog, AmbiguousSpec, World, WorldConfig};
use distinct::{Distinct, DistinctConfig};
use eval::PairCounts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = WorldConfig::tiny(46);
    config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![12, 9, 6])];
    let dataset = to_catalog(&World::generate(config))?;
    let mut engine = Distinct::prepare(
        &dataset.catalog,
        "Publish",
        "author",
        DistinctConfig::default(),
    )?;
    engine.train()?;
    engine.calibrate_threshold(&Default::default())?;

    let truth = &dataset.truths[0];
    let mut must: Vec<(usize, usize)> = Vec::new();
    let mut cannot: Vec<(usize, usize)> = Vec::new();

    for round in 0..4 {
        let clustering = engine
            .resolve(
                &distinct::ResolveRequest::new(&truth.refs)
                    .must_link(&must)
                    .cannot_link(&cannot),
            )
            .clustering;
        let s = PairCounts::from_labels(&truth.labels, &clustering.labels).scores();
        println!(
            "round {round}: {} constraints -> {} groups, p {:.3} r {:.3} f {:.3}",
            must.len() + cannot.len(),
            clustering.cluster_count(),
            s.precision,
            s.recall,
            s.f_measure
        );
        if s.f_measure >= 0.9999 {
            println!("perfect clustering reached");
            break;
        }
        // The "analyst" reviews one mistake of each kind per round (we use
        // ground truth as the oracle; a real analyst checks home pages, as
        // the paper's labellers did).
        let mut added = false;
        'fp: for i in 0..truth.refs.len() {
            for j in (i + 1)..truth.refs.len() {
                let same_pred = clustering.labels[i] == clustering.labels[j];
                let same_true = truth.labels[i] == truth.labels[j];
                if same_pred && !same_true && !cannot.contains(&(i, j)) {
                    cannot.push((i, j));
                    added = true;
                    break 'fp;
                }
            }
        }
        'fnv: for i in 0..truth.refs.len() {
            for j in (i + 1)..truth.refs.len() {
                let same_pred = clustering.labels[i] == clustering.labels[j];
                let same_true = truth.labels[i] == truth.labels[j];
                if !same_pred && same_true && !must.contains(&(i, j)) {
                    must.push((i, j));
                    added = true;
                    break 'fnv;
                }
            }
        }
        if !added {
            break;
        }
    }
    Ok(())
}

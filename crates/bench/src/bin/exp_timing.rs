//! Experiment S1 — the §5 runtime measurement: wall-clock of training-set
//! construction + SVM learning (the paper reports 62.1 s at DBLP scale for
//! 1000 + 1000 examples), measured here at several world scales to show
//! how the cost grows.
//!
//! Run: `cargo run --release -p distinct-bench --bin exp_timing`

use datagen::{to_catalog, World};
use distinct::{Distinct, DistinctConfig};
use distinct_bench::{standard_world_config, BenchError, StageContext};
use eval::{Align, Table};
use std::time::Instant;

fn main() -> Result<(), BenchError> {
    let mut table = Table::new(
        &[
            "authors",
            "papers",
            "references",
            "unique names",
            "build graph (s)",
            "train (s)",
            "resolve all names (s)",
        ],
        &[
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    )
    .with_title(
        "S1. Training pipeline runtime by scale (paper: 62.1 s at DBLP scale,\n\
         127K authors / 1.29M references, 2005-era hardware)",
    );

    for scale in [1usize, 2, 4, 8] {
        let mut config = standard_world_config(7);
        config.n_authors = 2000 * scale;
        config.n_venues = 80 * scale.min(4);
        config.n_communities = 32 * scale.min(4);
        // Name diversity grows with population (as in real bibliographies);
        // without this, no name stays rare and the §3 rare-name filter
        // would find nothing to train on.
        config.first_name_pool = 400 * scale;
        config.last_name_pool = 900 * scale;
        let world = World::generate(config);
        let dataset = to_catalog(&world).stage("exp_timing", "emit the world as a catalog")?;
        let papers = dataset
            .catalog
            .relation(
                dataset
                    .catalog
                    .relation_id("Publications")
                    .stage("exp_timing", "locate the Publications relation")?,
            )
            .len();
        let refs = dataset.catalog.relation(dataset.publish).len();

        let t0 = Instant::now();
        let mut engine = Distinct::prepare(
            &dataset.catalog,
            "Publish",
            "author",
            DistinctConfig::default(),
        )
        .stage("exp_timing", "prepare the engine")?;
        let prep = t0.elapsed();

        let t1 = Instant::now();
        let report = engine
            .train()
            .stage("exp_timing", "train the combined measure")?;
        let train = t1.elapsed();

        let t2 = Instant::now();
        for truth in &dataset.truths {
            let _ = engine.resolve(&distinct::ResolveRequest::new(&truth.refs));
        }
        let resolve = t2.elapsed();

        table.row(vec![
            (2000 * scale).to_string(),
            papers.to_string(),
            refs.to_string(),
            report.unique_names.to_string(),
            format!("{:.2}", prep.as_secs_f64()),
            format!("{:.2}", train.as_secs_f64()),
            format!("{:.2}", resolve.as_secs_f64()),
        ]);
        eprintln!("done: scale {scale}x");
    }
    println!("{}", table.render());
    Ok(())
}

//! Columnar kernel arena: interned, flattened weighted sets.
//!
//! [`SetArena::build`] takes the weighted sets of one similarity stage
//! (e.g. all forward and backward maps of one join path) and re-encodes
//! them for the pairwise kernels:
//!
//! * **row dedup** — content-identical sets share one *distinct row*
//!   ([`SetArena::row_of`] maps input index → row). Same-context
//!   references (e.g. same-year references on a deterministic
//!   single-fanout path) produce literally identical sets, so one kernel
//!   evaluation per distinct row pair serves every reference pair that
//!   realizes it;
//! * **id interning** — every [`NodeId`] appearing in any row is mapped
//!   to a dense `u32` by ascending node id. The mapping is
//!   order-preserving, so ascending interned order *is* ascending node
//!   order and merge-joins accumulate in exactly the order the
//!   [`WeightedSet`] kernels use — the bit-identity the determinism
//!   contract needs;
//! * **flat columns** — all rows live in two contiguous `ids`/`weights`
//!   columns sliced by offset, so a kernel streams two cache-resident
//!   runs instead of chasing per-pair map storage.
//!
//! [`SetArena::resemblance_rows`] and [`SetArena::dot_rows`] are
//! bit-identical to [`WeightedSet::resemblance`] and
//! [`crate::directed_walk`] respectively (property-tested below):
//! row totals are accumulated left-to-right like `WeightedSet::total`,
//! `x + 0.0 == x` for the non-negative partial sums makes the
//! intersection-only dot equal to the walk's zero-including sum, and
//! f64 multiplication is commutative bitwise.
//!
//! [`SetArena::intersections`] precomputes the exact support-overlap
//! matrix over distinct rows from per-id posting lists, giving the
//! pruned similarity engine its second (complete) zero certificate after
//! the sketch tier.

use crate::graph::NodeId;
use crate::sketch::{Sketch, SketchConfig};
use crate::WeightedSet;
use relstore::FxHashMap;

/// SplitMix64 step used to combine content hashes for row/posting dedup.
/// Purely an in-process bucketing aid; equality is always confirmed by an
/// exact comparison, so hash quality affects speed, never results.
fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A flat, deduplicated, interned arena of weighted sets (module docs).
#[derive(Debug, Clone)]
pub struct SetArena {
    /// Input set index → distinct row index.
    row_of: Vec<u32>,
    /// Distinct row → half-open range into `ids`/`weights` (`len + 1`).
    offsets: Vec<u32>,
    /// Interned member ids, ascending within each row.
    ids: Vec<u32>,
    /// Member weights, aligned with `ids`.
    weights: Vec<f64>,
    /// Per-row total mass, accumulated left-to-right (bit-identical to
    /// the source set's `total()`).
    totals: Vec<f64>,
    /// Number of distinct interned ids.
    universe: u32,
}

impl SetArena {
    /// An arena over zero sets, holding no heap capacity. The unit
    /// [`ArenaPool::take`] hands out when the pool is dry; feed it to
    /// [`SetArena::rebuild`] before use.
    pub fn empty() -> SetArena {
        SetArena {
            row_of: Vec::new(),
            offsets: Vec::new(),
            ids: Vec::new(),
            weights: Vec::new(),
            totals: Vec::new(),
            universe: 0,
        }
    }

    /// Build an arena over the given sets (in order; the index of each
    /// set in this iteration is its input index for [`SetArena::row_of`]).
    pub fn build<'a>(sets: impl IntoIterator<Item = &'a WeightedSet>) -> SetArena {
        let mut arena = Self::empty();
        arena.rebuild(sets);
        arena
    }

    /// Rebuild this arena in place over a new set sequence, reusing the
    /// column capacity left by the previous build. The result is
    /// field-for-field identical to `SetArena::build(sets)` — same
    /// algorithm, same first-appearance row numbering, same
    /// left-to-right total accumulation — capacity is the only thing
    /// that survives; no content does. This is the reuse seam the
    /// resolve spine's pooled arenas go through (lint D112).
    pub fn rebuild<'a>(&mut self, sets: impl IntoIterator<Item = &'a WeightedSet>) {
        self.row_of.clear();
        self.offsets.clear();
        self.ids.clear();
        self.weights.clear();
        self.totals.clear();
        let sets: Vec<&WeightedSet> = sets.into_iter().collect();
        // Row dedup: bucket by content hash, confirm by exact comparison.
        // Distinct rows are numbered in first-appearance order, so the
        // arena is a pure function of the input sequence.
        let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut distinct: Vec<&WeightedSet> = Vec::new();
        self.row_of.reserve(sets.len());
        for set in &sets {
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ set.len() as u64;
            for (NodeId(n), w) in set.iter() {
                h = mix(h ^ u64::from(n));
                h = mix(h ^ w.to_bits());
            }
            let bucket = buckets.entry(h).or_default();
            let row = bucket
                .iter()
                .copied()
                .find(|&r| {
                    let d = distinct[r as usize];
                    d.len() == set.len()
                        && d.iter()
                            .zip(set.iter())
                            .all(|((n1, w1), (n2, w2))| n1 == n2 && w1.to_bits() == w2.to_bits())
                })
                .unwrap_or_else(|| {
                    let r = distinct.len() as u32;
                    distinct.push(set);
                    bucket.push(r);
                    r
                });
            self.row_of.push(row);
        }
        // Intern: dense ids assigned by ascending NodeId, so ascending
        // interned order within a row is ascending node order.
        let mut universe: Vec<u32> = distinct
            .iter()
            .flat_map(|s| s.iter().map(|(NodeId(n), _)| n))
            .collect();
        universe.sort_unstable();
        universe.dedup();
        self.offsets.reserve(distinct.len() + 1);
        self.totals.reserve(distinct.len());
        self.offsets.push(0u32);
        for set in &distinct {
            // `-0.0` is std's `Sum<f64>` identity, so starting there makes
            // the accumulated total bit-identical to `WeightedSet::total()`
            // even for empty rows (where the sum *is* `-0.0`).
            let mut total = -0.0f64;
            for (NodeId(n), w) in set.iter() {
                let dense = universe
                    .binary_search(&n)
                    // distinct-lint: allow(D002, D101, reason="universe is the sorted dedup of exactly the ids iterated here (collected one loop above from the same sets), so the search always succeeds")
                    .expect("every row id was collected into the universe");
                self.ids.push(dense as u32);
                self.weights.push(w);
                total += w;
            }
            self.offsets.push(self.ids.len() as u32);
            self.totals.push(total);
        }
        self.universe = universe.len() as u32;
    }

    /// Distinct row holding input set `i`.
    pub fn row_of(&self, i: usize) -> u32 {
        self.row_of[i]
    }

    /// Number of distinct rows.
    pub fn rows(&self) -> usize {
        self.totals.len()
    }

    /// Number of input sets the arena was built over.
    pub fn inputs(&self) -> usize {
        self.row_of.len()
    }

    /// Number of distinct interned member ids.
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// The `(interned id, weight)` column slice of one distinct row.
    fn row(&self, r: u32) -> (&[u32], &[f64]) {
        let lo = self.offsets[r as usize] as usize;
        let hi = self.offsets[r as usize + 1] as usize;
        (&self.ids[lo..hi], &self.weights[lo..hi])
    }

    /// Total mass of a distinct row (bit-identical to the source set's
    /// [`WeightedSet::total`]).
    pub fn total(&self, r: u32) -> f64 {
        self.totals[r as usize]
    }

    /// Weighted Jaccard resemblance of two distinct rows, bit-identical
    /// to [`WeightedSet::resemblance`] on the source sets.
    pub fn resemblance_rows(&self, a: u32, b: u32) -> f64 {
        let (ia, wa) = self.row(a);
        let (ib, wb) = self.row(b);
        if ia.is_empty() || ib.is_empty() {
            return 0.0;
        }
        // Same merge-join, same ascending order (interning preserves node
        // order), same `Σ min` accumulation as the WeightedSet kernel.
        let mut num = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < ia.len() && j < ib.len() {
            match ia[i].cmp(&ib[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    num += wa[i].min(wb[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
        let den = self.totals[a as usize] + self.totals[b as usize] - num;
        if den <= 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Intersection dot product `Σ_t w_a(t) · w_b(t)` of two distinct
    /// rows — bit-identical to [`crate::directed_walk`] when `a` encodes
    /// the forward map and `b` the backward map (or vice versa: the dot
    /// is symmetric, and f64 multiplication commutes bitwise).
    ///
    /// The walk sums over the smaller support *including* zero-product
    /// terms for unmatched nodes; adding `+0.0` to the non-negative
    /// partial sums is the identity, so the intersection-only merge-join
    /// reproduces every bit. Zero signs match too: the walk's `Sum` folds
    /// from `-0.0`, which survives only when the iterated support is
    /// empty — so an empty row yields `-0.0` here, and a non-empty
    /// disjoint pair yields `+0.0` (the first `w · 0.0` term flips it).
    pub fn dot_rows(&self, a: u32, b: u32) -> f64 {
        let (ia, wa) = self.row(a);
        let (ib, wb) = self.row(b);
        if ia.is_empty() || ib.is_empty() {
            return -0.0;
        }
        let mut sum = 0.0;
        let (mut i, mut j) = (0, 0);
        while i < ia.len() && j < ib.len() {
            match ia[i].cmp(&ib[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += wa[i] * wb[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// Sketch every distinct row under `config` (interned ids as keys).
    pub fn sketches(&self, config: &SketchConfig) -> Vec<Sketch> {
        (0..self.rows() as u32)
            .map(|r| {
                let (ids, weights) = self.row(r);
                Sketch::build(
                    ids.iter().zip(weights).map(|(&n, &w)| (u64::from(n), w)),
                    config,
                )
            })
            .collect()
    }

    /// Exact support-overlap matrix over distinct rows, from per-id
    /// posting lists. Posting lists are deduplicated by content first:
    /// ids sharing the same set of rows (common when rows share long
    /// runs) are marked once instead of once per id.
    pub fn intersections(&self) -> IntersectionMatrix {
        let d = self.rows();
        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); self.universe as usize];
        for r in 0..d as u32 {
            let (ids, _) = self.row(r);
            for &n in ids {
                // Rows are visited in ascending order, so postings come
                // out sorted — content hashes below are canonical.
                postings[n as usize].push(r);
            }
        }
        let mut bits = vec![0u64; (d * d).div_ceil(64)];
        let set = |bits: &mut Vec<u64>, a: usize, b: usize| {
            let k = a * d + b;
            bits[k / 64] |= 1u64 << (k % 64);
        };
        let mut seen: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
        let mut uniques: Vec<usize> = Vec::new(); // posting indices marked so far
        for (p, rows) in postings.iter().enumerate() {
            if rows.len() < 2 {
                continue;
            }
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ rows.len() as u64;
            for &r in rows {
                h = mix(h ^ u64::from(r));
            }
            let bucket = seen.entry(h).or_default();
            if bucket.iter().any(|&q| postings[q] == *rows) {
                continue; // identical posting already marked
            }
            bucket.push(p);
            uniques.push(p);
            for (x, &a) in rows.iter().enumerate() {
                for &b in &rows[x + 1..] {
                    set(&mut bits, a as usize, b as usize);
                    set(&mut bits, b as usize, a as usize);
                }
            }
        }
        let nonempty = (0..d as u32).map(|r| !self.row(r).0.is_empty()).collect();
        IntersectionMatrix { bits, d, nonempty }
    }
}

/// A free-list of [`SetArena`]s reused across similarity stages.
///
/// One similarity stage builds one arena per join path; with per-call
/// construction every resolve re-grows the same five columns from zero.
/// An engine-owned pool instead recycles the columns: [`ArenaPool::take`]
/// pops a previously built arena (or mints an empty one), the stage
/// [`SetArena::rebuild`]s it in place — bit-identical to a fresh build,
/// only capacity survives — and [`ArenaPool::put`] returns it when the
/// stage ends. Behind a `Mutex` because resolves run under `&self`; the
/// lock is touched twice per stage, never inside a kernel loop.
#[derive(Debug, Default)]
pub struct ArenaPool {
    // distinct-lint: shared(free-list handoff: take pops and put pushes under a lock held for that single Vec op; a taken arena is exclusively owned until put back, so no two stages ever alias one)
    free: std::sync::Mutex<Vec<SetArena>>,
}

impl ArenaPool {
    /// An empty pool: the first takes mint empty arenas.
    pub fn new() -> ArenaPool {
        ArenaPool {
            free: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Pop a recycled arena, or mint an empty one when the pool is dry.
    /// Callers must [`SetArena::rebuild`] it before use and should
    /// [`ArenaPool::put`] it back when the stage is done.
    pub fn take(&self) -> SetArena {
        // distinct-lint: allow(D002, D101, reason="a poisoned pool mutex means a kernel stage panicked mid-build; resolve is already unwinding and recycled capacity is unrecoverable")
        if let Some(arena) = self.free.lock().unwrap().pop() {
            return arena;
        }
        // distinct-lint: scratch(pooled per engine: taken at the start of a similarity stage, rebuilt in place over that stage's weighted sets, returned to the free list when the stage ends)
        SetArena::empty()
    }

    /// Return an arena to the free list for the next stage to reuse.
    pub fn put(&self, arena: SetArena) {
        // distinct-lint: allow(D002, D101, reason="a poisoned pool mutex means a kernel stage panicked mid-build; resolve is already unwinding, so losing the returned capacity is the correct degraded behavior")
        self.free.lock().unwrap().push(arena);
    }

    /// Number of arenas currently parked in the free list (diagnostics
    /// and tests; the pool never caps it — it is bounded by the number
    /// of concurrently live stages, i.e. the resolver thread count).
    pub fn parked(&self) -> usize {
        // A poisoned pool reads as empty rather than panicking: this is
        // a diagnostic, not a correctness surface.
        self.free.lock().map(|f| f.len()).unwrap_or(0)
    }
}

/// Symmetric boolean matrix: do two distinct rows share a member?
#[derive(Debug, Clone)]
pub struct IntersectionMatrix {
    bits: Vec<u64>,
    d: usize,
    nonempty: Vec<bool>,
}

impl IntersectionMatrix {
    /// True when rows `a` and `b` share at least one member. For `a == b`
    /// that means the row itself is non-empty.
    pub fn intersects(&self, a: u32, b: u32) -> bool {
        if a == b {
            return self.nonempty[a as usize];
        }
        let k = a as usize * self.d + b as usize;
        self.bits[k / 64] & (1u64 << (k % 64)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directed_walk;
    use crate::propagate::Propagation;
    use proptest::prelude::*;

    fn set(pairs: &[(u32, f64)]) -> WeightedSet {
        pairs.iter().map(|&(n, w)| (NodeId(n), w)).collect()
    }

    /// A propagation whose forward map is `fwd` and backward map is `bwd`
    /// (only the fields `directed_walk` reads).
    fn prop(fwd: &WeightedSet, bwd: &WeightedSet) -> Propagation {
        Propagation {
            forward: fwd.iter().collect(),
            backward: bwd.iter().collect(),
        }
    }

    #[test]
    fn dedup_shares_rows_and_row_of_is_stable() {
        let a = set(&[(1, 0.5), (3, 0.5)]);
        let b = set(&[(2, 1.0)]);
        let a2 = set(&[(1, 0.5), (3, 0.5)]);
        let arena = SetArena::build([&a, &b, &a2]);
        assert_eq!(arena.inputs(), 3);
        assert_eq!(arena.rows(), 2);
        assert_eq!(arena.row_of(0), arena.row_of(2));
        assert_ne!(arena.row_of(0), arena.row_of(1));
        assert_eq!(arena.universe(), 3); // nodes 1, 2, 3
    }

    #[test]
    fn near_identical_weights_do_not_dedup() {
        let a = set(&[(1, 0.5)]);
        let b = set(&[(1, 0.5 + f64::EPSILON)]);
        let arena = SetArena::build([&a, &b]);
        assert_eq!(arena.rows(), 2);
    }

    #[test]
    fn totals_match_sets_bitwise() {
        let sets = [
            set(&[(1, 0.1), (2, 0.2), (7, 0.7)]),
            set(&[]),
            set(&[(4, 1e-9), (5, 1e9)]),
        ];
        let arena = SetArena::build(sets.iter());
        for (i, s) in sets.iter().enumerate() {
            let t = arena.total(arena.row_of(i));
            assert_eq!(t.to_bits(), s.total().to_bits());
        }
    }

    #[test]
    fn empty_rows_kernel_to_zero_and_do_not_intersect() {
        let e = set(&[]);
        let s = set(&[(1, 1.0)]);
        let arena = SetArena::build([&e, &s]);
        let (re, rs) = (arena.row_of(0), arena.row_of(1));
        assert_eq!(arena.resemblance_rows(re, rs), 0.0);
        assert_eq!(arena.resemblance_rows(re, re), 0.0);
        assert_eq!(arena.dot_rows(re, rs), 0.0);
        let m = arena.intersections();
        assert!(!m.intersects(re, rs));
        assert!(!m.intersects(re, re)); // empty row: even self is empty
        assert!(m.intersects(rs, rs));
    }

    #[test]
    fn self_resemblance_is_exactly_one() {
        let s = set(&[(1, 0.3), (5, 0.2), (9, 0.5)]);
        let arena = SetArena::build([&s]);
        let r = arena.row_of(0);
        // num accumulates the same bits as the total, and t + t − t == t
        // exactly, so the division is t / t == 1.0 with no rounding.
        assert_eq!(arena.resemblance_rows(r, r), 1.0);
    }

    #[test]
    fn intersections_match_brute_force() {
        let sets = [
            set(&[(1, 0.5), (2, 0.5)]),
            set(&[(2, 0.25), (3, 0.75)]),
            set(&[(4, 1.0)]),
            set(&[(1, 0.1), (4, 0.9)]),
            set(&[]),
        ];
        let arena = SetArena::build(sets.iter());
        let m = arena.intersections();
        for i in 0..sets.len() {
            for j in 0..sets.len() {
                let expect =
                    sets[i].jaccard_unweighted(&sets[j]) > 0.0 || (i == j && !sets[i].is_empty());
                let (ri, rj) = (arena.row_of(i), arena.row_of(j));
                assert_eq!(m.intersects(ri, rj), expect, "({i}, {j})");
            }
        }
    }

    /// Field-for-field bitwise equality of two arenas.
    fn identical(a: &SetArena, b: &SetArena) -> bool {
        a.row_of == b.row_of
            && a.offsets == b.offsets
            && a.ids == b.ids
            && a.weights.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
                == b.weights.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
            && a.totals.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
                == b.totals.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
            && a.universe == b.universe
    }

    #[test]
    fn rebuild_over_dirty_arena_matches_fresh_build() {
        let first = [
            set(&[(9, 0.25), (11, 0.75)]),
            set(&[(2, 1.0), (3, 0.5), (7, 0.125)]),
            set(&[(9, 0.25), (11, 0.75)]),
        ];
        let second = [set(&[(1, 0.5)]), set(&[])];
        let mut reused = SetArena::build(first.iter());
        reused.rebuild(second.iter());
        assert!(identical(&reused, &SetArena::build(second.iter())));
        // And back again: stale capacity from `second` must not leak.
        reused.rebuild(first.iter());
        assert!(identical(&reused, &SetArena::build(first.iter())));
    }

    #[test]
    fn empty_arena_has_no_rows_or_capacity() {
        let e = SetArena::empty();
        assert_eq!(e.rows(), 0);
        assert_eq!(e.inputs(), 0);
        assert_eq!(e.universe(), 0);
        // `empty()` is the pre-rebuild unit (no heap capacity at all, not
        // even the offsets sentinel); only after a rebuild over zero sets
        // is it field-for-field the same as a fresh `build([])`.
        let mut rebuilt = SetArena::empty();
        rebuilt.rebuild([]);
        assert!(identical(&rebuilt, &SetArena::build([])));
    }

    #[test]
    fn pool_recycles_capacity_and_is_bit_transparent() {
        let pool = ArenaPool::new();
        assert_eq!(pool.parked(), 0);
        let sets = [set(&[(1, 0.5), (2, 0.5)]), set(&[(3, 1.0)])];
        let mut a = pool.take(); // dry pool mints an empty arena
        a.rebuild(sets.iter());
        let ids_cap = a.ids.capacity();
        pool.put(a);
        assert_eq!(pool.parked(), 1);
        let mut b = pool.take(); // recycled: same allocation comes back
        assert_eq!(pool.parked(), 0);
        assert!(b.ids.capacity() >= ids_cap);
        b.rebuild(sets.iter());
        assert!(identical(&b, &SetArena::build(sets.iter())));
        pool.put(b);
    }

    proptest! {
        // The load-bearing property: the columnar kernel reproduces the
        // nested-representation kernel bit for bit.
        #[test]
        fn resemblance_rows_bit_identical(
            xs in proptest::collection::vec((0u32..32, 1e-6f64..1.0), 0..25),
            ys in proptest::collection::vec((0u32..32, 1e-6f64..1.0), 0..25),
        ) {
            let (a, b) = (set(&xs), set(&ys));
            let arena = SetArena::build([&a, &b]);
            let got = arena.resemblance_rows(arena.row_of(0), arena.row_of(1));
            prop_assert_eq!(got.to_bits(), a.resemblance(&b).to_bits());
        }

        // Same for the walk kernel: `dot_rows` vs `directed_walk` on
        // propagations carrying the identical maps, both argument orders
        // (the walk internally iterates whichever support is smaller).
        #[test]
        fn dot_rows_bit_identical_to_directed_walk(
            xs in proptest::collection::vec((0u32..32, 1e-6f64..1.0), 0..25),
            ys in proptest::collection::vec((0u32..32, 1e-6f64..1.0), 0..25),
        ) {
            let (fwd, bwd) = (set(&xs), set(&ys));
            let arena = SetArena::build([&fwd, &bwd]);
            let got = arena.dot_rows(arena.row_of(0), arena.row_of(1));
            let pa = prop(&fwd, &set(&[]));
            let pb = prop(&set(&[]), &bwd);
            prop_assert_eq!(got.to_bits(), directed_walk(&pa, &pb).to_bits());
            // Symmetric in the rows (f64 multiply commutes bitwise).
            let rev = arena.dot_rows(arena.row_of(1), arena.row_of(0));
            prop_assert_eq!(got.to_bits(), rev.to_bits());
        }

        // Interning and flattening round-trip: weights and order survive.
        #[test]
        fn totals_and_dedup_agree_with_sources(
            sets in proptest::collection::vec(
                proptest::collection::vec((0u32..16, 1e-3f64..1.0), 0..10),
                1..8,
            ),
        ) {
            let sets: Vec<WeightedSet> = sets.iter().map(|s| set(s)).collect();
            let arena = SetArena::build(sets.iter());
            prop_assert_eq!(arena.inputs(), sets.len());
            for (i, s) in sets.iter().enumerate() {
                prop_assert_eq!(
                    arena.total(arena.row_of(i)).to_bits(),
                    s.total().to_bits()
                );
                // Dedup is exact: equal rows ⟺ equal content.
                for (j, t) in sets.iter().enumerate() {
                    let same_row = arena.row_of(i) == arena.row_of(j);
                    let same_content = s.len() == t.len()
                        && s.iter().zip(t.iter()).all(|((n1, w1), (n2, w2))| {
                            n1 == n2 && w1.to_bits() == w2.to_bits()
                        });
                    prop_assert_eq!(same_row, same_content, "{} vs {}", i, j);
                }
            }
        }

        // Pool-reuse soundness on arbitrary inputs: a rebuild over a
        // dirty arena is indistinguishable from a fresh build.
        #[test]
        fn dirty_rebuild_bit_identical_to_fresh(
            first in proptest::collection::vec(
                proptest::collection::vec((0u32..16, 1e-3f64..1.0), 0..10),
                1..6,
            ),
            second in proptest::collection::vec(
                proptest::collection::vec((0u32..16, 1e-3f64..1.0), 0..10),
                1..6,
            ),
        ) {
            let first: Vec<WeightedSet> = first.iter().map(|s| set(s)).collect();
            let second: Vec<WeightedSet> = second.iter().map(|s| set(s)).collect();
            let mut reused = SetArena::build(first.iter());
            reused.rebuild(second.iter());
            prop_assert!(identical(&reused, &SetArena::build(second.iter())));
        }

        // Exactness of the intersection matrix on arbitrary inputs.
        #[test]
        fn intersections_exact(
            sets in proptest::collection::vec(
                proptest::collection::vec((0u32..12, 1e-3f64..1.0), 0..8),
                1..8,
            ),
        ) {
            let sets: Vec<WeightedSet> = sets.iter().map(|s| set(s)).collect();
            let arena = SetArena::build(sets.iter());
            let m = arena.intersections();
            for i in 0..sets.len() {
                for j in 0..sets.len() {
                    let expect = if arena.row_of(i) == arena.row_of(j) {
                        !sets[i].is_empty()
                    } else {
                        sets[i].jaccard_unweighted(&sets[j]) > 0.0
                    };
                    prop_assert_eq!(
                        m.intersects(arena.row_of(i), arena.row_of(j)),
                        expect
                    );
                }
            }
        }
    }
}

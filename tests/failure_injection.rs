//! Failure injection: corrupt inputs, injected I/O faults, execution
//! limits, degenerate databases, and hostile edge cases must produce
//! typed errors or degraded-but-valid results — never panics, never
//! silently corrupted data.
//!
//! Runs clean in parallel: every test owns a unique temp directory whose
//! guard removes it on drop, including during the unwind of a failed
//! assertion. CI additionally exercises this suite with
//! `--test-threads=1` to keep fault timelines deterministic.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use datagen::{to_catalog, AmbiguousSpec, DblpDataset, World, WorldConfig};
use distinct::{
    Distinct, DistinctConfig, DistinctError, InterruptKind, ResolveRequest, RunControl,
    TrainRequest, TrainingConfig,
};
use proptest::prelude::*;
use relstore::{
    persist, AttrType, Catalog, FaultKind, FaultPlan, FaultyVfs, Predicate, Query, SchemaBuilder,
    StoreError, Tuple, Value,
};

// ---------------------------------------------------------------------------
// Per-test unique temp directories with guarded cleanup
// ---------------------------------------------------------------------------

/// A uniquely named temp directory removed when the guard drops — also on
/// test panic, so failed runs don't leak state into later ones.
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "distinct_fi_{tag}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    fn path(&self) -> &Path {
        &self.path
    }

    fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn training() -> TrainingConfig {
    TrainingConfig {
        positives: 20,
        negatives: 20,
        ..Default::default()
    }
}

fn tiny_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_relation(
        SchemaBuilder::new("A")
            .key("a", AttrType::Int)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.insert("A", [Value::Int(1)].into()).unwrap();
    c.finalize(true).unwrap();
    c
}

fn wei_wang_dataset() -> DblpDataset {
    let mut config = WorldConfig::tiny(3);
    config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![4, 3])];
    to_catalog(&World::generate(config)).unwrap()
}

// ---------------------------------------------------------------------------
// Store corruption at rest
// ---------------------------------------------------------------------------

#[test]
fn persist_load_with_missing_relation_file_errors() {
    let dir = TempDir::new("missing_rel");
    let c = tiny_catalog();
    persist::save_catalog(&c, dir.path()).unwrap();
    std::fs::remove_file(dir.join("A.csv")).unwrap();
    assert!(matches!(
        persist::load_catalog(dir.path()),
        Err(StoreError::Io { .. })
    ));
}

#[test]
fn persist_load_with_corrupt_relation_body_errors() {
    let dir = TempDir::new("corrupt_rel");
    let c = tiny_catalog();
    persist::save_catalog(&c, dir.path()).unwrap();
    // The replacement is syntactically valid CSV: only the manifest
    // checksum can tell it apart from the real body.
    std::fs::write(dir.join("A.csv"), "a\nnot_an_int\n").unwrap();
    assert!(matches!(
        persist::load_catalog(dir.path()),
        Err(StoreError::Corrupt { .. })
    ));
}

#[test]
fn persist_load_without_manifest_errors() {
    let dir = TempDir::new("no_manifest");
    let c = tiny_catalog();
    persist::save_catalog(&c, dir.path()).unwrap();
    std::fs::remove_file(dir.join("manifest.json")).unwrap();
    assert!(matches!(
        persist::load_catalog(dir.path()),
        Err(StoreError::MissingManifest { .. })
    ));
}

// ---------------------------------------------------------------------------
// Injected I/O faults during save
// ---------------------------------------------------------------------------

/// Count how many writes a full save of `c` issues.
fn writes_per_save(c: &Catalog, dir: &Path) -> u64 {
    let mut counting = FaultyVfs::new(FaultPlan::new(0));
    persist::save_catalog_with(c, dir, &mut counting).unwrap();
    counting.writes_attempted()
}

#[test]
fn every_failed_write_during_save_yields_error_and_no_torn_load() {
    let d = wei_wang_dataset();
    let probe = TempDir::new("probe");
    let total = writes_per_save(&d.catalog, probe.path());
    assert!(total >= 5, "expected several files, saw {total} writes");

    for kind in [FaultKind::Fail, FaultKind::Torn] {
        for nth in 1..=total {
            let dir = TempDir::new("killsweep");
            let mut vfs =
                FaultyVfs::over(relstore::StdVfs, FaultPlan::new(7).with_fault(nth, kind));
            let err = persist::save_catalog_with(&d.catalog, dir.path(), &mut vfs)
                .expect_err("interrupted save must error");
            assert!(
                matches!(err, StoreError::Io { .. }),
                "{kind:?} #{nth}: {err}"
            );
            // A fresh directory holds no committed manifest: the loader
            // must refuse rather than assemble the partial files.
            assert!(
                persist::load_catalog(dir.path()).is_err(),
                "{kind:?} #{nth}: loaded a torn save"
            );
        }
    }
}

#[test]
fn every_bit_flipped_write_during_save_is_caught_at_load() {
    let d = wei_wang_dataset();
    let probe = TempDir::new("probe_flip");
    let total = writes_per_save(&d.catalog, probe.path());

    for nth in 1..=total {
        let dir = TempDir::new("flipsweep");
        let mut vfs = FaultyVfs::new(FaultPlan::bit_flip_nth_write(nth, 0xBEEF + nth));
        // Bit flips are silent at write time.
        persist::save_catalog_with(&d.catalog, dir.path(), &mut vfs).unwrap();
        match persist::load_catalog(dir.path()) {
            Err(StoreError::Corrupt { .. }) => {}
            // A flip inside the manifest itself may make it unparseable
            // (Corrupt) — but never loadable-with-wrong-data, which would
            // show up as Ok with a checksum that cannot match.
            Err(other) => panic!("write #{nth}: unexpected error kind {other:?}"),
            Ok(_) => panic!("write #{nth}: bit flip loaded silently"),
        }
    }
}

#[test]
fn interrupted_overwrite_preserves_the_previous_committed_catalog() {
    let d = wei_wang_dataset();
    let before = tiny_catalog();
    let dir = TempDir::new("overwrite");
    persist::save_catalog(&before, dir.path()).unwrap();

    // Kill the very first write of the overwriting save: the committed
    // store must still load, unchanged.
    let mut vfs = FaultyVfs::new(FaultPlan::fail_nth_write(1));
    assert!(persist::save_catalog_with(&d.catalog, dir.path(), &mut vfs).is_err());
    let loaded = persist::load_catalog(dir.path()).unwrap();
    assert_eq!(loaded.tuple_count(), before.tuple_count());
    assert_eq!(loaded.relation_count(), before.relation_count());
}

// ---------------------------------------------------------------------------
// Checkpoint faults
// ---------------------------------------------------------------------------

fn prepared_engine(d: &DblpDataset) -> Distinct {
    Distinct::prepare(
        &d.catalog,
        "Publish",
        "author",
        DistinctConfig {
            training: training(),
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn checkpoint_kill_mid_write_restores_pre_save_state_or_reports_corruption() {
    let d = wei_wang_dataset();
    let engine = prepared_engine(&d);
    let refs = engine.references_of("Wei Wang");
    let _ = engine.resolve(&ResolveRequest::new(&refs)); // warm the profile cache
    let dir = TempDir::new("ckpt");
    let path = dir.join("engine.ckpt");
    engine.save_checkpoint(&path).unwrap();
    let committed = std::fs::read(&path).unwrap();

    for plan in [
        FaultPlan::fail_nth_write(1),
        FaultPlan::torn_nth_write(1, 3),
        FaultPlan::torn_nth_write(1, 11),
    ] {
        let mut vfs = FaultyVfs::new(plan);
        assert!(engine.save_checkpoint_with(&path, &mut vfs).is_err());
        assert_eq!(
            std::fs::read(&path).unwrap(),
            committed,
            "interrupted save touched the committed checkpoint"
        );
        let mut fresh = prepared_engine(&d);
        fresh.load_checkpoint(&path).unwrap();
        assert_eq!(fresh.cached_profiles(), engine.cached_profiles());
    }

    // Silent bit flip: save succeeds, load must refuse.
    let mut vfs = FaultyVfs::new(FaultPlan::bit_flip_nth_write(1, 42));
    engine.save_checkpoint_with(&path, &mut vfs).unwrap();
    let mut fresh = prepared_engine(&d);
    match fresh.load_checkpoint(&path) {
        Err(DistinctError::CorruptCheckpoint { .. }) => {}
        other => panic!("expected CorruptCheckpoint, got {other:?}"),
    }
    // Nothing partial was installed.
    assert_eq!(fresh.cached_profiles(), 0);
    assert!(fresh.learned().is_none());
}

// ---------------------------------------------------------------------------
// Execution limits degrade, never panic
// ---------------------------------------------------------------------------

#[test]
fn tight_budget_resolution_returns_degraded_partial_clustering() {
    let d = wei_wang_dataset();
    let engine = prepared_engine(&d);
    let refs = engine.references_of("Wei Wang");
    assert!(!refs.is_empty());
    let ctl = RunControl::new().with_budget(5);
    let outcome = engine.resolve(&ResolveRequest::new(&refs).control(&ctl));
    assert_eq!(outcome.clustering.labels.len(), refs.len());
    let degraded = outcome.degraded.expect("a 5-unit budget must degrade");
    assert_eq!(degraded.kind, InterruptKind::BudgetExhausted);
    assert!(degraded.profiles_computed < refs.len());
}

#[test]
fn zero_deadline_resolution_degrades_and_training_errors() {
    let d = wei_wang_dataset();
    let mut engine = prepared_engine(&d);
    let refs = engine.references_of("Wei Wang");

    let ctl = RunControl::new().with_deadline(std::time::Duration::ZERO);
    std::thread::sleep(std::time::Duration::from_millis(1));
    let outcome = engine.resolve(&ResolveRequest::new(&refs).control(&ctl));
    assert_eq!(outcome.clustering.labels.len(), refs.len());
    assert_eq!(
        outcome
            .degraded
            .expect("expired deadline must degrade")
            .kind,
        InterruptKind::DeadlineExceeded
    );

    let ctl = RunControl::new().with_deadline(std::time::Duration::ZERO);
    std::thread::sleep(std::time::Duration::from_millis(1));
    assert!(matches!(
        engine.train_with(&TrainRequest::new().control(&ctl)),
        Err(DistinctError::Interrupted { .. })
    ));
}

#[test]
fn cancellation_mid_run_is_typed_not_a_panic() {
    let d = wei_wang_dataset();
    let mut engine = prepared_engine(&d);
    let ctl = RunControl::new();
    ctl.token().cancel();
    match engine.train_with(&TrainRequest::new().control(&ctl)) {
        Err(DistinctError::Interrupted { kind, .. }) => {
            assert_eq!(kind, InterruptKind::Cancelled)
        }
        other => panic!("expected Interrupted, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Property: any single byte flip in any persisted file is detected
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_single_byte_corruption_is_detected(file_pick in any::<u64>(), pos_pick in any::<u64>(), flip in 1u8..=255) {
        let dir = TempDir::new("prop_flip");
        let d = wei_wang_dataset();
        persist::save_catalog(&d.catalog, dir.path()).unwrap();
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        let target = &files[(file_pick % files.len() as u64) as usize];
        let mut bytes = std::fs::read(target).unwrap();
        prop_assume!(!bytes.is_empty());
        let pos = (pos_pick % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        std::fs::write(target, &bytes).unwrap();
        let result = persist::load_catalog(dir.path());
        prop_assert!(
            matches!(
                result,
                Err(StoreError::Corrupt { .. } | StoreError::MissingManifest { .. })
            ),
            "flipping byte {pos} of {} by {flip:#04x} was not detected: {result:?}",
            target.display()
        );
    }
}

// ---------------------------------------------------------------------------
// Degenerate databases and hostile configuration (pre-existing coverage)
// ---------------------------------------------------------------------------

#[test]
fn pipeline_on_database_with_no_informative_structure() {
    // A database where every reference links to one single shared paper:
    // all neighborhoods identical, no training signal. The pipeline must
    // fail gracefully at training (no unique names / degenerate features),
    // and unsupervised resolution must still return a clustering.
    let mut c = Catalog::new();
    c.add_relation(
        SchemaBuilder::new("Authors")
            .key("author", AttrType::Str)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.add_relation(
        SchemaBuilder::new("Papers")
            .key("paper", AttrType::Int)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.add_relation(
        SchemaBuilder::new("Publish")
            .fk("author", AttrType::Str, "Authors")
            .fk("paper", AttrType::Int, "Papers")
            .build()
            .unwrap(),
    )
    .unwrap();
    c.insert("Papers", [Value::Int(1)].into()).unwrap();
    for a in ["Shared Name", "Other Name"] {
        c.insert("Authors", [Value::str(a)].into()).unwrap();
    }
    for _ in 0..3 {
        c.insert("Publish", [Value::str("Shared Name"), Value::Int(1)].into())
            .unwrap();
    }
    c.insert("Publish", [Value::str("Other Name"), Value::Int(1)].into())
        .unwrap();

    let config = DistinctConfig {
        training: training(),
        ..Default::default()
    };
    let mut engine = Distinct::prepare(&c, "Publish", "author", config).unwrap();
    // Training has nothing to learn from (too few unique names).
    assert!(engine.train().is_err());
    // Resolution still works with uniform weights.
    let refs = engine.references_of("Shared Name");
    let clustering = engine.resolve(&ResolveRequest::new(&refs)).clustering;
    assert_eq!(refs.len(), 3);
    assert_eq!(clustering.labels.len(), 3);
}

#[test]
fn resolving_a_nonexistent_name_is_a_no_op() {
    let d = wei_wang_dataset();
    let engine = prepared_engine(&d);
    let refs = engine.references_of("Nobody At All");
    let clustering = engine.resolve(&ResolveRequest::new(&refs)).clustering;
    assert!(refs.is_empty());
    assert!(clustering.labels.is_empty());
    assert_eq!(clustering.cluster_count(), 0);
}

#[test]
fn query_layer_rejects_type_confusion_gracefully() {
    let mut c = Catalog::new();
    c.add_relation(
        SchemaBuilder::new("A")
            .key("a", AttrType::Int)
            .data("s", AttrType::Str)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.insert("A", [Value::Int(1), Value::str("x")].into())
        .unwrap();
    c.finalize(true).unwrap();
    // Comparing an int column against a string value simply matches
    // nothing (cross-type order is total but never equal).
    let rows = Query::new(&c, "A")
        .unwrap()
        .filter("a", Predicate::Eq(Value::str("1")))
        .run()
        .unwrap();
    assert!(rows.is_empty());
}

#[test]
fn catalog_rejects_inserting_wrong_arity_after_finalize() {
    let mut c = Catalog::new();
    c.add_relation(
        SchemaBuilder::new("A")
            .key("a", AttrType::Int)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.finalize(true).unwrap();
    assert!(c
        .insert("A", Tuple::new(vec![Value::Int(1), Value::Int(2)]))
        .is_err());
    // The failed insert still invalidated finalization (mutable access).
    assert!(!c.is_finalized());
    c.finalize(true).unwrap();
}

#[test]
fn training_with_absurd_thresholds_errors_not_panics() {
    let d = wei_wang_dataset();
    // Zero rare-name thresholds: nothing qualifies as unique.
    let cfg = DistinctConfig {
        training: TrainingConfig {
            max_first_name_freq: 0,
            max_last_name_freq: 0,
            ..training()
        },
        ..Default::default()
    };
    let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", cfg).unwrap();
    assert!(engine.train().is_err());
}

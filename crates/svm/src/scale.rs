//! Feature standardization.
//!
//! Per-join-path similarities live on very different scales (a resemblance
//! in [0, 1] vs a walk probability that may be 1e-4), and both SMO and
//! Pegasos converge far better on standardized features. The scaler is fit
//! on training data and applied to anything scored later; it serializes
//! alongside the model.

use crate::data::{Dataset, Result, SvmError};
use serde::{Deserialize, Serialize};

/// Per-feature standardization to zero mean and unit variance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    /// Per-feature means.
    pub mean: Vec<f64>,
    /// Per-feature standard deviations (constant features get 1.0 so they
    /// map to exactly zero rather than NaN).
    pub std: Vec<f64>,
}

impl StandardScaler {
    /// Fit on a dataset.
    pub fn fit(data: &Dataset) -> Result<Self> {
        if data.is_empty() {
            return Err(SvmError::Degenerate(
                "cannot fit a scaler on no samples".into(),
            ));
        }
        let n = data.len() as f64;
        let dim = data.dim();
        let mut mean = vec![0.0; dim];
        for (x, _) in data.iter() {
            for (m, &v) in mean.iter_mut().zip(x) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for (x, _) in data.iter() {
            for ((s, &v), m) in var.iter_mut().zip(x).zip(&mean) {
                let d = v - m;
                *s += d * d;
            }
        }
        let std = var
            .into_iter()
            .map(|s| {
                let sd = (s / n).sqrt();
                if sd > 1e-12 {
                    sd
                } else {
                    1.0
                }
            })
            .collect();
        Ok(StandardScaler { mean, std })
    }

    /// Transform one feature vector in place.
    pub fn transform_in_place(&self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.mean.len());
        for ((v, m), s) in x.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = (*v - m) / s;
        }
    }

    /// Transform one feature vector, returning a new vector.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        let mut out = x.to_vec();
        self.transform_in_place(&mut out);
        out
    }

    /// Transform a whole dataset, preserving labels.
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        let mut out = Dataset::new();
        for (x, y) in data.iter() {
            out.push(self.transform(x), y)
                .expect("labels already validated"); // distinct-lint: allow(D002, reason="transform preserves arity and the (x, y) pairs come from an already-validated Dataset")
        }
        out
    }

    /// Undo the transform on a weight vector learned in scaled space, so
    /// weights can be interpreted against the original features:
    /// `w_orig[j] = w_scaled[j] / std[j]` (plus a bias correction).
    pub fn unscale_weights(&self, weights: &[f64], bias: f64) -> (Vec<f64>, f64) {
        let w: Vec<f64> = weights
            .iter()
            .zip(&self.std)
            .map(|(&w, &s)| w / s)
            .collect();
        let b = bias - w.iter().zip(&self.mean).map(|(&w, &m)| w * m).sum::<f64>();
        (w, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        Dataset::from_parts(
            vec![vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 200.0]],
            vec![1.0, -1.0, 1.0],
        )
        .unwrap()
    }

    #[test]
    fn fit_computes_mean_and_std() {
        let s = StandardScaler::fit(&data()).unwrap();
        assert_eq!(s.mean, vec![3.0, 200.0]);
        let expected_std0 = ((4.0 + 0.0 + 4.0) / 3.0f64).sqrt();
        assert!((s.std[0] - expected_std0).abs() < 1e-12);
    }

    #[test]
    fn transformed_data_is_standardized() {
        let d = data();
        let s = StandardScaler::fit(&d).unwrap();
        let t = s.transform_dataset(&d);
        for j in 0..2 {
            let mean: f64 = (0..t.len()).map(|i| t.x(i)[j]).sum::<f64>() / t.len() as f64;
            let var: f64 = (0..t.len()).map(|i| t.x(i)[j].powi(2)).sum::<f64>() / t.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
        // Labels preserved.
        assert_eq!(t.labels(), d.labels());
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let d = Dataset::from_parts(vec![vec![5.0], vec![5.0]], vec![1.0, -1.0]).unwrap();
        let s = StandardScaler::fit(&d).unwrap();
        assert_eq!(s.transform(&[5.0]), vec![0.0]);
        assert_eq!(s.std, vec![1.0]);
    }

    #[test]
    fn empty_dataset_rejected() {
        assert!(StandardScaler::fit(&Dataset::new()).is_err());
    }

    #[test]
    fn unscale_weights_preserves_decision() {
        let d = data();
        let s = StandardScaler::fit(&d).unwrap();
        let w_scaled = vec![0.8, -0.4];
        let b_scaled = 0.3;
        let (w, b) = s.unscale_weights(&w_scaled, b_scaled);
        for (x, _) in d.iter() {
            let scaled = s.transform(x);
            let f_scaled: f64 = crate::data::dot(&w_scaled, &scaled) + b_scaled;
            let f_orig: f64 = crate::data::dot(&w, x) + b;
            assert!((f_scaled - f_orig).abs() < 1e-9);
        }
    }

    #[test]
    fn json_round_trip() {
        let s = StandardScaler::fit(&data()).unwrap();
        let j = serde_json::to_string(&s).unwrap();
        let back: StandardScaler = serde_json::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}

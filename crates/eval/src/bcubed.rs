//! B-cubed clustering metrics (Bagga & Baldwin), a per-item complement to
//! the paper's pairwise metrics.
//!
//! For each item `i`, B³ precision is the fraction of `i`'s predicted
//! cluster that shares `i`'s gold label, and B³ recall is the fraction of
//! `i`'s gold cluster captured by its predicted cluster; both are averaged
//! over items. Unlike pairwise scores, B³ is not dominated by large
//! clusters, which is useful for names like "Wei Wang" where one author
//! holds most references.

use crate::pairwise::PrfScores;

/// Compute B³ precision / recall / F over parallel label vectors.
///
/// # Panics
/// Panics if the vectors differ in length.
pub fn bcubed_scores(gold: &[usize], pred: &[usize]) -> PrfScores {
    assert_eq!(gold.len(), pred.len(), "label vectors must be parallel");
    let n = gold.len();
    if n == 0 {
        return PrfScores {
            precision: 1.0,
            recall: 1.0,
            f_measure: 1.0,
        };
    }
    let mut precision = 0.0f64;
    let mut recall = 0.0f64;
    for i in 0..n {
        let mut same_pred = 0usize; // |pred cluster of i|
        let mut same_gold = 0usize; // |gold cluster of i|
        let mut same_both = 0usize; // overlap
        for j in 0..n {
            let sp = pred[i] == pred[j];
            let sg = gold[i] == gold[j];
            same_pred += sp as usize;
            same_gold += sg as usize;
            same_both += (sp && sg) as usize;
        }
        precision += same_both as f64 / same_pred as f64;
        recall += same_both as f64 / same_gold as f64;
    }
    precision /= n as f64;
    recall /= n as f64;
    let f_measure = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PrfScores {
        precision,
        recall,
        f_measure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_prediction() {
        let gold = vec![0, 0, 1, 2, 2];
        let s = bcubed_scores(&gold, &gold);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f_measure, 1.0);
    }

    #[test]
    fn all_merged() {
        // gold: {0,1}, {2,3}; pred: one cluster of 4.
        let s = bcubed_scores(&[0, 0, 1, 1], &[0, 0, 0, 0]);
        // precision per item: 2/4; recall per item: 2/2.
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn all_singletons() {
        let s = bcubed_scores(&[0, 0, 1, 1], &[0, 1, 2, 3]);
        assert_eq!(s.precision, 1.0);
        assert!((s.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_asymmetric_case() {
        // gold: {0,1,2}, {3}; pred: {0,1}, {2,3}.
        let s = bcubed_scores(&[0, 0, 0, 1], &[0, 0, 1, 1]);
        // precision: items 0,1 -> 2/2; item 2 -> 1/2; item 3 -> 1/2 => 3/4.
        assert!((s.precision - 0.75).abs() < 1e-12);
        // recall: items 0,1 -> 2/3; item 2 -> 1/3; item 3 -> 1/1 => (2/3+2/3+1/3+1)/4.
        let expected = (2.0 / 3.0 + 2.0 / 3.0 + 1.0 / 3.0 + 1.0) / 4.0;
        assert!((s.recall - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let s = bcubed_scores(&[], &[]);
        assert_eq!(s.f_measure, 1.0);
    }

    proptest! {
        #[test]
        fn bounded_and_perfect_on_identity(
            gold in proptest::collection::vec(0usize..4, 0..25),
        ) {
            let s = bcubed_scores(&gold, &gold);
            prop_assert_eq!(s.f_measure, 1.0);
        }

        #[test]
        fn scores_in_unit_interval(
            gold in proptest::collection::vec(0usize..4, 1..25),
            pred in proptest::collection::vec(0usize..4, 1..25),
        ) {
            let n = gold.len().min(pred.len());
            let s = bcubed_scores(&gold[..n], &pred[..n]);
            prop_assert!((0.0..=1.0).contains(&s.precision));
            prop_assert!((0.0..=1.0).contains(&s.recall));
            prop_assert!((0.0..=1.0).contains(&s.f_measure));
        }

        #[test]
        fn splitting_never_hurts_precision(
            gold in proptest::collection::vec(0usize..3, 2..20),
        ) {
            let pred: Vec<usize> = (0..gold.len()).collect();
            let s = bcubed_scores(&gold, &pred);
            prop_assert_eq!(s.precision, 1.0);
        }
    }
}

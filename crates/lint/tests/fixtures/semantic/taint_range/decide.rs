//@ path: crates/cluster/src/decide.rs
//@ crate: cluster
//@ deps: relgraph
//! Fixture: the D102 sink side. The clustering decision consumes two
//! probability-valued functions from `relgraph`; one sanitizes its result
//! and one does not.

pub fn decide(a: &Refs, b: &Refs) -> bool {
    resemblance_of(a, b) > 0.5 && walk_prob(a) > 0.1
}

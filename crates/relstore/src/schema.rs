//! Relation schemas: attributes, keys, and foreign keys.
//!
//! A schema declares, for one relation, an ordered list of typed attributes.
//! At most one attribute is the *key* (a unique identifier), and any number
//! of attributes may be *foreign keys* referencing the key of another
//! relation. Attributes that are neither keys nor foreign keys are *data*
//! attributes; the [`expand`](crate::expand) module can turn each of their
//! distinct values into a pseudo-tuple so that attribute-value sharing
//! becomes ordinary linkage (paper §2.1).

use crate::error::{Result, StoreError};
use crate::value::AttrType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Role of an attribute within its relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrRole {
    /// The relation's unique key.
    Key,
    /// A foreign key referencing the key of the named relation.
    ForeignKey {
        /// Name of the referenced relation.
        target: String,
    },
    /// An ordinary data attribute.
    Data,
}

/// One attribute of a relation schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, unique within the relation.
    pub name: String,
    /// Declared type.
    pub ty: AttrType,
    /// Role (key / foreign key / data).
    pub role: AttrRole,
}

impl Attribute {
    /// A key attribute.
    pub fn key(name: impl Into<String>, ty: AttrType) -> Self {
        Attribute {
            name: name.into(),
            ty,
            role: AttrRole::Key,
        }
    }

    /// A foreign-key attribute referencing `target`'s key.
    pub fn foreign_key(name: impl Into<String>, ty: AttrType, target: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            ty,
            role: AttrRole::ForeignKey {
                target: target.into(),
            },
        }
    }

    /// A plain data attribute.
    pub fn data(name: impl Into<String>, ty: AttrType) -> Self {
        Attribute {
            name: name.into(),
            ty,
            role: AttrRole::Data,
        }
    }

    /// True if this attribute is the relation key.
    pub fn is_key(&self) -> bool {
        self.role == AttrRole::Key
    }

    /// Target relation name if this is a foreign key.
    pub fn fk_target(&self) -> Option<&str> {
        match &self.role {
            AttrRole::ForeignKey { target } => Some(target),
            _ => None,
        }
    }
}

/// Schema of a single relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationSchema {
    /// Relation name, unique within a catalog.
    pub name: String,
    /// Ordered attributes.
    pub attributes: Vec<Attribute>,
}

impl RelationSchema {
    /// Create a schema, validating attribute-name uniqueness and that at
    /// most one attribute is marked as the key.
    pub fn new(name: impl Into<String>, attributes: Vec<Attribute>) -> Result<Self> {
        let name = name.into();
        let mut seen = std::collections::HashSet::new();
        let mut key_count = 0usize;
        for attr in &attributes {
            if !seen.insert(attr.name.clone()) {
                return Err(StoreError::UnknownAttribute {
                    relation: name.clone(),
                    attribute: format!("duplicate attribute `{}`", attr.name),
                });
            }
            if attr.is_key() {
                key_count += 1;
            }
        }
        if key_count > 1 {
            return Err(StoreError::InvalidForeignKey {
                relation: name.clone(),
                attribute: "<key>".into(),
                reason: "a relation may declare at most one key attribute".into(),
            });
        }
        Ok(RelationSchema { name, attributes })
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Index of the named attribute.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Index of the key attribute, if any.
    pub fn key_index(&self) -> Option<usize> {
        self.attributes.iter().position(Attribute::is_key)
    }

    /// Indexes of all foreign-key attributes, paired with their targets.
    pub fn foreign_keys(&self) -> impl Iterator<Item = (usize, &str)> + '_ {
        self.attributes
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.fk_target().map(|t| (i, t)))
    }

    /// Indexes of data attributes (neither key nor foreign key).
    pub fn data_attrs(&self) -> impl Iterator<Item = usize> + '_ {
        self.attributes
            .iter()
            .enumerate()
            .filter_map(|(i, a)| (a.role == AttrRole::Data).then_some(i))
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
            match &a.role {
                AttrRole::Key => write!(f, " KEY")?,
                AttrRole::ForeignKey { target } => write!(f, " -> {target}")?,
                AttrRole::Data => {}
            }
        }
        write!(f, ")")
    }
}

/// Builder for [`RelationSchema`], for ergonomic schema literals.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    name: String,
    attributes: Vec<Attribute>,
}

impl SchemaBuilder {
    /// Start a schema named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        SchemaBuilder {
            name: name.into(),
            attributes: Vec::new(),
        }
    }

    /// Add a key attribute.
    pub fn key(mut self, name: impl Into<String>, ty: AttrType) -> Self {
        self.attributes.push(Attribute::key(name, ty));
        self
    }

    /// Add a foreign-key attribute.
    pub fn fk(mut self, name: impl Into<String>, ty: AttrType, target: impl Into<String>) -> Self {
        self.attributes
            .push(Attribute::foreign_key(name, ty, target));
        self
    }

    /// Add a data attribute.
    pub fn data(mut self, name: impl Into<String>, ty: AttrType) -> Self {
        self.attributes.push(Attribute::data(name, ty));
        self
    }

    /// Finish, validating the schema.
    pub fn build(self) -> Result<RelationSchema> {
        RelationSchema::new(self.name, self.attributes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn publish_schema() -> RelationSchema {
        SchemaBuilder::new("Publish")
            .fk("author", AttrType::Str, "Authors")
            .fk("paper_key", AttrType::Int, "Publications")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_schema() {
        let s = publish_schema();
        assert_eq!(s.name, "Publish");
        assert_eq!(s.arity(), 2);
        assert_eq!(s.attr_index("author"), Some(0));
        assert_eq!(s.attr_index("paper_key"), Some(1));
        assert_eq!(s.attr_index("missing"), None);
        assert_eq!(s.key_index(), None);
        let fks: Vec<_> = s.foreign_keys().collect();
        assert_eq!(fks, vec![(0, "Authors"), (1, "Publications")]);
    }

    #[test]
    fn key_and_data_roles() {
        let s = SchemaBuilder::new("Conferences")
            .key("conference", AttrType::Str)
            .data("publisher", AttrType::Str)
            .build()
            .unwrap();
        assert_eq!(s.key_index(), Some(0));
        assert_eq!(s.data_attrs().collect::<Vec<_>>(), vec![1]);
        assert!(s.attributes[0].is_key());
        assert_eq!(s.attributes[1].fk_target(), None);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let r = SchemaBuilder::new("R")
            .data("x", AttrType::Int)
            .data("x", AttrType::Int)
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn multiple_keys_rejected() {
        let r = SchemaBuilder::new("R")
            .key("a", AttrType::Int)
            .key("b", AttrType::Int)
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn display_is_readable() {
        let s = SchemaBuilder::new("Proceedings")
            .key("proc_key", AttrType::Int)
            .fk("conference", AttrType::Str, "Conferences")
            .data("year", AttrType::Int)
            .build()
            .unwrap();
        let d = s.to_string();
        assert!(d.contains("Proceedings("));
        assert!(d.contains("proc_key: int KEY"));
        assert!(d.contains("conference: str -> Conferences"));
        assert!(d.contains("year: int"));
    }
}

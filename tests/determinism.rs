//! Determinism of the parallel execution layer: the pipeline must produce
//! bit-identical output for every thread count, limits must degrade
//! parallel runs as gracefully as sequential ones, and placeholder
//! profiles from degraded runs must never poison later complete runs.

use datagen::{to_catalog, AmbiguousSpec, World, WorldConfig};
use distinct::{
    Distinct, DistinctConfig, ResolveRequest, RunControl, Stage, TrainRequest, TrainingConfig,
};

fn dataset() -> datagen::DblpDataset {
    let mut config = WorldConfig::tiny(7);
    config.ambiguous = vec![
        AmbiguousSpec::new("Wei Wang", vec![10, 8, 5]),
        AmbiguousSpec::new("Hui Fang", vec![5, 4]),
    ];
    to_catalog(&World::generate(config)).expect("valid world")
}

fn engine(d: &datagen::DblpDataset) -> Distinct {
    let config = DistinctConfig {
        training: TrainingConfig {
            positives: 80,
            negatives: 80,
            ..Default::default()
        },
        ..Default::default()
    };
    Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap()
}

#[test]
fn training_and_resolution_are_identical_at_1_2_and_8_threads() {
    let d = dataset();

    // Reference run: strictly sequential.
    let mut reference = engine(&d);
    let ref_report = reference
        .train_with(&TrainRequest::new().threads(1))
        .unwrap();
    let refs = reference.references_of("Wei Wang");
    let ref_outcome = reference.resolve(&ResolveRequest::new(&refs).threads(1));
    assert!(ref_outcome.is_complete());

    for threads in [2, 8] {
        let mut e = engine(&d);
        let report = e.train_with(&TrainRequest::new().threads(threads)).unwrap();
        assert_eq!(
            report.path_weights, ref_report.path_weights,
            "learned weights differ at {threads} threads"
        );
        assert_eq!(report.resem_accuracy, ref_report.resem_accuracy);
        assert_eq!(report.walk_accuracy, ref_report.walk_accuracy);
        // Task counts are thread-independent; only wall time may vary.
        assert_eq!(report.exec.profiles.tasks, ref_report.exec.profiles.tasks);
        assert_eq!(
            report.exec.similarity.tasks,
            ref_report.exec.similarity.tasks
        );

        let outcome = e.resolve(&ResolveRequest::new(&refs).threads(threads));
        assert!(outcome.is_complete());
        assert_eq!(
            outcome.clustering.labels, ref_outcome.clustering.labels,
            "clustering differs at {threads} threads"
        );
        assert_eq!(
            outcome.clustering.cluster_count(),
            ref_outcome.clustering.cluster_count()
        );
        assert_eq!(outcome.exec.profiles.tasks, ref_outcome.exec.profiles.tasks);
        assert_eq!(
            outcome.exec.similarity.tasks,
            ref_outcome.exec.similarity.tasks
        );
        assert_eq!(
            outcome.exec.clustering.tasks,
            ref_outcome.exec.clustering.tasks
        );
    }
}

#[test]
fn constrained_resolution_is_thread_count_independent() {
    let d = dataset();
    let e = engine(&d);
    let refs = e.references_of("Wei Wang");
    let constrained = |threads: usize| {
        e.resolve(
            &ResolveRequest::new(&refs)
                .must_link(&[(0, 1)])
                .cannot_link(&[(2, 3)])
                .threads(threads),
        )
        .clustering
        .labels
    };
    let base = constrained(1);
    assert_eq!(base[0], base[1]);
    assert_ne!(base[2], base[3]);
    for threads in [2, 8] {
        assert_eq!(constrained(threads), base, "{threads} threads");
    }
}

#[test]
fn cancellation_under_parallelism_returns_a_full_partition() {
    let d = dataset();
    let e = engine(&d);
    let refs = e.references_of("Wei Wang");

    // Cold engine, pre-cancelled: no profile completes, everything stays
    // a singleton, and the degradation is attributed to the profile stage.
    let ctl = RunControl::new();
    ctl.token().cancel();
    let outcome = e.resolve(&ResolveRequest::new(&refs).control(&ctl).threads(8));
    assert_eq!(outcome.clustering.labels.len(), refs.len());
    assert_eq!(outcome.clustering.cluster_count(), refs.len());
    let deg = outcome.degraded.expect("cancelled run must degrade");
    assert_eq!(deg.stage, Stage::Profiles);
    assert_eq!(deg.profiles_computed, 0);
    assert!(!deg.clustering_completed);

    // Warm cache, pre-cancelled: profiles are free cache hits, so the trip
    // lands on the similarity matrix instead — still a full partition.
    let _ = e.resolve(&ResolveRequest::new(&refs).threads(8));
    let ctl = RunControl::new();
    ctl.token().cancel();
    let outcome = e.resolve(&ResolveRequest::new(&refs).control(&ctl).threads(8));
    assert_eq!(outcome.clustering.labels.len(), refs.len());
    assert_eq!(outcome.clustering.cluster_count(), refs.len());
    let deg = outcome.degraded.expect("cancelled run must degrade");
    assert_eq!(deg.stage, Stage::SimilarityMatrix);
    assert_eq!(deg.profiles_computed, refs.len());
}

#[test]
fn degraded_runs_never_poison_later_complete_runs() {
    let d = dataset();
    let e = engine(&d);
    let refs = e.references_of("Hui Fang");

    // Starved run: placeholder profiles everywhere, nothing cached.
    let ctl = RunControl::new().with_budget(0);
    let degraded = e.resolve(&ResolveRequest::new(&refs).control(&ctl).threads(2));
    assert!(degraded.degraded.is_some());
    assert_eq!(degraded.clustering.cluster_count(), refs.len());
    assert_eq!(e.cached_profiles(), 0, "placeholders must never be cached");

    // A later unconstrained run recomputes real profiles and matches a
    // fresh engine that never saw the degraded run.
    let recovered = e.resolve(&ResolveRequest::new(&refs));
    assert!(recovered.is_complete());
    let fresh = engine(&d).resolve(&ResolveRequest::new(&refs));
    assert_eq!(recovered.clustering.labels, fresh.clustering.labels);
}

//! Criterion bench: parallel speedup of the resolution pipeline.
//!
//! Compares identical `resolve` calls at 1 worker thread versus one worker
//! per core. Output is bit-identical between the two (asserted below);
//! only wall-clock time differs.
//!
//! * `resolve_warm_*` — profiles cached, measuring the pairwise similarity
//!   matrix and clustering stages (recomputed every call);
//! * `cold_fanout_*` — fresh engine per iteration, measuring profile
//!   construction fan-out on top of a constant prepare cost.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{to_catalog, AmbiguousSpec, World, WorldConfig};
use distinct::{Distinct, DistinctConfig, ResolveRequest, TrainingConfig};
use std::hint::black_box;

fn world() -> datagen::DblpDataset {
    let mut config = WorldConfig::tiny(5);
    config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![30, 25, 25])];
    to_catalog(&World::generate(config)).unwrap()
}

fn engine_config() -> DistinctConfig {
    DistinctConfig {
        training: TrainingConfig {
            positives: 60,
            negatives: 60,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn bench_parallel(c: &mut Criterion) {
    let d = world();
    let engine = Distinct::prepare(&d.catalog, "Publish", "author", engine_config()).unwrap();
    let refs = d.truths[0].refs.clone();

    // Warm the profile cache, and pin down that thread count cannot change
    // the answer before timing anything.
    let sequential = engine.resolve(&ResolveRequest::new(&refs).threads(1));
    let parallel = engine.resolve(&ResolveRequest::new(&refs).threads(0));
    assert_eq!(
        sequential.clustering.labels, parallel.clustering.labels,
        "parallel resolve must be bit-identical"
    );

    c.bench_function("resolve_warm_1_thread", |b| {
        b.iter(|| {
            let o = engine.resolve(&ResolveRequest::new(black_box(&refs)).threads(1));
            black_box(o.clustering.cluster_count())
        })
    });
    c.bench_function("resolve_warm_auto_threads", |b| {
        b.iter(|| {
            let o = engine.resolve(&ResolveRequest::new(black_box(&refs)).threads(0));
            black_box(o.clustering.cluster_count())
        })
    });

    let mut group = c.benchmark_group("cold_fanout");
    group.sample_size(10);
    group.bench_function("cold_fanout_1_thread", |b| {
        b.iter(|| {
            let e = Distinct::prepare(&d.catalog, "Publish", "author", engine_config()).unwrap();
            let o = e.resolve(&ResolveRequest::new(black_box(&refs)).threads(1));
            black_box(o.clustering.cluster_count())
        })
    });
    group.bench_function("cold_fanout_auto_threads", |b| {
        b.iter(|| {
            let e = Distinct::prepare(&d.catalog, "Publish", "author", engine_config()).unwrap();
            let o = e.resolve(&ResolveRequest::new(black_box(&refs)).threads(0));
            black_box(o.clustering.cluster_count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);

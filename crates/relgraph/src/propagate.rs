//! Probability propagation along a join path (paper §2.2).
//!
//! For a reference `r` and a join path `P`, the *connection strength*
//! between `r` and each neighbor tuple `t ∈ NB_P(r)` is modelled by
//! uniform probability propagation: the tuple containing `r` starts with
//! probability 1, and at each step every tuple with non-zero probability
//! splits its mass uniformly over the tuples joinable with it along the
//! next step of `P`.
//!
//! Both quantities the paper needs come out of one traversal:
//!
//! * `Prob_P(r → t)` — mass arriving at `t` walking the path forward; and
//! * `Prob_P(t → r)` — probability that a walk starting at `t` and
//!   following the *reverse* path lands exactly on `r`.

use crate::graph::{LinkGraph, NodeId};
use relstore::{Catalog, FxHashMap, JoinPath, TupleRef};

/// Result of propagating from one origin tuple along one join path.
///
/// Maps are over nodes of the path's **end relation**; a node absent from
/// the maps has zero probability. The key sets of `forward` and `backward`
/// are identical: a tuple is reachable from `r` iff `r` is reachable from
/// it along the reverse path.
#[derive(Debug, Clone, Default)]
pub struct Propagation {
    /// `Prob_P(r → t)` per reachable end-relation tuple `t`.
    pub forward: FxHashMap<NodeId, f64>,
    /// `Prob_P(t → r)` per reachable end-relation tuple `t`.
    pub backward: FxHashMap<NodeId, f64>,
}

impl Propagation {
    /// Number of distinct neighbor tuples reached.
    pub fn neighbor_count(&self) -> usize {
        self.forward.len()
    }

    /// Total forward mass (≤ 1; < 1 only if some walk dead-ends, e.g. a
    /// null foreign key). Summed in ascending node order so the value is
    /// independent of the map's insertion history (lint D001).
    pub fn total_forward(&self) -> f64 {
        let mut terms: Vec<(NodeId, f64)> = self.forward.iter().map(|(&n, &p)| (n, p)).collect();
        terms.sort_unstable_by_key(|&(n, _)| n);
        terms.iter().map(|&(_, p)| p).sum()
    }

    /// True if no neighbor tuples were reached.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The backward map as a sorted [`crate::WeightedSet`] — the
    /// representation the columnar similarity arena interns. Weights are
    /// the `Prob_P(t → r)` values; construction sorts by node id, so
    /// downstream accumulations are independent of the map's insertion
    /// history (lint D001).
    pub fn backward_set(&self) -> crate::WeightedSet {
        crate::WeightedSet::from_map(self.backward.clone())
    }
}

/// Propagate probabilities from `origin` along `path`.
///
/// `origin` must be a tuple of the path's start relation. The catalog is
/// only consulted for the path's relation sequence; all adjacency comes
/// from the [`LinkGraph`].
pub fn propagate(
    graph: &LinkGraph,
    catalog: &Catalog,
    path: &JoinPath,
    origin: TupleRef,
) -> Propagation {
    propagate_blocked(graph, catalog, path, origin, &[])
}

/// Like [`propagate`], but walks never pass through any of the `blocked`
/// nodes: mass stepping onto a blocked node is dropped (not renormalized),
/// in both the forward and the reverse direction.
///
/// DISTINCT blocks the tuple identified by a reference's own name: all
/// resembling references share it by definition, so any linkage routed
/// through it (e.g. reaching every same-named reference via the shared
/// author tuple) is vacuous for distinguishing them.
pub fn propagate_blocked(
    graph: &LinkGraph,
    catalog: &Catalog,
    path: &JoinPath,
    origin: TupleRef,
    blocked: &[NodeId],
) -> Propagation {
    propagate_blocked_guarded(graph, catalog, path, origin, blocked, &mut |_| true)
        // distinct-lint: allow(D002, reason="guard is the constant true closure above, so the traversal can never be abandoned")
        .expect("permissive guard never stops propagation")
}

/// Like [`propagate_blocked`], but cooperatively interruptible.
///
/// `guard` is called once per propagation level (forward and backward) with
/// the number of frontier entries about to be expanded — the unit of work
/// that dominates propagation cost. Returning `false` abandons the
/// traversal: the function returns `None` and the partial frontier is
/// discarded (a half-propagated profile would silently distort similarity
/// values, which is worse than having no profile).
pub fn propagate_blocked_guarded(
    graph: &LinkGraph,
    catalog: &Catalog,
    path: &JoinPath,
    origin: TupleRef,
    blocked: &[NodeId],
    guard: &mut dyn FnMut(u64) -> bool,
) -> Option<Propagation> {
    debug_assert_eq!(
        origin.rel, path.start,
        "origin tuple not in path start relation"
    );
    let rels = path.relations(catalog);

    // Forward pass, keeping each level's frontier for the backward pass.
    let mut levels: Vec<FxHashMap<NodeId, f64>> = Vec::with_capacity(path.len() + 1);
    let mut frontier: FxHashMap<NodeId, f64> = FxHashMap::default();
    frontier.insert(graph.node(origin), 1.0);
    levels.push(frontier.clone());
    // Hoisted sort scratch, refilled per level instead of reallocated
    // (lint D110): each level clears it and re-extends from the frontier.
    let mut expand: Vec<(NodeId, f64)> = Vec::new();
    for (i, step) in path.steps.iter().enumerate() {
        if !guard(frontier.len() as u64) {
            return None;
        }
        let src_rel = rels[i];
        let mut next: FxHashMap<NodeId, f64> = FxHashMap::default();
        // Expand the frontier in ascending node order: several sources can
        // deposit mass on the same target, and f64 `+=` is order-sensitive,
        // so hash-order expansion would make the low-order bits of `next`
        // depend on the frontier map's insertion history (lint D001).
        expand.clear();
        expand.extend(frontier.iter().map(|(&u, &p)| (u, p)));
        expand.sort_unstable_by_key(|&(u, _)| u);
        for &(u, p) in &expand {
            let nbrs = graph.step_neighbors(*step, u, src_rel);
            if nbrs.is_empty() {
                continue; // dead end: mass is lost (e.g. null FK)
            }
            let share = p / nbrs.len() as f64;
            for &v in nbrs {
                if blocked.contains(&v) {
                    continue; // mass is lost at blocked nodes
                }
                *next.entry(v).or_insert(0.0) += share;
            }
        }
        levels.push(next.clone());
        frontier = next;
    }

    // Backward pass: g_i(u) = P(reverse walk from u at level i reaches origin).
    // g_0(origin) = 1; g_i(u) = (Σ_{v ∈ rev(u)} g_{i-1}(v)) / |rev(u)| where
    // rev(u) enumerates *all* reverse-step neighbors of u (tuples off every
    // path to the origin contribute 0).
    let mut g: FxHashMap<NodeId, f64> = FxHashMap::default();
    g.insert(graph.node(origin), 1.0);
    for (i, step) in path.steps.iter().enumerate() {
        if !guard(levels[i + 1].len() as u64) {
            return None;
        }
        let rev = step.reversed();
        let rev_src_rel = rels[i + 1];
        let mut g_next: FxHashMap<NodeId, f64> = FxHashMap::default();
        // Each `u` gets an independent entry and `acc` sums over the
        // deterministic reverse-neighbor slice, so iteration order cannot
        // affect any value — only the map's (unobserved) internal layout.
        // distinct-lint: allow(D001, reason="per-key insert with no cross-key accumulation; acc sums a deterministic slice")
        for &u in levels[i + 1].keys() {
            let nbrs = graph.step_neighbors(rev, u, rev_src_rel);
            debug_assert!(!nbrs.is_empty(), "reached tuple has no reverse neighbor");
            let mut acc = 0.0;
            for &v in nbrs {
                if let Some(&gv) = g.get(&v) {
                    acc += gv;
                }
            }
            if acc > 0.0 {
                g_next.insert(u, acc / nbrs.len() as f64);
            }
        }
        g = g_next;
    }

    Some(Propagation {
        forward: frontier,
        backward: g,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{AttrType, JoinStep, SchemaBuilder, Value};

    /// The Fig. 3-style setup: R_r --fk--> R1 <--fk-- R2... We model the
    /// DBLP shape: Publish -> Papers <- Publish -> Authors.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("Authors")
                .key("a", AttrType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Papers")
                .key("p", AttrType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Publish")
                .fk("a", AttrType::Str, "Authors")
                .fk("p", AttrType::Int, "Papers")
                .build()
                .unwrap(),
        )
        .unwrap();
        for a in ["w", "x", "y", "z"] {
            c.insert("Authors", [Value::str(a)].into()).unwrap();
        }
        for p in 1..=2 {
            c.insert("Papers", [Value::Int(p)].into()).unwrap();
        }
        // Paper 1 by (w, x, y); paper 2 by (w, z).
        for (a, p) in [("w", 1), ("x", 1), ("y", 1), ("w", 2), ("z", 2)] {
            c.insert("Publish", [Value::str(a), Value::Int(p)].into())
                .unwrap();
        }
        c.finalize(true).unwrap();
        c
    }

    fn coauthor_path(c: &Catalog) -> JoinPath {
        let publish = c.relation_id("Publish").unwrap();
        let fk_p = c
            .fk_edges()
            .iter()
            .find(|e| e.label == "Publish.p->Papers")
            .unwrap()
            .id;
        let fk_a = c
            .fk_edges()
            .iter()
            .find(|e| e.label == "Publish.a->Authors")
            .unwrap()
            .id;
        JoinPath::new(
            publish,
            vec![
                JoinStep::forward(fk_p),
                JoinStep::backward(fk_p),
                JoinStep::forward(fk_a),
            ],
            c,
        )
        .unwrap()
    }

    fn publish_tuple(c: &Catalog, idx: u32) -> TupleRef {
        TupleRef::new(c.relation_id("Publish").unwrap(), relstore::TupleId(idx))
    }

    fn author_node(c: &Catalog, g: &LinkGraph, name: &str) -> NodeId {
        let authors = c.relation_id("Authors").unwrap();
        let tid = c.relation(authors).by_key(&Value::str(name)).unwrap();
        g.node(TupleRef::new(authors, tid))
    }

    #[test]
    fn forward_mass_is_conserved() {
        let c = catalog();
        let g = LinkGraph::build(&c);
        let path = coauthor_path(&c);
        // Origin: (w, paper1) record.
        let prop = propagate(&g, &c, &path, publish_tuple(&c, 0));
        assert!((prop.total_forward() - 1.0).abs() < 1e-12);
        assert_eq!(prop.neighbor_count(), 3); // w, x, y all author paper 1
        assert!(!prop.is_empty());
    }

    #[test]
    fn forward_probabilities_match_hand_computation() {
        let c = catalog();
        let g = LinkGraph::build(&c);
        let path = coauthor_path(&c);
        // From (w, paper1): forward to paper1 (prob 1), backward to its 3
        // records (1/3 each), forward to authors w, x, y (1/3 each).
        let prop = propagate(&g, &c, &path, publish_tuple(&c, 0));
        for name in ["w", "x", "y"] {
            let p = prop.forward[&author_node(&c, &g, name)];
            assert!((p - 1.0 / 3.0).abs() < 1e-12, "{name}: {p}");
        }
        assert!(!prop.forward.contains_key(&author_node(&c, &g, "z")));
    }

    #[test]
    fn backward_probabilities_match_hand_computation() {
        let c = catalog();
        let g = LinkGraph::build(&c);
        let path = coauthor_path(&c);
        let prop = propagate(&g, &c, &path, publish_tuple(&c, 0));
        // Reverse path from author x: Authors <- Publish -> Papers <- Publish.
        // x has 1 publish record; it maps to paper1 (prob 1), which has 3
        // records, so landing exactly on (w, paper1) has prob 1/3.
        let px = prop.backward[&author_node(&c, &g, "x")];
        assert!((px - 1.0 / 3.0).abs() < 1e-12);
        // From author w: 2 records (paper1, paper2); only the paper1 branch
        // can reach the origin record: 1/2 * 1/3 = 1/6.
        let pw = prop.backward[&author_node(&c, &g, "w")];
        assert!((pw - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn forward_and_backward_have_same_support() {
        let c = catalog();
        let g = LinkGraph::build(&c);
        let path = coauthor_path(&c);
        for idx in 0..5 {
            let prop = propagate(&g, &c, &path, publish_tuple(&c, idx));
            let mut fk: Vec<_> = prop.forward.keys().collect();
            let mut bk: Vec<_> = prop.backward.keys().collect();
            fk.sort();
            bk.sort();
            assert_eq!(fk, bk);
        }
    }

    #[test]
    fn probabilities_are_in_unit_interval() {
        let c = catalog();
        let g = LinkGraph::build(&c);
        let path = coauthor_path(&c);
        for idx in 0..5 {
            let prop = propagate(&g, &c, &path, publish_tuple(&c, idx));
            for (&n, &p) in &prop.forward {
                assert!(p > 0.0 && p <= 1.0 + 1e-12);
                let b = prop.backward[&n];
                assert!(b > 0.0 && b <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn single_step_path() {
        let c = catalog();
        let g = LinkGraph::build(&c);
        let publish = c.relation_id("Publish").unwrap();
        let fk_p = c
            .fk_edges()
            .iter()
            .find(|e| e.label == "Publish.p->Papers")
            .unwrap()
            .id;
        let path = JoinPath::new(publish, vec![JoinStep::forward(fk_p)], &c).unwrap();
        let prop = propagate(&g, &c, &path, publish_tuple(&c, 0));
        assert_eq!(prop.neighbor_count(), 1);
        let (&_paper, &p) = prop.forward.iter().next().unwrap();
        assert!((p - 1.0).abs() < 1e-12);
        // Reverse: paper1 has 3 records, so P(t -> r) = 1/3.
        let (_, &b) = prop.backward.iter().next().unwrap();
        assert!((b - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dead_end_loses_mass() {
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("B")
                .key("b", AttrType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("A")
                .fk("b", AttrType::Int, "B")
                .build()
                .unwrap(),
        )
        .unwrap();
        c.insert("B", [Value::Int(1)].into()).unwrap();
        c.insert("A", [Value::Null].into()).unwrap(); // dangling-by-null
        c.finalize(true).unwrap();
        let g = LinkGraph::build(&c);
        let a = c.relation_id("A").unwrap();
        let fk = c.fk_edges()[0].id;
        let path = JoinPath::new(a, vec![JoinStep::forward(fk)], &c).unwrap();
        let prop = propagate(&g, &c, &path, TupleRef::new(a, relstore::TupleId(0)));
        assert!(prop.is_empty());
        assert_eq!(prop.total_forward(), 0.0);
    }

    #[test]
    fn blocking_drops_mass_through_the_node_in_both_directions() {
        let c = catalog();
        let g = LinkGraph::build(&c);
        let path = coauthor_path(&c);
        let origin = publish_tuple(&c, 1); // (x, paper1)
                                           // Block author w: reachable via paper1's records.
        let blocked = vec![author_node(&c, &g, "w")];
        let prop = crate::propagate::propagate_blocked(&g, &c, &path, origin, &blocked);
        assert!(!prop.forward.contains_key(&blocked[0]));
        assert!(!prop.backward.contains_key(&blocked[0]));
        // Mass that would have reached w is *lost*, not redistributed:
        // x and y still carry exactly 1/3 each.
        for name in ["x", "y"] {
            let p = prop.forward[&author_node(&c, &g, name)];
            assert!((p - 1.0 / 3.0).abs() < 1e-12, "{name}: {p}");
        }
        assert!((prop.total_forward() - 2.0 / 3.0).abs() < 1e-12);
        // Unblocked propagation is identical to propagate().
        let unblocked = crate::propagate::propagate_blocked(&g, &c, &path, origin, &[]);
        let plain = propagate(&g, &c, &path, origin);
        assert_eq!(unblocked.forward, plain.forward);
        assert_eq!(unblocked.backward, plain.backward);
    }

    #[test]
    fn blocking_an_intermediate_node_cuts_paths_through_it() {
        // Block paper1 itself: the coauthor path from (w, paper2) can only
        // flow through paper2, so it reaches w and z but none of paper1's
        // authors.
        let c = catalog();
        let g = LinkGraph::build(&c);
        let path = coauthor_path(&c);
        let papers = c.relation_id("Papers").unwrap();
        let p1 = TupleRef::new(papers, relstore::TupleId(0));
        let origin = publish_tuple(&c, 3); // (w, paper2)
        let prop = crate::propagate::propagate_blocked(&g, &c, &path, origin, &[g.node(p1)]);
        assert!(prop.forward.contains_key(&author_node(&c, &g, "z")));
        assert!(!prop.forward.contains_key(&author_node(&c, &g, "x")));
        assert!(!prop.forward.contains_key(&author_node(&c, &g, "y")));
    }

    #[test]
    fn guarded_propagation_stops_cleanly_or_matches_unguarded() {
        let c = catalog();
        let g = LinkGraph::build(&c);
        let path = coauthor_path(&c);
        let origin = publish_tuple(&c, 0);
        let full = propagate(&g, &c, &path, origin);
        // A permissive guard reproduces the unguarded result and is called
        // once per level in each direction.
        let mut calls = 0u32;
        let got = propagate_blocked_guarded(&g, &c, &path, origin, &[], &mut |u| {
            calls += 1;
            assert!(u > 0);
            true
        })
        .unwrap();
        assert_eq!(got.forward, full.forward);
        assert_eq!(got.backward, full.backward);
        assert_eq!(calls as usize, 2 * path.len());
        // Tripping the guard at every possible level returns None, never a
        // partial map.
        for stop_at in 1..=(2 * path.len() as u32) {
            let mut n = 0u32;
            let out = propagate_blocked_guarded(&g, &c, &path, origin, &[], &mut |_| {
                n += 1;
                n < stop_at
            });
            assert!(out.is_none(), "stop_at {stop_at} returned a partial result");
        }
    }

    #[test]
    fn empty_path_returns_origin_with_prob_one() {
        let c = catalog();
        let g = LinkGraph::build(&c);
        let publish = c.relation_id("Publish").unwrap();
        let path = JoinPath::empty(publish);
        let origin = publish_tuple(&c, 2);
        let prop = propagate(&g, &c, &path, origin);
        assert_eq!(prop.neighbor_count(), 1);
        assert_eq!(prop.forward[&g.node(origin)], 1.0);
        assert_eq!(prop.backward[&g.node(origin)], 1.0);
    }
}

//! The seven project lints. Each pass walks one [`FileCtx`] token stream.
//!
//! These are deliberately *project-specific* heuristics, not a type
//! system: they know the workspace's conventions (guard closures, the
//! exec pool, FxHashMap) and they over-approximate — a site that is
//! provably safe gets an inline `distinct-lint: allow(...)` with the
//! proof as its reason, which doubles as documentation of the invariant.

use crate::catalog::{Finding, LintId};
use crate::lexer::TokKind;
use crate::model::{FileCtx, Role};

/// Files whose loops must charge the work budget (D005). Paths are
/// workspace-relative. This is the project's definition of "hot path":
/// the stage drivers where an unguarded loop can starve cancellation.
pub const HOT_PATH_FILES: [&str; 10] = [
    "crates/relgraph/src/propagate.rs",
    "crates/relgraph/src/walk.rs",
    "crates/relgraph/src/neighbors.rs",
    "crates/core/src/features.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/training.rs",
    "crates/core/src/refcluster.rs",
    "crates/core/src/learn.rs",
    "crates/svm/src/smo.rs",
    "crates/cluster/src/engine.rs",
];

/// Crates whose numeric code must stay in f64 (D006).
pub const NUMERIC_CRATES: [&str; 5] = ["core", "cluster", "svm", "relgraph", "eval"];

/// RunControl's own implementation — the one legitimate home of
/// `Instant::now` control flow (D004).
pub const CLOCK_HOME: &str = "crates/core/src/control.rs";

/// The only library files allowed to open the filesystem write path
/// directly (D105): the Vfs seam itself and the atomic temp+rename
/// primitive built on it. Everything durable goes through these.
pub const PERSIST_HOMES: [&str; 2] = [
    "crates/relstore/src/faults.rs",
    "crates/relstore/src/persist.rs",
];

/// Run every syntactic pass over one file.
pub fn run_all(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    d001_hash_order(ctx, &mut out);
    d002_panic_paths(ctx, &mut out);
    d003_raw_threads(ctx, &mut out);
    d004_wall_clock(ctx, &mut out);
    d005_unguarded_hot_loops(ctx, &mut out);
    d006_lossy_floats(ctx, &mut out);
    d007_missing_docs(ctx, &mut out);
    d105_raw_persistence(ctx, &mut out);
    out.sort_by_key(|f| (f.line, f.id));
    out
}

/// Run the per-file passes that still apply under `check --semantic`.
/// D002 and D005 are omitted: their interprocedural refinements D101 and
/// D104 replace them at workspace scope.
pub fn run_semantic_file(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    // No d001 here: the D107 taint pass subsumes the syntactic hash-order
    // scan with real flow-sensitivity (sorts kill the taint).
    d003_raw_threads(ctx, &mut out);
    d004_wall_clock(ctx, &mut out);
    d006_lossy_floats(ctx, &mut out);
    d007_missing_docs(ctx, &mut out);
    d105_raw_persistence(ctx, &mut out);
    out.sort_by_key(|f| (f.line, f.id));
    out
}

fn finding(ctx: &FileCtx, id: LintId, line: u32, message: impl Into<String>) -> Finding {
    Finding {
        id,
        file: ctx.path.clone(),
        line,
        message: message.into(),
    }
}

/// Whether the identifier names a hash-ordered container type.
fn is_hash_type(s: &str) -> bool {
    matches!(s, "HashMap" | "HashSet" | "FxHashMap" | "FxHashSet")
}

/// Token index of the matching close brace for the open brace at `open`.
fn match_brace(ctx: &FileCtx, open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < ctx.toks.len() {
        if ctx.toks[i].is_punct('{') {
            depth += 1;
        } else if ctx.toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    ctx.toks.len()
}

// ---------------------------------------------------------------- D001 --

/// Hash-order iteration feeding float accumulation or ordered output.
fn d001_hash_order(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !ctx.is_library() {
        return;
    }
    let toks = &ctx.toks;
    let n = toks.len();

    // 1. Collect bindings whose declaration mentions a hash container:
    //    `let [mut] name: FxHashMap<..> = ..` or `let name = FxHashMap::..`
    //    plus fn parameters `name: &FxHashMap<..>`.
    let mut hash_bindings: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < n {
        if toks[i].is_ident("let") {
            let mut j = ctx.next_code(i);
            if j < n && toks[j].is_ident("mut") {
                j = ctx.next_code(j);
            }
            if j < n && toks[j].kind == TokKind::Ident {
                let name = toks[j].text.clone();
                // Scan the statement to its `;` for a hash-type mention.
                let mut k = j;
                let mut depth = 0i32;
                let mut mentions_hash = false;
                while k < n {
                    let t = &toks[k];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    } else if depth == 0 && t.is_punct(';') {
                        break;
                    } else if t.kind == TokKind::Ident && is_hash_type(&t.text) {
                        mentions_hash = true;
                    }
                    k += 1;
                }
                if mentions_hash {
                    hash_bindings.push(name);
                }
            }
        }
        // Parameters / field accesses typed as hash containers:
        // `ident : [& mut] [path ::] FxHashMap`.
        if toks[i].kind == TokKind::Ident && !is_hash_type(&toks[i].text) {
            let j = ctx.next_code(i);
            if j < n && toks[j].is_punct(':') {
                let mut k = ctx.next_code(j);
                // Skip `&`, `mut`, and leading path segments.
                for _ in 0..8 {
                    if k >= n {
                        break;
                    }
                    let t = &toks[k];
                    if t.is_punct('&') || t.is_ident("mut") || t.is_punct(':') {
                        k = ctx.next_code(k);
                    } else if t.kind == TokKind::Ident && !is_hash_type(&t.text) {
                        // A path segment like `relstore` — keep going only
                        // across `::`.
                        let nx = ctx.next_code(k);
                        if nx < n && toks[nx].is_punct(':') {
                            k = nx;
                        } else {
                            break;
                        }
                    } else {
                        break;
                    }
                }
                if k < n && toks[k].kind == TokKind::Ident && is_hash_type(&toks[k].text) {
                    hash_bindings.push(toks[i].text.clone());
                }
            }
        }
        i += 1;
    }
    hash_bindings.sort();
    hash_bindings.dedup();
    let is_hash_binding = |t: &str| hash_bindings.iter().any(|b| b == t);

    // 2a. `for .. in <expr mentioning a hash binding or .values()/.keys()
    //     /.iter()/.drain() on one> { body with += / push / extend }`.
    let mut i = 0usize;
    while i < n {
        if toks[i].is_ident("for") && !ctx.in_test(i) {
            // Header: up to the `{` at angle-free depth 0.
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut header_hash: Option<String> = None;
            while j < n {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct('{') {
                    break;
                } else if t.kind == TokKind::Ident
                    && (is_hash_binding(&t.text) || is_hash_type(&t.text))
                {
                    header_hash = Some(t.text.clone());
                }
                j += 1;
            }
            if let (Some(src), true) = (header_hash, j < n) {
                let body_end = match_brace(ctx, j);
                let mut sink: Option<&'static str> = None;
                let mut k = j;
                while k < body_end {
                    let t = &toks[k];
                    if t.is_punct('+') && k + 1 < n && toks[k + 1].is_punct('=') {
                        sink = Some("`+=` accumulation");
                        break;
                    }
                    if t.kind == TokKind::Ident
                        && matches!(t.text.as_str(), "push" | "extend" | "push_str" | "write")
                        && ctx
                            .prev_code(k)
                            .map(|p| toks[p].is_punct('.'))
                            .unwrap_or(false)
                    {
                        sink = Some("ordered output (`push`/`extend`)");
                        break;
                    }
                    k += 1;
                }
                if let Some(s) = sink {
                    out.push(finding(
                        ctx,
                        LintId::D001,
                        toks[i].line,
                        format!("`for` over hash-ordered `{src}` with {s} in the loop body"),
                    ));
                    i = j;
                    continue;
                }
            }
        }
        i += 1;
    }

    // 2b. Iterator chains: `<hash binding>.iter()/.values()/.keys()/
    //     .drain()/.into_iter() ... .sum()/.fold()/.product()/.reduce()`
    //     within one statement.
    let mut i = 0usize;
    while i < n {
        let t = &toks[i];
        if t.kind == TokKind::Ident && is_hash_binding(&t.text) && !ctx.in_test(i) {
            let j = ctx.next_code(i);
            if j < n && toks[j].is_punct('.') {
                let k = ctx.next_code(j);
                if k < n
                    && matches!(
                        toks[k].text.as_str(),
                        "iter" | "values" | "keys" | "drain" | "into_iter"
                    )
                {
                    // Scan the rest of the statement for a float-reducing
                    // adapter.
                    let mut m = k;
                    let mut depth = 0i32;
                    while m < n {
                        let u = &toks[m];
                        if u.is_punct('(') || u.is_punct('[') {
                            depth += 1;
                        } else if u.is_punct(')') || u.is_punct(']') {
                            depth -= 1;
                            if depth < 0 {
                                break;
                            }
                        } else if depth == 0 && (u.is_punct(';') || u.is_punct('{')) {
                            break;
                        } else if u.kind == TokKind::Ident
                            && matches!(u.text.as_str(), "sum" | "fold" | "product" | "reduce")
                        {
                            out.push(finding(
                                ctx,
                                LintId::D001,
                                toks[i].line,
                                format!(
                                    "`{}.{}()` chain reduced with `{}` in hash order",
                                    t.text, toks[k].text, u.text
                                ),
                            ));
                            break;
                        }
                        m += 1;
                    }
                }
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------- D002 --

/// Scan the token range `[from, to)` for panic sites: `.unwrap()`-family
/// method calls, `panic!`-family macros, and indexing by integer literal.
/// Test-masked tokens are skipped. Shared by the per-file D002 pass and
/// the interprocedural D101 pass (which scans function bodies).
pub fn panic_sites(ctx: &FileCtx, from: usize, to: usize) -> Vec<(u32, String)> {
    let toks = &ctx.toks;
    let n = toks.len().min(to);
    let mut out = Vec::new();
    for i in from..n {
        if ctx.in_test(i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];
        let next = ctx.next_code(i);
        let prev_dot = ctx
            .prev_code(i)
            .map(|p| toks[p].is_punct('.'))
            .unwrap_or(false);
        match t.text.as_str() {
            "unwrap" | "expect" | "unwrap_err" | "expect_err"
                if prev_dot && next < n && toks[next].is_punct('(') =>
            {
                out.push((t.line, format!("`.{}()` can panic", t.text)));
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if next < n && toks[next].is_punct('!') && !prev_dot =>
            {
                out.push((t.line, format!("`{}!` in library code", t.text)));
            }
            _ => {}
        }
        // Indexing by integer literal: `expr[0]` where expr ends in an
        // identifier, `)`, or `]`.
        if (t.kind == TokKind::Ident || t.is_punct(')') || t.is_punct(']'))
            && next < n
            && toks[next].is_punct('[')
        {
            let lit = ctx.next_code(next);
            let close = ctx.next_code(lit);
            if lit < n && toks[lit].kind == TokKind::Int && close < n && toks[close].is_punct(']') {
                out.push((
                    t.line,
                    format!("indexing by literal `[{}]` can panic", toks[lit].text),
                ));
            }
        }
    }
    out
}

/// Panic paths in non-test library code.
fn d002_panic_paths(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !ctx.is_library() {
        return;
    }
    for (line, message) in panic_sites(ctx, 0, ctx.toks.len()) {
        out.push(finding(ctx, LintId::D002, line, message));
    }
}

// ---------------------------------------------------------------- D003 --

/// Raw threads/channels outside crates/exec.
fn d003_raw_threads(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !ctx.is_library() || ctx.crate_name == "exec" {
        return;
    }
    let toks = &ctx.toks;
    let n = toks.len();
    for i in 0..n {
        if ctx.in_test(i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let head = toks[i].text.as_str();
        let viol = match head {
            "thread" => Some(&["spawn", "scope", "Builder"][..]),
            "mpsc" => Some(&["channel", "sync_channel"][..]),
            "crossbeam" | "rayon" => Some(&[][..]),
            _ => None,
        };
        let Some(tails) = viol else { continue };
        if tails.is_empty() {
            out.push(finding(
                ctx,
                LintId::D003,
                toks[i].line,
                format!("`{head}` use outside crates/exec"),
            ));
            continue;
        }
        // `head :: tail`
        let c1 = ctx.next_code(i);
        let c2 = if c1 < n { ctx.next_code(c1) } else { n };
        let tail = if c2 < n { ctx.next_code(c2) } else { n };
        if c1 < n
            && toks[c1].is_punct(':')
            && c2 < n
            && toks[c2].is_punct(':')
            && tail < n
            && tails.contains(&toks[tail].text.as_str())
        {
            out.push(finding(
                ctx,
                LintId::D003,
                toks[i].line,
                format!("`{head}::{}` outside crates/exec", toks[tail].text),
            ));
        }
    }
}

// ---------------------------------------------------------------- D004 --

/// Wall-clock reads outside RunControl internals.
fn d004_wall_clock(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !ctx.is_library() || ctx.path == CLOCK_HOME {
        return;
    }
    let toks = &ctx.toks;
    let n = toks.len();
    for i in 0..n {
        if ctx.in_test(i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let head = toks[i].text.as_str();
        if head != "Instant" && head != "SystemTime" {
            continue;
        }
        let c1 = ctx.next_code(i);
        let c2 = if c1 < n { ctx.next_code(c1) } else { n };
        let tail = if c2 < n { ctx.next_code(c2) } else { n };
        if c1 < n
            && toks[c1].is_punct(':')
            && c2 < n
            && toks[c2].is_punct(':')
            && tail < n
            && toks[tail].is_ident("now")
        {
            out.push(finding(
                ctx,
                LintId::D004,
                toks[i].line,
                format!("`{head}::now()` outside RunControl"),
            ));
        }
    }
}

// ---------------------------------------------------------------- D005 --

/// Unguarded loops in hot-path files.
fn d005_unguarded_hot_loops(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !ctx.is_library() || !HOT_PATH_FILES.contains(&ctx.path.as_str()) {
        return;
    }
    let toks = &ctx.toks;
    for f in &ctx.fns {
        if f.is_test || f.body_start >= f.end {
            continue;
        }
        let body = &toks[f.body_start..f.end];
        let has_loop = body.iter().enumerate().any(|(k, t)| {
            t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "for" | "while" | "loop")
                // `loop` only counts as the keyword when followed by `{`.
                && (t.text != "loop" || {
                    let abs = f.body_start + k;
                    let nx = ctx.next_code(abs);
                    nx < toks.len() && toks[nx].is_punct('{')
                })
        });
        if !has_loop {
            continue;
        }
        if f.has_guard_param {
            continue;
        }
        let charges = body.iter().enumerate().any(|(k, t)| {
            if t.kind != TokKind::Ident {
                return false;
            }
            match t.text.as_str() {
                "guard" | "shared_guard" | "charge" | "status" => {
                    let abs = f.body_start + k;
                    let nx = ctx.next_code(abs);
                    nx < toks.len() && toks[nx].is_punct('(')
                }
                _ => false,
            }
        });
        if !charges {
            out.push(finding(
                ctx,
                LintId::D005,
                f.line,
                format!(
                    "fn `{}` loops in a hot-path file without a budget guard",
                    f.name
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------- D105 --

/// Raw persistence writes outside the atomic temp+rename path.
fn d105_raw_persistence(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !ctx.is_library() || PERSIST_HOMES.contains(&ctx.path.as_str()) {
        return;
    }
    let toks = &ctx.toks;
    let n = toks.len();
    for i in 0..n {
        if ctx.in_test(i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let head = toks[i].text.as_str();
        let tails: &[&str] = match head {
            "fs" => &["write", "rename", "copy"],
            "File" => &["create", "create_new", "options"],
            "OpenOptions" => &["new"],
            _ => continue,
        };
        // `head :: tail`
        let c1 = ctx.next_code(i);
        let c2 = if c1 < n { ctx.next_code(c1) } else { n };
        let tail = if c2 < n { ctx.next_code(c2) } else { n };
        if c1 < n
            && toks[c1].is_punct(':')
            && c2 < n
            && toks[c2].is_punct(':')
            && tail < n
            && tails.contains(&toks[tail].text.as_str())
        {
            out.push(finding(
                ctx,
                LintId::D105,
                toks[i].line,
                format!(
                    "`{head}::{}` bypasses relstore::write_atomic",
                    toks[tail].text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------- D006 --

/// Lossy float casts / f32 reductions in numeric crates.
fn d006_lossy_floats(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !ctx.is_library() || !NUMERIC_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let toks = &ctx.toks;
    let n = toks.len();
    for i in 0..n {
        if ctx.in_test(i) || toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = &toks[i];
        // `as f32`
        if t.text == "as" {
            let j = ctx.next_code(i);
            if j < n && toks[j].is_ident("f32") {
                out.push(finding(
                    ctx,
                    LintId::D006,
                    t.line,
                    "`as f32` narrows the f64 pipeline",
                ));
            }
        }
        // `sum::<f32>()` / `product::<f32>()`
        if matches!(t.text.as_str(), "sum" | "product") {
            let mut j = ctx.next_code(i);
            let mut colons = 0;
            while j < n && toks[j].is_punct(':') && colons < 2 {
                colons += 1;
                j = ctx.next_code(j);
            }
            if colons == 2 && j < n && toks[j].is_punct('<') {
                let k = ctx.next_code(j);
                if k < n && toks[k].is_ident("f32") {
                    out.push(finding(
                        ctx,
                        LintId::D006,
                        t.line,
                        format!("`{}::<f32>()` reduces in f32", t.text),
                    ));
                }
            }
        }
        // f32-suffixed literal seeds (`0f32`, `0.0f32`).
        if matches!(toks[i].kind, TokKind::Ident) {
            continue;
        }
    }
    for i in 0..n {
        if ctx.in_test(i) {
            continue;
        }
        let t = &toks[i];
        if matches!(t.kind, TokKind::Int | TokKind::Float) && t.text.ends_with("f32") {
            out.push(finding(
                ctx,
                LintId::D006,
                t.line,
                format!("f32 literal `{}` in numeric code", t.text),
            ));
        }
    }
}

// ---------------------------------------------------------------- D007 --

/// Public API items in crates/core without doc comments.
fn d007_missing_docs(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.crate_name != "core" || ctx.role != Role::Library {
        return;
    }
    let toks = &ctx.toks;
    let n = toks.len();
    let inside_fn_body = |i: usize| {
        ctx.fns
            .iter()
            .any(|f| f.body_start < i && i < f.end && f.body_start != f.end)
    };
    for i in 0..n {
        if ctx.in_test(i) || !toks[i].is_ident("pub") || inside_fn_body(i) {
            continue;
        }
        let j = ctx.next_code(i);
        if j >= n {
            continue;
        }
        // `pub(crate)` etc. are not public API.
        if toks[j].is_punct('(') {
            continue;
        }
        let mut k = j;
        if toks[k].is_ident("unsafe") || toks[k].is_ident("async") || toks[k].is_ident("const") {
            // `pub const fn` — look one further for the item keyword, but
            // `pub const NAME` is itself an item.
            let k2 = ctx.next_code(k);
            if k2 < n && toks[k2].is_ident("fn") {
                k = k2;
            }
        }
        let item = toks[k].text.as_str();
        if !matches!(
            item,
            "fn" | "struct" | "enum" | "trait" | "type" | "const" | "static" | "mod"
        ) {
            continue;
        }
        // Item name for the message.
        let name_idx = ctx.next_code(k);
        let name = toks
            .get(name_idx)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        // `pub mod x;` — the module file documents itself with `//!` inner
        // docs, which rustc's missing_docs already enforces and this
        // declaration-site scan cannot see. Only inline `pub mod x { .. }`
        // bodies are checked here.
        if item == "mod" {
            let after_name = ctx.next_code(name_idx);
            if after_name < n && toks[after_name].is_punct(';') {
                continue;
            }
        }
        // Walk backwards over attributes and plain comments to find a doc
        // comment.
        let mut documented = false;
        let mut j = i;
        'back: while let Some(p) = {
            let mut q = j;
            let mut r = None;
            while q > 0 {
                q -= 1;
                if toks[q].kind != TokKind::Comment {
                    r = Some(q);
                    break;
                }
            }
            r
        } {
            match toks[p].kind {
                TokKind::DocComment => {
                    documented = true;
                    break 'back;
                }
                TokKind::Punct if toks[p].is_punct(']') => {
                    // Skip the attribute `#[ ... ]` backwards.
                    let mut depth = 0usize;
                    let mut q = p;
                    loop {
                        if toks[q].is_punct(']') {
                            depth += 1;
                        } else if toks[q].is_punct('[') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        if q == 0 {
                            break 'back;
                        }
                        q -= 1;
                    }
                    // Expect `#` before the `[`.
                    if q == 0 || !toks[q - 1].is_punct('#') {
                        break 'back;
                    }
                    j = q - 1;
                }
                _ => break 'back,
            }
        }
        if !documented {
            out.push(finding(
                ctx,
                LintId::D007,
                toks[i].line,
                format!("public `{item} {name}` has no doc comment"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> Vec<Finding> {
        run_all(&FileCtx::new(
            "crates/core/src/x.rs",
            "core",
            Role::Library,
            src,
        ))
    }

    fn ids(f: &[Finding]) -> Vec<(LintId, u32)> {
        f.iter().map(|f| (f.id, f.line)).collect()
    }

    #[test]
    fn d001_for_loop_accumulation() {
        let f = lib(
            "/// d\npub fn s() -> f64 {\n let m: FxHashMap<u32, f64> = FxHashMap::default();\n let mut t = 0.0;\n for (_, v) in &m {\n  t += v;\n }\n t\n}",
        );
        assert!(ids(&f).contains(&(LintId::D001, 5)), "{f:?}");
    }

    #[test]
    fn d001_chain_sum() {
        let f =
            lib("/// d\npub fn s() -> f64 {\n let m = FxHashMap::default();\n m.values().sum()\n}");
        assert!(ids(&f).contains(&(LintId::D001, 4)), "{f:?}");
    }

    #[test]
    fn d001_btreemap_is_fine() {
        let f = lib(
            "/// d\npub fn s() -> f64 {\n let m: BTreeMap<u32, f64> = BTreeMap::new();\n m.values().sum()\n}",
        );
        assert!(!ids(&f).iter().any(|(id, _)| *id == LintId::D001), "{f:?}");
    }

    #[test]
    fn d002_unwrap_and_literal_index() {
        let f = lib("/// d\npub fn f(v: &[f64]) -> f64 { v.first().unwrap() + v[0] }");
        let hits: Vec<_> = ids(&f)
            .into_iter()
            .filter(|(id, _)| *id == LintId::D002)
            .collect();
        assert_eq!(hits.len(), 2, "{f:?}");
    }

    #[test]
    fn d002_ignores_tests() {
        let f = lib("#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}");
        assert!(f.iter().all(|f| f.id != LintId::D002), "{f:?}");
    }

    #[test]
    fn d003_thread_spawn() {
        let f = lib("/// d\npub fn f() { std::thread::spawn(|| {}); }");
        assert!(ids(&f).iter().any(|(id, _)| *id == LintId::D003), "{f:?}");
        // Same code in crates/exec is fine.
        let ok = run_all(&FileCtx::new(
            "crates/exec/src/lib.rs",
            "exec",
            Role::Library,
            "/// d\npub fn f() { std::thread::spawn(|| {}); }",
        ));
        assert!(ok.iter().all(|f| f.id != LintId::D003));
    }

    #[test]
    fn d004_instant_now() {
        let f = lib("/// d\npub fn f() { let t = Instant::now(); }");
        assert!(ids(&f).iter().any(|(id, _)| *id == LintId::D004), "{f:?}");
    }

    #[test]
    fn d005_unguarded_loop_in_hot_file() {
        let src = "/// d\npub fn hot(xs: &[f64]) -> f64 {\n let mut t = 0.0;\n for x in xs { t += x; }\n t\n}";
        let f = run_all(&FileCtx::new(
            "crates/core/src/pipeline.rs",
            "core",
            Role::Library,
            src,
        ));
        assert!(ids(&f).iter().any(|(id, _)| *id == LintId::D005), "{f:?}");
        // A guard parameter silences it.
        let src2 = "/// d\npub fn hot(xs: &[f64], guard: &mut dyn FnMut(u64) -> bool) -> f64 {\n let mut t = 0.0;\n for x in xs { t += x; }\n t\n}";
        let f2 = run_all(&FileCtx::new(
            "crates/core/src/pipeline.rs",
            "core",
            Role::Library,
            src2,
        ));
        assert!(f2.iter().all(|f| f.id != LintId::D005), "{f2:?}");
        // Calling ctl.charge(..) silences it too.
        let src3 = "/// d\npub fn hot(xs: &[f64], ctl: &RunControl) -> f64 {\n let mut t = 0.0;\n for x in xs { if ctl.charge(1).is_some() { break; } t += x; }\n t\n}";
        let f3 = run_all(&FileCtx::new(
            "crates/core/src/pipeline.rs",
            "core",
            Role::Library,
            src3,
        ));
        assert!(f3.iter().all(|f| f.id != LintId::D005), "{f3:?}");
        // Outside the hot list nothing fires.
        let f4 = lib(src);
        assert!(f4.iter().all(|f| f.id != LintId::D005), "{f4:?}");
    }

    #[test]
    fn d105_raw_write_and_open_options() {
        let f = lib("/// d\npub fn save(p: &Path, b: &[u8]) { std::fs::write(p, b).ok(); }");
        assert!(ids(&f).iter().any(|(id, _)| *id == LintId::D105), "{f:?}");
        let f = lib("/// d\npub fn save(p: &Path) { let _ = OpenOptions::new().write(true); }");
        assert!(ids(&f).iter().any(|(id, _)| *id == LintId::D105), "{f:?}");
        let f = lib("/// d\npub fn save(p: &Path) { let _ = std::fs::File::create(p); }");
        assert!(ids(&f).iter().any(|(id, _)| *id == LintId::D105), "{f:?}");
    }

    #[test]
    fn d105_persist_homes_and_tests_are_exempt() {
        let src = "pub fn raw(p: &Path, b: &[u8]) { std::fs::write(p, b).ok(); }";
        for home in PERSIST_HOMES {
            let f = run_all(&FileCtx::new(home, "relstore", Role::Library, src));
            assert!(f.iter().all(|f| f.id != LintId::D105), "{home}: {f:?}");
        }
        let f = lib("#[cfg(test)]\nmod tests {\n fn t() { std::fs::write(p, b).unwrap(); }\n}");
        assert!(f.iter().all(|f| f.id != LintId::D105), "{f:?}");
        // Reads are not persistence.
        let f = lib(
            "/// d\npub fn load(p: &Path) -> String { fs::read_to_string(p).unwrap_or_default() }",
        );
        assert!(f.iter().all(|f| f.id != LintId::D105), "{f:?}");
    }

    #[test]
    fn d006_as_f32() {
        let f = lib("/// d\npub fn f(x: f64) -> f64 { (x as f32) as f64 }");
        assert!(ids(&f).iter().any(|(id, _)| *id == LintId::D006), "{f:?}");
    }

    #[test]
    fn d007_missing_doc_on_pub_item() {
        let f = lib("pub fn naked() {}\n/// Documented.\npub fn fine() {}");
        let hits: Vec<_> = ids(&f)
            .into_iter()
            .filter(|(id, _)| *id == LintId::D007)
            .collect();
        assert_eq!(hits, vec![(LintId::D007, 1)], "{f:?}");
    }

    #[test]
    fn d007_attrs_between_doc_and_item_are_ok() {
        let f = lib("/// Documented.\n#[derive(Debug, Clone)]\npub struct S { x: u32 }");
        assert!(f.iter().all(|f| f.id != LintId::D007), "{f:?}");
    }

    #[test]
    fn d007_pub_crate_is_exempt() {
        let f = lib("pub(crate) fn internal() {}");
        assert!(f.iter().all(|f| f.id != LintId::D007), "{f:?}");
    }
}

//! Kernel functions for the dual (SMO) solver.
//!
//! The paper uses a linear kernel — the learned model must reduce to one
//! interpretable weight per join path — but the solver is generic, and the
//! polynomial and RBF kernels are exercised by tests to validate the SMO
//! implementation on problems a linear separator cannot solve.

use crate::data::dot;
use serde::{Deserialize, Serialize};

/// Kernel function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// `K(a, b) = a · b`
    Linear,
    /// `K(a, b) = (gamma · a·b + coef0)^degree`
    Polynomial {
        /// Polynomial degree (≥ 1).
        degree: u32,
        /// Scale of the inner product.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
    },
    /// `K(a, b) = exp(−gamma · ‖a − b‖²)`
    Rbf {
        /// Width parameter (> 0).
        gamma: f64,
    },
}

impl Kernel {
    /// Evaluate the kernel on two vectors.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => dot(a, b),
            Kernel::Polynomial {
                degree,
                gamma,
                coef0,
            } => (gamma * dot(a, b) + coef0).powi(degree as i32),
            Kernel::Rbf { gamma } => {
                let sq: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * sq).exp()
            }
        }
    }

    /// True for the linear kernel (primal weights can be extracted).
    pub fn is_linear(&self) -> bool {
        matches!(self, Kernel::Linear)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_is_dot() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!(Kernel::Linear.is_linear());
    }

    #[test]
    fn polynomial_hand_computed() {
        let k = Kernel::Polynomial {
            degree: 2,
            gamma: 1.0,
            coef0: 1.0,
        };
        // (1*2 + 1)^2 = 9
        assert_eq!(k.eval(&[1.0], &[2.0]), 9.0);
        assert!(!k.is_linear());
    }

    #[test]
    fn rbf_properties() {
        let k = Kernel::Rbf { gamma: 0.5 };
        // K(x, x) = 1
        assert!((k.eval(&[1.0, -2.0], &[1.0, -2.0]) - 1.0).abs() < 1e-12);
        // Monotonically decreasing in distance.
        let near = k.eval(&[0.0], &[0.1]);
        let far = k.eval(&[0.0], &[2.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    proptest! {
        #[test]
        fn kernels_are_symmetric(
            a in proptest::collection::vec(-10.0f64..10.0, 3),
            b in proptest::collection::vec(-10.0f64..10.0, 3),
        ) {
            for k in [
                Kernel::Linear,
                Kernel::Polynomial { degree: 3, gamma: 0.7, coef0: 0.2 },
                Kernel::Rbf { gamma: 0.3 },
            ] {
                prop_assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-9);
            }
        }

        #[test]
        fn rbf_bounded(
            a in proptest::collection::vec(-10.0f64..10.0, 3),
            b in proptest::collection::vec(-10.0f64..10.0, 3),
        ) {
            let v = Kernel::Rbf { gamma: 0.5 }.eval(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
    }
}

//@ path: crates/core/src/fanout.rs
//@ crate: core
//! Fixture: D109 send-across-commit. A closure submitted to the exec
//! pool runs on worker threads in arrival order, so mutating captured
//! state from inside one races the commit order. `pushes_capture` and
//! `accumulates_capture` both write through a capture; `per_task_result`
//! builds everything in locals and ships the result back over a channel,
//! letting the pool commit in input order.

struct Fan;

impl Fan {
    fn pushes_capture(&self, items: &[u32]) {
        let mut out = Vec::new();
        self.pool.par_map_indexed(items, |i, item| {
            out.push(item + i); //~ D109
        });
        publish(&out);
    }

    fn accumulates_capture(&self, items: &[u32]) {
        let mut total = 0;
        self.pool.par_chunks(items, |chunk| {
            total += chunk.len(); //~ D109
        });
        record(total);
    }

    fn per_task_result(&self, items: &[u32]) {
        self.pool.par_map_indexed(items, |i, item| {
            let mut local = Vec::new();
            local.push(item + i);
            self.tx.send((i, local))
        });
    }
}

//! Golden conformance: the checked-in corpus under `tests/golden/` pins
//! both the oracle and the production pipeline.
//!
//! Three gates, per case:
//!
//! 1. **Freshness** — recomputing the case from its pinned world config
//!    reproduces the checked-in file byte for byte (same gate CI applies
//!    via `regen-golden` + `git diff`). The embedded catalog fingerprint
//!    separately pins datagen: if world generation drifts, the failure
//!    names the real culprit instead of blaming the algorithms.
//! 2. **Production conformance** — the production engine's stage probe
//!    agrees with the stored matrices within `1e-9`, and its resolution
//!    reproduces the stored labels exactly and the stored dendrogram
//!    merge by merge.
//! 3. **Identity** — the stored reference lists equal the generated
//!    ground truth, so the corpus can never silently drift onto
//!    different references.

use datagen::World;
use distinct::{Distinct, DistinctConfig, ResolveRequest, WeightingMode};
use oracle::GoldenCase;
use std::fs;
use std::path::PathBuf;

const TOLERANCE: f64 = 1e-9;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn load_cases() -> Vec<(String, GoldenCase)> {
    let mut cases: Vec<(String, GoldenCase)> = fs::read_dir(golden_dir())
        .expect("tests/golden exists — run `cargo run -p oracle --bin regen-golden`")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .map(|p| {
            let text = fs::read_to_string(&p).unwrap();
            let case = serde_json::from_str(&text).unwrap();
            (text, case)
        })
        .collect();
    cases.sort_by(|a, b| a.1.name.cmp(&b.1.name));
    cases
}

#[test]
fn corpus_is_present_and_complete() {
    let cases = load_cases();
    let mut names: Vec<String> = cases.iter().map(|(_, c)| c.name.clone()).collect();
    let mut expected: Vec<String> = oracle::golden_cases()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    names.sort();
    expected.sort();
    assert_eq!(
        names, expected,
        "tests/golden must hold exactly the template cases"
    );
}

#[test]
fn corpus_is_fresh_and_datagen_has_not_drifted() {
    for (text, case) in load_cases() {
        // Datagen drift check first, so a generator change is named as such.
        let d = datagen::to_catalog(&World::generate(case.config.clone())).unwrap();
        let ex = relstore::expand_values(&d.catalog).unwrap();
        assert_eq!(
            oracle::golden::catalog_fingerprint(&ex.catalog),
            case.catalog_fingerprint,
            "datagen drifted: `{}` no longer generates the pinned world",
            case.name
        );
        // Stored refs must be the generated ground truth, group by group.
        assert_eq!(case.groups.len(), d.truths.len(), "{}", case.name);
        for (group, truth) in case.groups.iter().zip(&d.truths) {
            assert_eq!(group.name, truth.name, "{}", case.name);
            assert_eq!(group.refs, truth.refs, "{}", case.name);
        }
        // Byte-identical regeneration (the CI staleness gate, inline).
        let template = GoldenCase {
            groups: Vec::new(),
            catalog_fingerprint: 0,
            ..case.clone()
        };
        let recomputed = oracle::compute_case(&template);
        let mut expected_text = serde_json::to_string_pretty(&recomputed).unwrap();
        expected_text.push('\n');
        assert_eq!(
            text, expected_text,
            "`{}` is stale — run `cargo run -p oracle --bin regen-golden`",
            case.name
        );
    }
}

#[test]
fn production_pipeline_conforms_to_the_corpus() {
    for (_, case) in load_cases() {
        let d = datagen::to_catalog(&World::generate(case.config.clone())).unwrap();
        let config = DistinctConfig {
            max_path_len: case.max_path_len,
            min_sim: case.min_sim,
            weighting: WeightingMode::Uniform,
            ..Default::default()
        };
        let engine = Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap();
        for group in &case.groups {
            let probe = engine.stage_probe(&group.refs);
            for (stage, prod, golden) in [
                ("resemblance", &probe.resemblance, &group.resemblance),
                ("walk", &probe.walk, &group.walk),
                ("similarity", &probe.similarity, &group.similarity),
            ] {
                for (i, (rp, rg)) in prod.iter().zip(golden).enumerate() {
                    for (j, (&p, &g)) in rp.iter().zip(rg).enumerate() {
                        assert!(
                            (p - g).abs() <= TOLERANCE,
                            "{}/{}: {stage}[{i}][{j}] = {p}, golden {g}",
                            case.name,
                            group.name
                        );
                    }
                }
            }
            let outcome = engine.resolve(&ResolveRequest::new(&group.refs));
            assert_eq!(
                outcome.clustering.labels, group.labels,
                "{}/{}: labels diverge from the corpus",
                case.name, group.name
            );
            let merges = outcome.clustering.dendrogram.merges();
            assert_eq!(
                merges.len(),
                group.merges.len(),
                "{}/{}",
                case.name,
                group.name
            );
            for (p, g) in merges.iter().zip(&group.merges) {
                assert_eq!(
                    (p.a, p.b, p.into, p.size),
                    (g.a, g.b, g.into, g.size),
                    "{}/{}: merge structure diverges",
                    case.name,
                    group.name
                );
                assert!(
                    (p.similarity - g.similarity).abs() <= TOLERANCE,
                    "{}/{}: merge similarity {} vs golden {}",
                    case.name,
                    group.name,
                    p.similarity,
                    g.similarity
                );
            }
        }
    }
}

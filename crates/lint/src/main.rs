//! CLI driver: `cargo run -p lint -- <command>`.
//!
//! Commands:
//!   check                 lint the workspace against lint.toml (exit 1 on debt)
//!   check --semantic      swap D002/D005 for the call-graph lints D101-D113
//!   check --fix-baseline  rewrite lint.toml to match current findings
//!   call-graph            print the resolved call graph as GraphViz DOT
//!   call-graph --reach F  list everything reachable from functions matching F
//!   facts --emit json     export the shared-state registry (cells + guards
//!                         + scratch structures)
//!   --explain <ID>        print the rationale behind a lint
//!   graph                 print the workspace crate/module graph
//!
//! Exit codes: 0 clean, 1 findings (or an empty --reach match), 2 usage
//! or internal error.

use lint::catalog::{LintId, Severity};
use lint::graph::CrateGraph;
use lint::Mode;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.split_first() {
        Some((&"check", rest)) => match parse_check_flags(rest) {
            Ok((mode, fix, root)) => run_check(mode, fix, root.as_deref()),
            Err(e) => usage_error(&e),
        },
        Some((&"call-graph", rest)) => match parse_callgraph_flags(rest) {
            Ok((reach, root)) => run_callgraph(reach.as_deref(), root.as_deref()),
            Err(e) => usage_error(&e),
        },
        Some((&"facts", rest)) => match parse_facts_flags(rest) {
            Ok(root) => run_facts(root.as_deref()),
            Err(e) => usage_error(&e),
        },
        Some((&"graph", rest)) => match parse_root_only(rest) {
            Ok(root) => graph(root.as_deref()),
            Err(e) => usage_error(&e),
        },
        Some((&("--explain" | "explain"), [id])) => explain(id),
        None | Some((&("--help" | "-h" | "help"), [])) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => usage_error(&format!("unrecognized arguments: {}", strs.join(" "))),
    }
}

const USAGE: &str = "\
distinct-lint: workspace invariant checks (D001..D007 per-file, D101..D113 semantic)

usage: cargo run -p lint -- <command>

  check                 lint the workspace, resolve against lint.toml
  check --semantic      interprocedural mode: D101..D113 replace D002/D005
  check --fix-baseline  regenerate lint.toml from current findings
  check --root <dir>    lint a different workspace root (used by self-tests)
  call-graph            print the resolved call graph as GraphViz DOT
  call-graph --reach <fn>  list functions reachable from <fn> (substring match)
  facts --emit json     export shared-state cells, guard sites, and scratch structures
  --explain <Dxxx>      print a lint's rationale and sanctioned fixes
  graph                 print the crate/module dependency graph
";

fn parse_facts_flags(rest: &[&str]) -> Result<Option<String>, String> {
    let mut root = None;
    let mut emit = None;
    let mut it = rest.iter();
    while let Some(&flag) = it.next() {
        match flag {
            "--emit" => match it.next() {
                Some(&"json") => emit = Some("json"),
                Some(&other) => return Err(format!("unsupported facts format `{other}`")),
                None => return Err("--emit needs a format (json)".into()),
            },
            "--root" => match it.next() {
                Some(&r) => root = Some(r.to_string()),
                None => return Err("--root needs a directory".into()),
            },
            other => return Err(format!("unrecognized facts flag `{other}`")),
        }
    }
    if emit.is_none() {
        return Err("facts requires `--emit json`".into());
    }
    Ok(root)
}

fn run_facts(root_override: Option<&str>) -> ExitCode {
    let root = match resolve_root(root_override) {
        Ok(r) => r,
        Err(e) => return internal(&e),
    };
    let ctxs = match lint::workspace::collect_files(&root) {
        Ok(c) => c,
        Err(e) => return internal(&e),
    };
    let ws = match lint::symbols::Workspace::from_workspace(&root, &ctxs) {
        Ok(w) => w,
        Err(e) => return internal(&e.to_string()),
    };
    let graph = lint::callgraph::CallGraph::build(ws);
    let facts = lint::concur::collect_facts(&graph, &ctxs);
    print!("{}", lint::concur::facts_json(&facts));
    ExitCode::SUCCESS
}

fn parse_check_flags(rest: &[&str]) -> Result<(Mode, bool, Option<String>), String> {
    let mut mode = Mode::Syntactic;
    let mut fix = false;
    let mut root = None;
    let mut it = rest.iter();
    while let Some(&flag) = it.next() {
        match flag {
            "--semantic" => mode = Mode::Semantic,
            "--fix-baseline" => fix = true,
            "--root" => match it.next() {
                Some(&r) => root = Some(r.to_string()),
                None => return Err("--root needs a directory".into()),
            },
            other => return Err(format!("unrecognized check flag `{other}`")),
        }
    }
    Ok((mode, fix, root))
}

fn parse_callgraph_flags(rest: &[&str]) -> Result<(Option<String>, Option<String>), String> {
    let mut reach = None;
    let mut root = None;
    let mut it = rest.iter();
    while let Some(&flag) = it.next() {
        match flag {
            "--reach" => match it.next() {
                Some(&q) => reach = Some(q.to_string()),
                None => return Err("--reach needs a function name".into()),
            },
            "--root" => match it.next() {
                Some(&r) => root = Some(r.to_string()),
                None => return Err("--root needs a directory".into()),
            },
            other => return Err(format!("unrecognized call-graph flag `{other}`")),
        }
    }
    Ok((reach, root))
}

fn parse_root_only(rest: &[&str]) -> Result<Option<String>, String> {
    match rest {
        [] => Ok(None),
        ["--root", r] => Ok(Some((*r).to_string())),
        other => Err(format!("unrecognized arguments: {}", other.join(" "))),
    }
}

fn workspace_root() -> Result<PathBuf, String> {
    // Prefer the compile-time manifest location (correct under
    // `cargo run -p lint` from anywhere), fall back to the cwd.
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    if let Some(root) = lint::workspace::find_root(&here) {
        return Ok(root);
    }
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    lint::workspace::find_root(&cwd).ok_or_else(|| "no workspace root found".into())
}

fn resolve_root(root_override: Option<&str>) -> Result<PathBuf, String> {
    match root_override {
        Some(r) => Ok(PathBuf::from(r)),
        None => workspace_root(),
    }
}

fn run_check(mode: Mode, fix: bool, root_override: Option<&str>) -> ExitCode {
    let root = match resolve_root(root_override) {
        Ok(r) => r,
        Err(e) => return internal(&e),
    };
    if fix {
        return match lint::fix_baseline_mode(&root, mode) {
            Ok(n) => {
                println!("lint: wrote lint.toml covering {n} finding(s)");
                ExitCode::SUCCESS
            }
            Err(e) => internal(&e),
        };
    }
    let outcome = match lint::check_mode(&root, mode) {
        Ok(o) => o,
        Err(e) => return internal(&e),
    };
    let label = match mode {
        Mode::Syntactic => "lint",
        Mode::Semantic => "lint[semantic]",
    };
    let baselined = outcome.analysis.findings.len() - outcome.diff.new_debt.len();
    if outcome.diff.is_clean() {
        println!(
            "{label}: clean — {} files, {} finding(s) baselined, {} suppression(s) in use",
            outcome.analysis.files, baselined, outcome.analysis.suppressions_used
        );
        return ExitCode::SUCCESS;
    }
    for f in &outcome.diff.new_debt {
        let sev = match f.id.severity() {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        };
        println!("[{sev}] {f}");
    }
    for (id, file, allowed, have) in &outcome.diff.stale {
        println!(
            "[stale] {id}: {file}: baseline says {allowed} finding(s) but only {have} remain — \
             run `cargo run -p lint -- check --fix-baseline` to ratchet down"
        );
    }
    println!(
        "{label}: FAILED — {} new finding(s), {} stale baseline entr(y/ies) \
         ({} files scanned; use `--explain <ID>` for rationale)",
        outcome.diff.new_debt.len(),
        outcome.diff.stale.len(),
        outcome.analysis.files
    );
    ExitCode::FAILURE
}

fn run_callgraph(reach: Option<&str>, root_override: Option<&str>) -> ExitCode {
    let root = match resolve_root(root_override) {
        Ok(r) => r,
        Err(e) => return internal(&e),
    };
    let ctxs = match lint::workspace::collect_files(&root) {
        Ok(c) => c,
        Err(e) => return internal(&e),
    };
    let ws = match lint::symbols::Workspace::from_workspace(&root, &ctxs) {
        Ok(w) => w,
        Err(e) => return internal(&e.to_string()),
    };
    let graph = lint::callgraph::CallGraph::build(ws);
    match reach {
        Some(query) => {
            print!("{}", graph.reach_report(query));
            if graph.find_fns(query).is_empty() {
                // A vanished root is a failure (CI uses this to assert the
                // resolve spine still exists).
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        None => {
            print!("{}", graph.to_dot());
            ExitCode::SUCCESS
        }
    }
}

fn explain(id: &str) -> ExitCode {
    match LintId::parse(id) {
        Some(id) => {
            let sev = match id.severity() {
                Severity::Deny => "deny",
                Severity::Warn => "warn",
            };
            println!("{id} [{sev}]: {}\n", id.title());
            println!("{}", id.rationale());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "lint: unknown lint `{id}`; known: {}",
                LintId::ALL.map(|i| i.name()).join(", ")
            );
            ExitCode::from(2)
        }
    }
}

fn graph(root_override: Option<&str>) -> ExitCode {
    let root = match resolve_root(root_override) {
        Ok(r) => r,
        Err(e) => return internal(&e),
    };
    match CrateGraph::load(&root) {
        Ok(g) => {
            print!("{}", g.render());
            ExitCode::SUCCESS
        }
        Err(e) => internal(&e.to_string()),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn internal(msg: &str) -> ExitCode {
    eprintln!("lint: error: {msg}");
    ExitCode::from(2)
}

//! Offline drop-in subset of `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of serde it uses: `#[derive(Serialize, Deserialize)]` on plain
//! structs and enums, consumed by the vendored `serde_json`. Instead of
//! serde's visitor architecture, values round-trip through a JSON-shaped
//! [`Content`] tree — drastically simpler, and exactly as expressive as the
//! JSON the repo persists.
//!
//! Conventions match serde's external tagging so the emitted JSON looks
//! like upstream's: structs are maps, newtype structs are transparent,
//! unit enum variants are strings, and payload variants are
//! `{"Variant": ...}` maps.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value: the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object, insertion-ordered.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize into the [`Content`] data model.
pub trait Serialize {
    /// This value as content.
    fn to_content(&self) -> Content;
}

/// Deserialize from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuild a value from content.
    fn from_content(c: &Content) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- scalars

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let err = || Error::custom(format!(
                    "expected {} integer, got {}", stringify!($t), c.kind()));
                match *c {
                    Content::I64(v) => <$t>::try_from(v).map_err(|_| err()),
                    Content::U64(v) => <$t>::try_from(v).map_err(|_| err()),
                    Content::F64(v) if v.fract() == 0.0
                        && v >= <$t>::MIN as f64 && v <= <$t>::MAX as f64 =>
                        Ok(v as $t),
                    _ => Err(err()),
                }
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_uint_wide {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                match i64::try_from(*self) {
                    Ok(v) => Content::I64(v),
                    Err(_) => Content::U64(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let err = || Error::custom(format!(
                    "expected {} integer, got {}", stringify!($t), c.kind()));
                match *c {
                    Content::I64(v) => <$t>::try_from(v).map_err(|_| err()),
                    Content::U64(v) => <$t>::try_from(v).map_err(|_| err()),
                    Content::F64(v) if v.fract() == 0.0 && v >= 0.0
                        && v <= <$t>::MAX as f64 => Ok(v as $t),
                    _ => Err(err()),
                }
            }
        }
    )*};
}
impl_uint_wide!(u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match *c {
            Content::F64(v) => Ok(v),
            Content::I64(v) => Ok(v as f64),
            Content::U64(v) => Ok(v as f64),
            // serde_json serializes non-finite floats as null.
            Content::Null => Ok(f64::NAN),
            _ => Err(Error::custom(format!("expected number, got {}", c.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match *c {
            Content::Bool(b) => Ok(b),
            _ => Err(Error::custom(format!("expected bool, got {}", c.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let s = c
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected char, got {}", c.kind())))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------- strings

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", c.kind())))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

// `Arc<str>`/`Rc<str>` serialization is covered by the generic `Arc<T>`/
// `Rc<T>` impls below; only deserialization needs the unsized special case.
impl Deserialize for Arc<str> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(Arc::from)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", c.kind())))
    }
}

impl Deserialize for Rc<str> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(Rc::from)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", c.kind())))
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Rc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, got {}", c.kind())))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let seq = c.as_seq().ok_or_else(|| {
                    Error::custom(format!("expected tuple sequence, got {}", c.kind()))
                })?;
                let expect = [$($n, )+].len();
                if seq.len() != expect {
                    return Err(Error::custom(format!(
                        "expected tuple of {expect}, got {} elements", seq.len())));
                }
                Ok(($($t::from_content(&seq[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        map_to_content(self.iter())
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, Error> {
        map_from_content(c)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        map_to_content(self.iter())
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        map_from_content(c)
    }
}

/// Maps serialize as JSON objects when the key serializes to a string,
/// and as sequences of `[key, value]` pairs otherwise.
fn map_to_content<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Content {
    let pairs: Vec<(Content, Content)> = entries
        .map(|(k, v)| (k.to_content(), v.to_content()))
        .collect();
    if pairs.iter().all(|(k, _)| matches!(k, Content::Str(_))) {
        Content::Map(
            pairs
                .into_iter()
                .map(|(k, v)| match k {
                    Content::Str(s) => (s, v),
                    _ => unreachable!(),
                })
                .collect(),
        )
    } else {
        Content::Seq(
            pairs
                .into_iter()
                .map(|(k, v)| Content::Seq(vec![k, v]))
                .collect(),
        )
    }
}

fn map_from_content<M, K, V>(c: &Content) -> Result<M, Error>
where
    M: FromIterator<(K, V)>,
    K: Deserialize,
    V: Deserialize,
{
    match c {
        Content::Map(entries) => entries
            .iter()
            .map(|(k, v)| {
                Ok((
                    K::from_content(&Content::Str(k.clone()))?,
                    V::from_content(v)?,
                ))
            })
            .collect(),
        Content::Seq(items) => items
            .iter()
            .map(|item| {
                let pair = item
                    .as_seq()
                    .filter(|s| s.len() == 2)
                    .ok_or_else(|| Error::custom("expected [key, value] pair"))?;
                Ok((K::from_content(&pair[0])?, V::from_content(&pair[1])?))
            })
            .collect(),
        _ => Err(Error::custom(format!("expected map, got {}", c.kind()))),
    }
}

// ------------------------------------------------------- derive plumbing

/// Support code used by the generated derive impls. Not public API.
pub mod __private {
    use super::{Content, Deserialize, Error};

    /// Look up and deserialize a struct field.
    pub fn field<T: Deserialize>(
        map: &[(String, Content)],
        struct_name: &str,
        name: &str,
    ) -> Result<T, Error> {
        match map.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_content(v)
                .map_err(|e| Error::custom(format!("in field `{struct_name}.{name}`: {e}"))),
            None => Err(Error::custom(format!(
                "missing field `{name}` of `{struct_name}`"
            ))),
        }
    }

    /// Deserialize one element of a tuple payload.
    pub fn elem<T: Deserialize>(seq: &[Content], owner: &str, idx: usize) -> Result<T, Error> {
        let c = seq
            .get(idx)
            .ok_or_else(|| Error::custom(format!("missing element {idx} of `{owner}`")))?;
        T::from_content(c).map_err(|e| Error::custom(format!("in `{owner}`[{idx}]: {e}")))
    }

    /// Interpret content as an externally tagged enum: either a bare
    /// variant-name string or a single-entry `{"Variant": payload}` map.
    pub fn variant<'c>(
        c: &'c Content,
        enum_name: &str,
    ) -> Result<(&'c str, Option<&'c Content>), Error> {
        match c {
            Content::Str(s) => Ok((s, None)),
            Content::Map(m) if m.len() == 1 => Ok((m[0].0.as_str(), Some(&m[0].1))),
            _ => Err(Error::custom(format!(
                "expected `{enum_name}` variant (string or single-key map), got {}",
                c.kind()
            ))),
        }
    }

    /// Payload sequence of a tuple variant.
    pub fn tuple_payload<'c>(
        payload: Option<&'c Content>,
        owner: &str,
    ) -> Result<&'c [Content], Error> {
        payload
            .and_then(Content::as_seq)
            .ok_or_else(|| Error::custom(format!("expected sequence payload for `{owner}`")))
    }

    /// Payload map of a struct(-like) variant or struct.
    pub fn map_payload<'c>(
        payload: Option<&'c Content>,
        owner: &str,
    ) -> Result<&'c [(String, Content)], Error> {
        payload
            .and_then(Content::as_map)
            .ok_or_else(|| Error::custom(format!("expected map payload for `{owner}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN] {
            assert_eq!(i64::from_content(&v.to_content()).unwrap(), v);
        }
        assert_eq!(u64::from_content(&u64::MAX.to_content()).unwrap(), u64::MAX);
        assert!(bool::from_content(&true.to_content()).unwrap());
        let f = -1.25e-9f64;
        assert_eq!(f64::from_content(&f.to_content()).unwrap(), f);
    }

    #[test]
    fn integer_narrowing_is_checked() {
        assert!(u8::from_content(&Content::I64(300)).is_err());
        assert!(u32::from_content(&Content::I64(-1)).is_err());
        assert!(i64::from_content(&Content::Str("7".into())).is_err());
    }

    #[test]
    fn option_and_vec_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let c = v.to_content();
        assert_eq!(Vec::<Option<u32>>::from_content(&c).unwrap(), v);
    }

    #[test]
    fn tuple_len_mismatch_errors() {
        let c = Content::Seq(vec![Content::I64(1)]);
        assert!(<(i64, i64)>::from_content(&c).is_err());
    }

    #[test]
    fn string_map_uses_object_form() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        assert!(matches!(m.to_content(), Content::Map(_)));
        let mut n = BTreeMap::new();
        n.insert(3u32, 1u32);
        assert!(matches!(n.to_content(), Content::Seq(_)));
        assert_eq!(BTreeMap::from_content(&n.to_content()).unwrap(), n);
    }

    #[test]
    fn arc_str_round_trips() {
        let s: Arc<str> = Arc::from("shared");
        let c = s.to_content();
        assert_eq!(&*Arc::<str>::from_content(&c).unwrap(), "shared");
    }
}

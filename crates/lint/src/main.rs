//! CLI driver: `cargo run -p lint -- <command>`.
//!
//! Commands:
//!   check                 lint the workspace against lint.toml (exit 1 on debt)
//!   check --fix-baseline  rewrite lint.toml to match current findings
//!   --explain <ID>        print the rationale behind a lint
//!   graph                 print the workspace crate/module graph
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or internal error.

use lint::catalog::{LintId, Severity};
use lint::graph::CrateGraph;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        ["check"] => run_check(false, None),
        ["check", "--fix-baseline"] | ["--fix-baseline", "check"] => run_check(true, None),
        ["check", "--root", root] => run_check(false, Some(root)),
        ["check", "--fix-baseline", "--root", root]
        | ["check", "--root", root, "--fix-baseline"] => run_check(true, Some(root)),
        ["--explain", id] | ["explain", id] => explain(id),
        ["graph"] => graph(),
        [] | ["--help" | "-h" | "help"] => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("lint: unrecognized arguments: {}\n{USAGE}", other.join(" "));
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
distinct-lint: workspace invariant checks (D001..D007)

usage: cargo run -p lint -- <command>

  check                 lint the workspace, resolve against lint.toml
  check --fix-baseline  regenerate lint.toml from current findings
  check --root <dir>    lint a different workspace root (used by self-tests)
  --explain <D00x>      print a lint's rationale and sanctioned fixes
  graph                 print the crate/module dependency graph
";

fn workspace_root() -> Result<PathBuf, String> {
    // Prefer the compile-time manifest location (correct under
    // `cargo run -p lint` from anywhere), fall back to the cwd.
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    if let Some(root) = lint::workspace::find_root(&here) {
        return Ok(root);
    }
    let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    lint::workspace::find_root(&cwd).ok_or_else(|| "no workspace root found".into())
}

fn run_check(fix: bool, root_override: Option<&str>) -> ExitCode {
    let root = match root_override {
        Some(r) => PathBuf::from(r),
        None => match workspace_root() {
            Ok(r) => r,
            Err(e) => return internal(&e),
        },
    };
    if fix {
        return match lint::fix_baseline(&root) {
            Ok(n) => {
                println!("lint: wrote lint.toml covering {n} finding(s)");
                ExitCode::SUCCESS
            }
            Err(e) => internal(&e),
        };
    }
    let outcome = match lint::check(&root) {
        Ok(o) => o,
        Err(e) => return internal(&e),
    };
    let baselined = outcome.analysis.findings.len() - outcome.diff.new_debt.len();
    if outcome.diff.is_clean() {
        println!(
            "lint: clean — {} files, {} finding(s) baselined, {} suppression(s) in use",
            outcome.analysis.files, baselined, outcome.analysis.suppressions_used
        );
        return ExitCode::SUCCESS;
    }
    for f in &outcome.diff.new_debt {
        let sev = match f.id.severity() {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        };
        println!("[{sev}] {f}");
    }
    for (id, file, allowed, have) in &outcome.diff.stale {
        println!(
            "[stale] {id}: {file}: baseline says {allowed} finding(s) but only {have} remain — \
             run `cargo run -p lint -- check --fix-baseline` to ratchet down"
        );
    }
    println!(
        "lint: FAILED — {} new finding(s), {} stale baseline entr(y/ies) \
         ({} files scanned; use `--explain <ID>` for rationale)",
        outcome.diff.new_debt.len(),
        outcome.diff.stale.len(),
        outcome.analysis.files
    );
    ExitCode::FAILURE
}

fn explain(id: &str) -> ExitCode {
    match LintId::parse(id) {
        Some(id) => {
            let sev = match id.severity() {
                Severity::Deny => "deny",
                Severity::Warn => "warn",
            };
            println!("{id} [{sev}]: {}\n", id.title());
            println!("{}", id.rationale());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "lint: unknown lint `{id}`; known: {}",
                LintId::ALL.map(|i| i.name()).join(", ")
            );
            ExitCode::from(2)
        }
    }
}

fn graph() -> ExitCode {
    let root = match workspace_root() {
        Ok(r) => r,
        Err(e) => return internal(&e),
    };
    match CrateGraph::load(&root) {
        Ok(g) => {
            print!("{}", g.render());
            ExitCode::SUCCESS
        }
        Err(e) => internal(&e),
    }
}

fn internal(msg: &str) -> ExitCode {
    eprintln!("lint: error: {msg}");
    ExitCode::from(2)
}

//! The golden conformance corpus: small serialized worlds with their
//! expected per-stage tables and clusterings, checked in under
//! `tests/golden/` at the repository root.
//!
//! Each case pins a datagen [`WorldConfig`] (fully reproducible from its
//! seed), an FNV-1a fingerprint of the generated catalog (so silent
//! datagen drift fails loudly instead of masquerading as an algorithm
//! change), and — per ambiguous name group — the oracle's resemblance /
//! walk / similarity matrices, merge history, and final labels computed
//! with **uniform** path weights. Uniform weights keep the corpus a pin
//! on the four numeric pillars alone; supervised weight learning is
//! exercised by the differential suite instead, so an SVM change can
//! never silently shift the goldens.
//!
//! Regenerate with `cargo run -p oracle --bin regen-golden`; CI fails if
//! the checked-in files differ from a fresh regeneration.

use crate::cluster::naive_agglomerate;
use crate::engine::{Composite, Measure, OracleEngine};
use crate::paths::select_paths;
use datagen::{AmbiguousSpec, World, WorldConfig};
use relstore::{Catalog, TupleRef};
use serde::{Deserialize, Serialize};

/// One recorded merge in a golden clustering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoldenMerge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Similarity at which the merge happened.
    pub similarity: f64,
    /// Created cluster id (`n + merge index`).
    pub into: usize,
    /// Created cluster size.
    pub size: usize,
}

/// Expected outputs for one ambiguous name group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenGroup {
    /// The ambiguous name.
    pub name: String,
    /// Its references, in ground-truth order.
    pub refs: Vec<TupleRef>,
    /// Weighted set resemblance per pair (symmetric, zero diagonal).
    pub resemblance: Vec<Vec<f64>>,
    /// Symmetrized weighted walk probability per pair.
    pub walk: Vec<Vec<f64>>,
    /// Leaf composite similarity per pair.
    pub similarity: Vec<Vec<f64>>,
    /// Merge history of the naive agglomeration.
    pub merges: Vec<GoldenMerge>,
    /// Final labels (dense, first-appearance order).
    pub labels: Vec<usize>,
}

/// One golden conformance case: a pinned world plus expected outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenCase {
    /// Case (and file) name.
    pub name: String,
    /// The datagen world configuration, reproducible from its seed.
    pub config: WorldConfig,
    /// Join-path length bound used for path selection.
    pub max_path_len: usize,
    /// Clustering threshold.
    pub min_sim: f64,
    /// FNV-1a-64 fingerprint of the generated catalog (0 in templates).
    pub catalog_fingerprint: u64,
    /// Expected per-group outputs (empty in templates).
    pub groups: Vec<GoldenGroup>,
}

/// FNV-1a-64 over the catalog's full observable content: relation and
/// attribute names, every tuple's rendered values, and foreign-key
/// labels. Any datagen behavior change that alters the generated world
/// changes this fingerprint.
pub fn catalog_fingerprint(catalog: &Catalog) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for (_, rel) in catalog.relations() {
        eat(rel.name().as_bytes());
        for attr in &rel.schema().attributes {
            eat(attr.name.as_bytes());
        }
        for (_, tuple) in rel.iter() {
            eat(format!("{tuple:?}").as_bytes());
        }
    }
    for edge in catalog.fk_edges() {
        eat(edge.label.as_bytes());
    }
    h
}

/// The corpus templates: three pinned small worlds. `groups` is empty and
/// `catalog_fingerprint` 0 until [`compute_case`] fills them in.
pub fn golden_cases() -> Vec<GoldenCase> {
    let case = |name: &str, seed: u64, ambiguous: Vec<AmbiguousSpec>, min_sim: f64| {
        let mut config = WorldConfig::tiny(seed);
        config.n_authors = 120;
        config.n_venues = 12;
        config.n_communities = 5;
        config.ambiguous = ambiguous;
        GoldenCase {
            name: name.to_string(),
            config,
            max_path_len: 3,
            min_sim,
            catalog_fingerprint: 0,
            groups: Vec::new(),
        }
    };
    vec![
        case(
            "two_entities_one_name",
            7,
            vec![AmbiguousSpec::new("Wei Wang", vec![6, 5])],
            1e-4,
        ),
        case(
            "three_entities_one_name",
            13,
            vec![AmbiguousSpec::new("Lei Li", vec![5, 4, 3])],
            1e-4,
        ),
        case(
            "two_names_mixed_sizes",
            29,
            vec![
                AmbiguousSpec::new("Wei Wang", vec![4, 4]),
                AmbiguousSpec::new("Hui Fang", vec![3, 3]),
            ],
            1e-3,
        ),
    ]
}

/// Generate the case's world and compute its expected outputs with the
/// oracle under uniform path weights and the paper's Combined/Geometric
/// measure.
///
/// # Panics
///
/// Panics if the pinned world cannot be generated or its reference
/// relation cannot be resolved — golden configs are static, so either is
/// a programming error.
pub fn compute_case(template: &GoldenCase) -> GoldenCase {
    let d = datagen::to_catalog(&World::generate(template.config.clone()))
        .expect("golden world must convert to a catalog"); // distinct-lint: allow(D002, reason="golden configs are static and checked in; a conversion failure is a programming error the conformance suite must crash on")
    let ex = relstore::expand_values(&d.catalog).expect("golden world must expand"); // distinct-lint: allow(D002, reason="golden configs are static and checked in; an expansion failure is a programming error the conformance suite must crash on")
    let (paths, ref_fk) = select_paths(&ex.catalog, "Publish", "author", template.max_path_len)
        .expect("golden world must expose Publish.author"); // distinct-lint: allow(D002, reason="golden configs are static and checked in; a missing Publish.author is a programming error the conformance suite must crash on")
    let uniform = vec![1.0 / paths.len() as f64; paths.len()];
    let engine = OracleEngine::new(
        &ex.catalog,
        paths,
        ref_fk,
        uniform.clone(),
        uniform,
        Measure::Combined,
        Composite::Geometric,
    );
    let groups = d
        .truths
        .iter()
        .map(|truth| {
            let tables = engine.pairwise(&truth.refs);
            let clustering = naive_agglomerate(
                truth.refs.len(),
                &tables.resemblance,
                &tables.dwalk,
                Measure::Combined,
                Composite::Geometric,
                template.min_sim,
            );
            GoldenGroup {
                name: truth.name.clone(),
                refs: truth.refs.clone(),
                resemblance: tables.resemblance,
                walk: tables.walk,
                similarity: tables.similarity,
                merges: clustering
                    .merges
                    .iter()
                    .map(|m| GoldenMerge {
                        a: m.a,
                        b: m.b,
                        similarity: m.similarity,
                        into: m.into,
                        size: m.size,
                    })
                    .collect(),
                labels: clustering.labels,
            }
        })
        .collect();
    GoldenCase {
        name: template.name.clone(),
        config: template.config.clone(),
        max_path_len: template.max_path_len,
        min_sim: template.min_sim,
        catalog_fingerprint: catalog_fingerprint(&ex.catalog),
        groups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn templates_validate_and_compute_deterministically() {
        for template in golden_cases() {
            template.config.validate().expect("golden config validates");
            let a = compute_case(&template);
            let b = compute_case(&template);
            assert_eq!(a, b, "{} must be deterministic", template.name);
            assert!(!a.groups.is_empty());
            assert_ne!(a.catalog_fingerprint, 0);
            for g in &a.groups {
                assert_eq!(g.labels.len(), g.refs.len());
                assert_eq!(g.resemblance.len(), g.refs.len());
            }
        }
    }

    #[test]
    fn fingerprint_is_sensitive_to_the_seed() {
        let mut t = golden_cases().remove(0);
        let a = compute_case(&t);
        t.config.seed += 1;
        let b = compute_case(&t);
        assert_ne!(a.catalog_fingerprint, b.catalog_fingerprint);
    }

    #[test]
    fn golden_json_round_trips() {
        let case = compute_case(&golden_cases().remove(0));
        let text = serde_json::to_string_pretty(&case).unwrap();
        let back: GoldenCase = serde_json::from_str(&text).unwrap();
        assert_eq!(case, back);
    }
}

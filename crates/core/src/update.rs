//! Incremental resolution: append tuples, track dirtied references, and
//! repair cached similarity tables and dendrograms instead of recomputing
//! them from scratch.
//!
//! The batch pipeline treats the catalog as frozen; real bibliographic
//! databases grow continuously. [`Distinct::apply_updates`] appends a
//! batch of tuples to the engine's catalog and [`relgraph::LinkGraph`]
//! (an overlay append — existing node ids, and therefore every cached
//! profile, stay valid), then computes which references the batch *could*
//! have affected. A later [`crate::ResolveRequest::incremental`] resolve
//! copies every clean pair from the name's cached leaf tables, re-scores
//! only the dirty pairs through the exact kernel (bit-identical to the
//! pruned batch kernel, which is lossless), and re-clusters only the
//! connected components an update touched ([`cluster::compose`]).
//!
//! # Dirty tracking
//!
//! A reference `r`'s profile is built from join-path instances of length
//! `≤ max_path_len` that start at `r`, never take the reference foreign
//! key as the first step, and never visit the named tuple `r` points at
//! (its "own author"). A batch of appended tuples can change `r`'s
//! neighbor sets — membership *or* weights, since walk weights read the
//! fan-out of every non-terminal node on a path — only if some such path
//! instance passes within `max_path_len − 1` steps of an appended node.
//! Dirty marking therefore runs in two phases:
//!
//! 1. **Candidates**: a breadth-first sweep from the appended nodes over
//!    every foreign-key edge in both directions, bounded by
//!    `max_path_len` steps. Each edge arriving at a reference-relation
//!    node marks it, unless the edge is the reference FK traversed
//!    backward (the reversed form of the banned first step).
//! 2. **Confirmation**: a candidate only stays dirty if a marking route
//!    exists that avoids its own named tuple — re-run the sweep with that
//!    node excluded, one sweep per distinct named tuple among the
//!    candidates (skipped entirely when the named tuple was never visited
//!    in phase 1, in which case no route passed through it).
//!
//! Phase 2 is what keeps `pairs_dirty ≪ pairs_total`: without it, a new
//! publication by one "Wei Wang" entity would mark *every* "Wei Wang"
//! reference through the cycle `new → name → ref → paper → ref`, a route
//! the profile propagation can never take.
//!
//! The sweep over-approximates (it ignores the exact relation sequences
//! of the path set), which costs a little re-scoring but never misses an
//! affected reference — the convergence oracle in `tests/` holds the
//! resulting streaming partitions equal to cold batch resolves.

use crate::control::RunControl;
use crate::features::{directed_walk_features, resemblance_features, weighted_sum};
use crate::pipeline::{stage_stats, Distinct, DistinctError, ResolveOutcome};
use crate::refcluster::DistinctMerger;
use crate::request::{ExecReport, ResolveRequest};
use cluster::{compose, connected_components, ComponentClustering};
use relgraph::{LinkGraph, NodeId};
use relstore::{
    expand::pseudo_relation_name, AttrRole, Catalog, Direction, FkId, FxHashMap, FxHashSet,
    JoinStep, RelId, Tuple, TupleRef, Value,
};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Instant;

/// One tuple to append, named in the engine's *input* schema. Pseudo
/// value relations introduced by attribute expansion are managed
/// internally: [`Distinct::apply_updates`] inserts missing value tuples
/// before the referencing tuple, so updates look exactly like rows of the
/// original database.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UpdateTuple {
    /// Relation the tuple belongs to.
    pub relation: String,
    /// Attribute values in schema order.
    pub values: Vec<Value>,
}

impl UpdateTuple {
    /// An update tuple for `relation` with the given values.
    pub fn new(relation: impl Into<String>, values: Vec<Value>) -> Self {
        UpdateTuple {
            relation: relation.into(),
            values,
        }
    }
}

/// What one [`Distinct::apply_updates`] batch did.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct UpdateReport {
    /// Input tuples inserted into the catalog.
    pub applied: usize,
    /// Input tuples skipped because an identical tuple already exists
    /// (re-applying an applied update is a no-op).
    pub skipped: usize,
    /// Inserted tuples that are themselves references (rows of the
    /// reference relation).
    pub refs_added: usize,
    /// Pre-existing references whose neighborhood the batch changed;
    /// their profiles were evicted and their pairs re-score on the next
    /// incremental resolve.
    pub refs_dirtied: usize,
    /// Distinct reference names across added and dirtied references
    /// (always `names.len()`).
    pub names_affected: usize,
    /// The affected names themselves, sorted — the worklist a durable
    /// update stream re-resolves after the batch.
    pub names: Vec<String>,
}

impl UpdateReport {
    /// Accumulate another batch into this report. Counts add; `names` is
    /// the sorted union, so `names_affected` stays the number of distinct
    /// names across every absorbed batch.
    pub fn absorb(&mut self, other: &UpdateReport) {
        self.applied += other.applied;
        self.skipped += other.skipped;
        self.refs_added += other.refs_added;
        self.refs_dirtied += other.refs_dirtied;
        self.names.extend(other.names.iter().cloned());
        self.names.sort();
        self.names.dedup();
        self.names_affected = self.names.len();
    }
}

/// Cached incremental state of one resolved name.
#[derive(Debug, Clone)]
pub(crate) struct NameEntry {
    /// The references the tables cover, in tuple order. Updates only
    /// append references, so this stays a prefix of the name's current
    /// reference list.
    pub refs: Vec<TupleRef>,
    /// Leaf weighted-resemblance table (`refs.len()` square).
    pub resem: Vec<Vec<f64>>,
    /// Leaf directed-walk table (`refs.len()` square, asymmetric).
    pub dwalk: Vec<Vec<f64>>,
    /// References dirtied by updates since the tables were built.
    pub dirty: FxHashSet<TupleRef>,
    /// [`Distinct`] weights epoch the tables were built under.
    pub weights_epoch: u64,
    /// Bits of the `min_sim` the component clusterings were cut at.
    pub min_sim_bits: u64,
    /// Per-component clusterings of the last resolve, reusable for
    /// components no update touched.
    pub parts: Vec<ComponentClustering>,
}

/// Per-name incremental state, keyed by reference name.
pub(crate) type NameCache = FxHashMap<String, NameEntry>;

/// Whether an identical tuple already exists (keyed relations compare the
/// key's current row; keyless ones probe by first attribute, indexed or
/// scanned).
fn already_present(catalog: &Catalog, rel: RelId, values: &[Value]) -> bool {
    let relation = catalog.relation(rel);
    if let Some(k) = relation.schema().key_index() {
        return match relation.by_key(&values[k]) {
            Some(tid) => relation.tuple(tid).values() == values,
            None => false,
        };
    }
    let Some(probe) = values.first() else {
        return false;
    };
    relation
        .lookup(0, probe)
        .into_iter()
        .any(|tid| relation.tuple(tid).values() == values)
}

/// The result of the phase-1 reachability sweep: the reference-relation
/// nodes marked by a valid final arrival, plus the visited neighborhood
/// (BFS order and distances) that the exclusion sweeper re-traverses.
struct Phase1 {
    /// `start_rel` nodes with a marking arrival within `radius`.
    marked: FxHashSet<NodeId>,
    /// Every visited node in BFS visit order (sources first).
    order: Vec<NodeId>,
    /// Node -> BFS distance from the nearest source.
    dist: FxHashMap<NodeId, usize>,
}

/// Breadth-first sweep from `sources` over every foreign-key edge in both
/// directions, bounded by `radius` steps. A reference-relation node is
/// marked when some arrival uses a valid final edge (any edge except the
/// reference FK traversed backward).
fn reachable_refs(
    graph: &LinkGraph,
    catalog: &Catalog,
    start_rel: RelId,
    ref_fk: FkId,
    sources: &[NodeId],
    radius: usize,
) -> Phase1 {
    let mut dist: FxHashMap<NodeId, usize> = FxHashMap::default();
    let mut marked: FxHashSet<NodeId> = FxHashSet::default();
    let mut order: Vec<NodeId> = Vec::new();
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for &s in sources {
        if let Entry::Vacant(slot) = dist.entry(s) {
            slot.insert(0);
            order.push(s);
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist.get(&v).copied().unwrap_or(radius);
        if d >= radius {
            continue;
        }
        let rel = graph.tuple(v).rel;
        let fwd = catalog
            .out_edges(rel)
            .iter()
            .map(|&fk| (fk, Direction::Forward));
        let bwd = catalog
            .in_edges(rel)
            .iter()
            .map(|&fk| (fk, Direction::Backward));
        for (fk, dir) in fwd.chain(bwd) {
            let step = match dir {
                Direction::Forward => JoinStep::forward(fk),
                Direction::Backward => JoinStep::backward(fk),
            };
            for &w in graph.step_neighbors(step, v, rel) {
                // Marking is per edge arrival, visited or not: a node can
                // be reached unmarkably (via the banned edge) first and
                // markably later.
                if graph.tuple(w).rel == start_rel && !(fk == ref_fk && dir == Direction::Backward)
                {
                    marked.insert(w);
                }
                if let Entry::Vacant(slot) = dist.entry(w) {
                    slot.insert(d + 1);
                    order.push(w);
                    queue.push_back(w);
                }
            }
        }
    }
    Phase1 {
        marked,
        order,
        dist,
    }
}

/// Phase 2's per-author re-sweep, compiled down to array work.
///
/// An exclusion BFS can only visit nodes phase 1 visited (removing a node
/// never shortens a route), so the phase-1 neighborhood is compacted once
/// into dense indices with a precomputed adjacency — each arc carrying a
/// "marks the target" flag — and every sweep is then a plain queue walk
/// over integer ids: no hash lookups on the hot path, scratch buffers
/// reused across sweeps via a generation stamp, and an early exit as soon
/// as every queried candidate is confirmed. At DBLP scale this turns the
/// dominant cost of a single-paper update (hundreds of milliseconds of
/// repeated hash-map BFS) into a few milliseconds.
pub(crate) struct ExclusionSweeper {
    /// Dense node index -> marking-aware out-arcs within the neighborhood.
    adj: Vec<Vec<(u32, bool)>>,
    /// Dense indices of the BFS sources (the appended nodes).
    sources: Vec<u32>,
    /// Graph node -> dense index.
    index: FxHashMap<NodeId, u32>,
    radius: usize,
    /// Scratch: visit stamp per dense node (`== generation` means seen).
    stamp: Vec<u32>,
    /// Scratch: BFS depth per dense node, valid when stamped.
    depth: Vec<u32>,
    generation: u32,
}

impl ExclusionSweeper {
    /// A sweeper over no neighborhood, holding no heap capacity: the
    /// engine-owned scratch starts here and every batch
    /// [`ExclusionSweeper::rebuild`]s it before sweeping.
    pub(crate) fn empty() -> Self {
        ExclusionSweeper {
            adj: Vec::new(),
            sources: Vec::new(),
            index: FxHashMap::default(),
            radius: 0,
            stamp: Vec::new(),
            depth: Vec::new(),
            generation: 0,
        }
    }

    /// Recompile this sweeper over a new batch's phase-1 neighborhood,
    /// reusing the adjacency rows, index, and stamp buffers left by the
    /// previous batch (lint D112: this is the engine scratch's reuse
    /// discipline). Content-equivalent to building a fresh sweeper —
    /// the generation stamp restarts with the cleared stamp column, so
    /// no visit state leaks between batches.
    #[allow(clippy::too_many_arguments)]
    fn rebuild(
        &mut self,
        graph: &LinkGraph,
        catalog: &Catalog,
        start_rel: RelId,
        ref_fk: FkId,
        sources: &[NodeId],
        radius: usize,
        phase1: &Phase1,
    ) {
        let n = phase1.order.len();
        self.index.clear();
        self.index
            .extend(phase1.order.iter().enumerate().map(|(i, &v)| (v, i as u32)));
        for row in &mut self.adj {
            row.clear();
        }
        self.adj.resize_with(n, Vec::new);
        let (index, adj) = (&self.index, &mut self.adj);
        for (i, &v) in phase1.order.iter().enumerate() {
            // Frontier nodes (at exactly `radius`) are never expanded: an
            // exclusion can only increase a node's depth.
            if phase1.dist[&v] >= radius {
                continue;
            }
            let rel = graph.tuple(v).rel;
            let fwd = catalog
                .out_edges(rel)
                .iter()
                .map(|&fk| (fk, Direction::Forward));
            let bwd = catalog
                .in_edges(rel)
                .iter()
                .map(|&fk| (fk, Direction::Backward));
            for (fk, dir) in fwd.chain(bwd) {
                let step = match dir {
                    Direction::Forward => JoinStep::forward(fk),
                    Direction::Backward => JoinStep::backward(fk),
                };
                for &w in graph.step_neighbors(step, v, rel) {
                    let marks = graph.tuple(w).rel == start_rel
                        && !(fk == ref_fk && dir == Direction::Backward);
                    adj[i].push((index[&w], marks));
                }
            }
        }
        self.sources.clear();
        self.sources.extend(sources.iter().map(|s| self.index[s]));
        self.radius = radius;
        self.stamp.clear();
        self.stamp.resize(n, 0);
        self.depth.clear();
        self.depth.resize(n, 0);
        self.generation = 0;
    }

    /// Which of `targets` are still marked when `exclude` is removed from
    /// the graph? Semantics match [`reachable_refs`] with that node
    /// banned from traversal (sources included).
    fn confirmed(&mut self, exclude: NodeId, targets: &[NodeId]) -> Vec<bool> {
        let excluded = self.index[&exclude];
        let mut verdict = vec![false; targets.len()];
        // Candidate dense index -> position in `targets` (nodes distinct).
        let want: FxHashMap<u32, usize> = targets
            .iter()
            .enumerate()
            .map(|(i, t)| (self.index[t], i))
            .collect();
        let mut remaining = want.len();

        self.generation += 1;
        let generation = self.generation;
        let mut queue: VecDeque<u32> = VecDeque::new();
        for &s in &self.sources {
            if s == excluded || self.stamp[s as usize] == generation {
                continue;
            }
            self.stamp[s as usize] = generation;
            self.depth[s as usize] = 0;
            queue.push_back(s);
        }
        while let Some(v) = queue.pop_front() {
            let d = self.depth[v as usize] as usize;
            if d >= self.radius {
                continue;
            }
            for &(w, marks) in &self.adj[v as usize] {
                if w == excluded {
                    continue;
                }
                if marks && remaining > 0 {
                    if let Some(&slot) = want.get(&w) {
                        if !verdict[slot] {
                            verdict[slot] = true;
                            remaining -= 1;
                        }
                    }
                }
                if self.stamp[w as usize] != generation {
                    self.stamp[w as usize] = generation;
                    self.depth[w as usize] = d as u32 + 1;
                    queue.push_back(w);
                }
            }
            if remaining == 0 {
                break;
            }
        }
        verdict
    }
}

impl Distinct {
    /// Append a batch of tuples to the engine's catalog and link graph,
    /// and mark every reference whose similarity evidence the batch could
    /// have changed (see the module docs for the soundness argument).
    ///
    /// Tuples already present are skipped, so re-applying an applied
    /// batch is a no-op. Within one batch, referenced tuples must precede
    /// referencing ones (the natural order of an insertion log); pseudo
    /// value tuples for expanded attributes are inserted automatically.
    /// Dirty references have their cached profiles evicted and their
    /// names' cached tables marked; nothing is recomputed until the next
    /// [`crate::ResolveRequest::incremental`] resolve asks for it.
    pub fn apply_updates(
        &mut self,
        updates: &[UpdateTuple],
    ) -> Result<UpdateReport, DistinctError> {
        let mut report = UpdateReport::default();
        let mut new_tuples: Vec<TupleRef> = Vec::new();
        for u in updates {
            let rel = self.catalog.relation_id(&u.relation).ok_or_else(|| {
                DistinctError::Config(format!("update names unknown relation `{}`", u.relation))
            })?;
            if u.values.len() != self.catalog.relation(rel).schema().attributes.len() {
                return Err(DistinctError::Config(format!(
                    "update for `{}` has {} values, schema has {} attributes",
                    u.relation,
                    u.values.len(),
                    self.catalog.relation(rel).schema().attributes.len()
                )));
            }
            if already_present(&self.catalog, rel, &u.values) {
                report.skipped += 1;
                continue;
            }
            // Expanded data attributes reference pseudo value relations;
            // missing value tuples must exist before the referencing
            // tuple so the graph append can wire its forward edges.
            let pseudo: Vec<(String, Value)> = self
                .catalog
                .relation(rel)
                .schema()
                .attributes
                .iter()
                .enumerate()
                .filter_map(|(i, a)| match &a.role {
                    AttrRole::ForeignKey { target }
                        if *target == pseudo_relation_name(&u.relation, &a.name)
                            && !u.values[i].is_null() =>
                    {
                        Some((target.clone(), u.values[i].clone()))
                    }
                    _ => None,
                })
                .collect();
            for (target, value) in pseudo {
                let target_rel = self.catalog.relation_id(&target).ok_or_else(|| {
                    DistinctError::Config(format!("pseudo relation `{target}` missing"))
                })?;
                if self.catalog.relation(target_rel).by_key(&value).is_none() {
                    // distinct-lint: allow(D113, reason="the catalog IS the reference corpus: it grows with applied updates by design and is evicted only by rebuilding the engine")
                    let t = self.catalog.insert(&target, Tuple::new(vec![value]))?;
                    new_tuples.push(t);
                }
            }
            let t = self
                .catalog
                .insert(&u.relation, Tuple::new(u.values.clone()))?;
            new_tuples.push(t);
            report.applied += 1;
        }
        if new_tuples.is_empty() {
            return Ok(report);
        }
        // One cheap re-finalize per batch (FK ids are stable), then wire
        // the new tuples into the graph overlay in insertion order.
        self.catalog.finalize(false)?;
        let new_nodes: Vec<NodeId> = new_tuples
            .iter()
            .map(|&t| self.graph.append_tuple(&self.catalog, t))
            .collect();

        let new_refs: FxHashSet<TupleRef> = new_tuples
            .iter()
            .copied()
            .filter(|t| t.rel == self.paths.start)
            .collect();
        report.refs_added = new_refs.len();

        // Phase 1: candidate references within max_path_len of any
        // appended node.
        let radius = self.config.max_path_len;
        let phase1 = reachable_refs(
            &self.graph,
            &self.catalog,
            self.paths.start,
            self.paths.ref_fk,
            &new_nodes,
            radius,
        );
        // Phase 2: confirm candidates along routes avoiding their own
        // named tuple, one sweep per distinct named tuple (BTree keeps
        // the sweep order deterministic).
        let mut dirty: BTreeSet<TupleRef> = BTreeSet::new();
        let mut pending: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        // Walk the deterministic BFS visit order, not the hash set, so
        // `pending`'s candidate lists are order-stable across runs.
        for &c in &phase1.order {
            if !phase1.marked.contains(&c) {
                continue;
            }
            let r = self.graph.tuple(c);
            if new_refs.contains(&r) {
                continue; // new references are handled as additions
            }
            match self.catalog.follow_forward(self.paths.ref_fk, r) {
                Some(named) => {
                    let named_node = self.graph.node(named);
                    if phase1.dist.contains_key(&named_node) {
                        pending.entry(named_node).or_default().push(c);
                    } else {
                        // No phase-1 route passed through the named tuple,
                        // so the marking route already avoids it.
                        dirty.insert(r);
                    }
                }
                // Dangling reference value: stay conservative.
                None => {
                    dirty.insert(r);
                }
            }
        }
        if !pending.is_empty() {
            // The engine-owned sweeper scratch is recompiled over this
            // batch's neighborhood in place: adjacency rows, dense index,
            // and stamp columns keep their capacity from the previous
            // batch instead of being re-grown from cold heap.
            self.sweep_scratch.rebuild(
                &self.graph,
                &self.catalog,
                self.paths.start,
                self.paths.ref_fk,
                &new_nodes,
                radius,
                &phase1,
            );
            for (&blocked, cands) in &pending {
                let verdicts = self.sweep_scratch.confirmed(blocked, cands);
                for (&c, ok) in cands.iter().zip(verdicts) {
                    if ok {
                        dirty.insert(self.graph.tuple(c));
                    }
                }
            }
        }
        report.refs_dirtied = dirty.len();

        // Dirty profiles are stale; new references were never cached.
        let evict: Vec<TupleRef> = dirty.iter().copied().collect();
        self.profile_cache.evict(&evict);

        // Count affected names and mark cached per-name state.
        let cache = self.names.get_mut();
        let mut names: BTreeSet<&str> = BTreeSet::new();
        for &r in dirty.iter().chain(new_refs.iter()) {
            if let Some(name) = self.catalog.value(r, self.ref_attr_idx).as_str() {
                names.insert(name);
                if let Some(entry) = cache.get_mut(name) {
                    entry.dirty.insert(r);
                }
            }
        }
        report.names = names.into_iter().map(str::to_string).collect();
        report.names_affected = report.names.len();
        Ok(report)
    }

    /// Take `name`'s cached entry out of the name cache. A self-contained
    /// lock scope: the incremental repair runs on the removed entry with
    /// the cache unlocked, so the exec pool's channels never block under
    /// `self.names`.
    fn take_name_entry(&self, name: &str) -> Option<NameEntry> {
        self.names.lock().remove(name)
    }

    /// The delta resolve path behind [`crate::ResolveRequest::incremental`].
    ///
    /// Returns `None` whenever a precondition fails (constraints, a
    /// non-positive threshold, refs that are not exactly one name's
    /// current reference list) or a control limit trips mid-repair — the
    /// caller then falls back to the batch path, which owns graceful
    /// degradation, and the name cache is left cold rather than
    /// half-updated.
    pub(crate) fn resolve_incremental(&self, req: &ResolveRequest<'_>) -> Option<ResolveOutcome> {
        let refs = req.refs;
        let min_sim = req.min_sim.unwrap_or(self.config.min_sim);
        // Component repair is lossless only above a positive threshold,
        // and user constraints can link across components.
        // `partial_cmp` so a NaN threshold also bails to batch.
        if refs.is_empty()
            || min_sim.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || req.is_constrained()
        {
            return None;
        }
        let first = *refs.first()?;
        if first.rel != self.paths.start {
            return None;
        }
        let name = self
            .catalog
            .value(first, self.ref_attr_idx)
            .as_str()?
            .to_string();
        if self.references_of(&name) != refs {
            return None;
        }
        let n = refs.len();
        let n_paths = self.paths.len() as u64;
        let unlimited = RunControl::new();
        let ctl = req.control.unwrap_or(&unlimited);
        let executor = self.executor_for(req.threads);

        // The entry is taken *out* of the cache for the whole repair —
        // the lock itself is never held across the staged work below (the
        // stages fan out over channels) — so every early return leaves
        // the name cold (correct, a later resolve rebuilds) instead of
        // half-updated.
        let prior = self.take_name_entry(&name).filter(|e| {
            e.weights_epoch == self.weights_epoch
                && e.refs.len() <= n
                && e.refs[..] == refs[..e.refs.len()]
        });
        // Dynamic pin of the rule lint D106 proves statically: the cache
        // guard must be fully released before the fanout below can block
        // on the pool's channels.
        debug_assert!(
            !self.names.is_locked(),
            "NameCache guard must not be held across the exec pool boundary (lint D106)"
        );

        // Stage 1: profiles (clean ones come from the shared cache).
        let logical0 = ctl.spent();
        let (profiles, profile_stats) = self.profile_fanout(refs, &executor, ctl);
        let profile_logical = ctl.spent().saturating_sub(logical0);
        if profiles.iter().any(|p| p.placeholder) {
            return None;
        }

        // Stage 2: leaf similarity tables — copy clean pairs, re-score
        // dirty ones through the exact kernel (bit-identical to the
        // lossless pruned kernel the batch path uses).
        // distinct-lint: allow(D004, reason="wall time feeds ExecReport stage timings only; control flow stays with RunControl")
        let clock = Instant::now();
        let logical1 = ctl.spent();
        let guard = ctl.shared_guard();
        let pair_units = exec::triangle_count(n) as u64 * n_paths;
        let (
            resem,
            dwalk,
            dirty_flags,
            sim_stats,
            units_pruned,
            units_exact,
            units_cached,
            interned,
        );
        if let Some(entry) = &prior {
            let k = entry.refs.len();
            let flags: Vec<bool> = (0..n)
                .map(|i| i >= k || entry.dirty.contains(&refs[i]))
                .collect();
            let mut res = vec![vec![0.0; n]; n];
            let mut dwk = vec![vec![0.0; n]; n];
            for i in 0..n {
                for j in 0..n {
                    if i != j && !flags[i] && !flags[j] {
                        res[i][j] = entry.resem[i][j];
                        dwk[i][j] = entry.dwalk[i][j];
                    }
                }
            }
            let mut dirty_pairs: u64 = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if !(flags[i] || flags[j]) {
                        continue;
                    }
                    if !guard(n_paths) {
                        return None;
                    }
                    dirty_pairs += 1;
                    let (pi, pj) = (&profiles[i], &profiles[j]);
                    let r = weighted_sum(&resemblance_features(pi, pj), &self.weights.resem);
                    let dij = weighted_sum(&directed_walk_features(pi, pj), &self.weights.walk);
                    let dji = weighted_sum(&directed_walk_features(pj, pi), &self.weights.walk);
                    res[i][j] = r;
                    res[j][i] = r;
                    dwk[i][j] = dij;
                    dwk[j][i] = dji;
                }
            }
            resem = res;
            dwalk = dwk;
            dirty_flags = flags;
            sim_stats = exec::ParStats {
                tasks: dirty_pairs as usize,
                completed: dirty_pairs as usize,
                threads: 1,
                wall: clock.elapsed(),
                stopped: false,
            };
            units_pruned = 0;
            units_exact = dirty_pairs * n_paths;
            units_cached = pair_units - units_exact;
            interned = 0;
        } else {
            // Cold: build the tables through the configured kernel, then
            // cache them so the next incremental resolve is warm.
            let (merger, stats, counters) =
                self.similarity_stage(&profiles, &req.resemblance, &executor, &guard);
            let merger = merger?;
            let (r, d) = merger.to_tables();
            resem = r.to_vec();
            dwalk = d.to_vec();
            dirty_flags = vec![true; n];
            sim_stats = stats;
            units_pruned = counters.pruned;
            units_exact = counters.exact;
            units_cached = counters.cached;
            interned = counters.interned;
        }
        let similarity_logical = ctl.spent().saturating_sub(logical1);
        let units_dirty = if prior.is_some() { units_exact } else { 0 };

        // Stage 3: component-scoped dendrogram repair. Cross-component
        // similarities are exactly zero (child-sum arithmetic keeps them
        // there), so with min_sim > 0 the batch engine could never merge
        // across a boundary — untouched components reuse their cached
        // clustering verbatim.
        // distinct-lint: allow(D004, reason="wall time feeds ExecReport stage timings only; control flow stays with RunControl")
        let clock2 = Instant::now();
        let logical2 = ctl.spent();
        let adjacent =
            |i: usize, j: usize| resem[i][j] != 0.0 || dwalk[i][j] != 0.0 || dwalk[j][i] != 0.0;
        let comps = connected_components(n, &adjacent);
        let min_sim_bits = min_sim.to_bits();
        let mut prior_parts: FxHashMap<Vec<usize>, ComponentClustering> = FxHashMap::default();
        if let Some(entry) = prior {
            if entry.min_sim_bits == min_sim_bits {
                for part in entry.parts {
                    prior_parts.insert(part.members.clone(), part);
                }
            }
        }
        let mut parts: Vec<ComponentClustering> = Vec::with_capacity(comps.len());
        let mut cluster_stats = exec::ParStats {
            threads: 1,
            ..Default::default()
        };
        for members in comps {
            if members.iter().all(|&i| !dirty_flags[i]) {
                if let Some(part) = prior_parts.remove(&members) {
                    parts.push(part);
                    continue;
                }
            }
            let local_resem = gather_rows(&resem, &members);
            let local_dwalk = gather_rows(&dwalk, &members);
            let mut merger = DistinctMerger::from_tables(
                local_resem,
                local_dwalk,
                self.config.measure,
                self.config.composite,
            )?;
            let (partial, stats) =
                cluster::agglomerate_exec(members.len(), &mut merger, min_sim, &executor, &guard);
            if !partial.completed {
                return None;
            }
            cluster_stats.tasks += stats.tasks;
            cluster_stats.completed += stats.completed;
            cluster_stats.threads = cluster_stats.threads.max(stats.threads);
            parts.push(ComponentClustering {
                members,
                dendrogram: partial.clustering.dendrogram,
            });
        }
        let clustering = compose(n, &parts);
        cluster_stats.wall = clock2.elapsed();
        let clustering_logical = ctl.spent().saturating_sub(logical2);

        let names_affected = u64::from(units_dirty > 0);
        self.names.lock().insert(
            name,
            NameEntry {
                refs: refs.to_vec(),
                resem,
                dwalk,
                dirty: FxHashSet::default(),
                weights_epoch: self.weights_epoch,
                min_sim_bits,
                parts,
            },
        );

        Some(ResolveOutcome {
            clustering,
            degraded: None,
            exec: ExecReport {
                profiles: stage_stats(profile_stats, profile_logical),
                similarity: stage_stats(sim_stats, similarity_logical),
                clustering: stage_stats(cluster_stats, clustering_logical),
                peak_rss_bytes: crate::control::peak_rss_bytes().unwrap_or(0),
                pairs_total: pair_units,
                pairs_pruned: units_pruned,
                pairs_exact: units_exact,
                pairs_cached: units_cached,
                pairs_dirty: units_dirty,
                names_affected,
                arena_rows_interned: interned,
            },
        })
    }
}

/// The `members × members` submatrix of `src`, each row exact-sized by
/// the iterator. Out-of-line from the component loop so the per-component
/// allocations (which are moved into that component's merger and cannot
/// be pooled) sit outside the charge-guarded hot loop (lint D110).
fn gather_rows(src: &[Vec<f64>], members: &[usize]) -> Vec<Vec<f64>> {
    members
        .iter()
        .map(|&i| members.iter().map(|&j| src[i][j]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistinctConfig;
    use crate::request::ResolveRequest;
    use datagen::{AmbiguousSpec, World, WorldConfig};

    fn dataset() -> datagen::DblpDataset {
        let mut config = WorldConfig::tiny(21);
        config.ambiguous = vec![
            AmbiguousSpec::new("Wei Wang", vec![10, 8, 5]),
            AmbiguousSpec::new("Hui Fang", vec![5, 4]),
        ];
        datagen::to_catalog(&World::generate(config)).unwrap()
    }

    fn engine(d: &datagen::DblpDataset) -> Distinct {
        Distinct::prepare(&d.catalog, "Publish", "author", DistinctConfig::default()).unwrap()
    }

    fn publication_update(d: &datagen::DblpDataset, paper_key: i64, title: &str) -> UpdateTuple {
        // Reuse an existing proceedings key so the new paper attaches to
        // the existing venue structure.
        let rel = d.catalog.relation_id("Publications").unwrap();
        let proc_idx = d
            .catalog
            .relation(rel)
            .schema()
            .attr_index("proc_key")
            .unwrap();
        let existing = d.catalog.relation(rel).tuple(relstore::TupleId(0));
        UpdateTuple::new(
            "Publications",
            vec![
                Value::from(paper_key),
                Value::str(title),
                existing.get(proc_idx).clone(),
            ],
        )
    }

    #[test]
    fn idempotent_reapply_is_a_no_op() {
        let d = dataset();
        let mut e = engine(&d);
        let paper_key = 100_000i64;
        let batch = vec![
            publication_update(&d, paper_key, "A Fresh Result"),
            UpdateTuple::new(
                "Publish",
                vec![Value::str("Wei Wang"), Value::from(paper_key)],
            ),
        ];
        let first = e.apply_updates(&batch).unwrap();
        assert_eq!(first.applied, 2);
        assert_eq!(first.skipped, 0);
        assert_eq!(first.refs_added, 1);
        assert!(first.names_affected >= 1);
        let nodes_after = e.graph().node_count();
        let second = e.apply_updates(&batch).unwrap();
        assert_eq!(second.applied, 0);
        assert_eq!(second.skipped, 2);
        assert_eq!(second.refs_added, 0);
        assert_eq!(second.refs_dirtied, 0);
        assert_eq!(e.graph().node_count(), nodes_after);
    }

    #[test]
    fn unknown_relation_and_bad_arity_are_rejected() {
        let d = dataset();
        let mut e = engine(&d);
        let err = e
            .apply_updates(&[UpdateTuple::new("Nope", vec![Value::str("x")])])
            .unwrap_err();
        assert!(matches!(err, DistinctError::Config(_)), "{err}");
        let err = e
            .apply_updates(&[UpdateTuple::new("Publish", vec![Value::str("x")])])
            .unwrap_err();
        assert!(matches!(err, DistinctError::Config(_)), "{err}");
    }

    #[test]
    fn updates_dirty_a_strict_subset_of_references() {
        let d = dataset();
        let mut e = engine(&d);
        let publish = d.catalog.relation_id("Publish").unwrap();
        let total_refs = d.catalog.relation(publish).len();
        let paper_key = 100_001i64;
        let report = e
            .apply_updates(&[
                publication_update(&d, paper_key, "Another Fresh Result"),
                UpdateTuple::new(
                    "Publish",
                    vec![Value::str("Wei Wang"), Value::from(paper_key)],
                ),
            ])
            .unwrap();
        assert_eq!(report.refs_added, 1);
        // The whole point of exclusion-confirmed marking: one new paper
        // must not dirty the world.
        assert!(
            report.refs_dirtied < total_refs / 2,
            "dirtied {} of {} references",
            report.refs_dirtied,
            total_refs
        );
    }

    #[test]
    fn incremental_resolve_after_update_matches_cold_batch() {
        let d = dataset();
        let mut e = engine(&d);
        let paper_key = 100_002i64;
        let updates = vec![
            publication_update(&d, paper_key, "Streaming Equals Batch"),
            UpdateTuple::new(
                "Publish",
                vec![Value::str("Wei Wang"), Value::from(paper_key)],
            ),
        ];

        // Warm the incremental cache, apply the update, resolve again.
        let refs0 = e.references_of("Wei Wang");
        let cold = e.resolve(&ResolveRequest::incremental(&refs0));
        assert!(cold.is_complete());
        assert_eq!(cold.exec.pairs_dirty, 0);
        e.apply_updates(&updates).unwrap();
        let refs1 = e.references_of("Wei Wang");
        assert_eq!(refs1.len(), refs0.len() + 1);
        let warm = e.resolve(&ResolveRequest::incremental(&refs1));
        assert!(warm.is_complete());
        assert!(warm.exec.pairs_dirty > 0);
        assert!(
            warm.exec.pairs_dirty < warm.exec.pairs_total,
            "dirty {} of {}",
            warm.exec.pairs_dirty,
            warm.exec.pairs_total
        );
        assert_eq!(warm.exec.arena_rows_interned, 0);
        assert_eq!(
            warm.exec.pairs_pruned + warm.exec.pairs_exact + warm.exec.pairs_cached,
            warm.exec.pairs_total
        );

        // A second engine that saw the union from the start: the batch
        // reference partition the incremental path must converge to.
        let mut union = engine(&d);
        union.apply_updates(&updates).unwrap();
        let refs_union = union.references_of("Wei Wang");
        assert_eq!(refs_union, refs1);
        let batch = union.resolve(&ResolveRequest::new(&refs_union));
        assert_eq!(warm.clustering.labels, batch.clustering.labels);
    }

    #[test]
    fn warm_second_resolve_does_zero_re_interning() {
        let d = dataset();
        let e = engine(&d);
        let refs = e.references_of("Wei Wang");
        let cold = e.resolve(&ResolveRequest::incremental(&refs));
        assert!(cold.exec.arena_rows_interned > 0, "cold build interns rows");
        let warm = e.resolve(&ResolveRequest::incremental(&refs));
        assert_eq!(warm.exec.arena_rows_interned, 0);
        assert_eq!(warm.exec.pairs_cached, warm.exec.pairs_total);
        assert_eq!(warm.exec.pairs_exact, 0);
        assert_eq!(warm.clustering.labels, cold.clustering.labels);
        // And the cached tables survive across other names' resolves.
        let other = e.references_of("Hui Fang");
        let _ = e.resolve(&ResolveRequest::incremental(&other));
        let again = e.resolve(&ResolveRequest::incremental(&refs));
        assert_eq!(again.exec.arena_rows_interned, 0);
        assert_eq!(again.clustering.labels, cold.clustering.labels);
    }

    #[test]
    fn incremental_request_matches_batch_resolve_bitwise_on_labels() {
        let d = dataset();
        let e = engine(&d);
        for truth in &d.truths {
            let batch = e.resolve(&ResolveRequest::new(&truth.refs));
            let inc = e.resolve(&ResolveRequest::incremental(&truth.refs));
            assert_eq!(inc.clustering.labels, batch.clustering.labels);
        }
    }

    #[test]
    fn incremental_preconditions_fall_back_to_batch() {
        let d = dataset();
        let e = engine(&d);
        let refs = e.references_of("Wei Wang");
        // A subset of a name's references is not incrementally resolvable;
        // the fall-back batch path must still answer.
        let subset = &refs[..refs.len() - 1];
        let outcome = e.resolve(&ResolveRequest::incremental(subset));
        assert_eq!(outcome.clustering.labels.len(), subset.len());
        // Constraints force the batch path too.
        let constrained = e.resolve(&ResolveRequest::incremental(&refs).cannot_link(&[(0, 1)]));
        assert_ne!(
            constrained.clustering.labels[0],
            constrained.clustering.labels[1]
        );
        // And a changed threshold invalidates cached component cuts
        // without breaking equality with batch.
        let batch = e.resolve(&ResolveRequest::new(&refs).min_sim(0.05));
        let inc = e.resolve(&ResolveRequest::incremental(&refs).min_sim(0.05));
        assert_eq!(inc.clustering.labels, batch.clustering.labels);
    }

    #[test]
    fn weight_change_invalidates_cached_tables() {
        let d = dataset();
        let mut e = engine(&d);
        let refs = e.references_of("Wei Wang");
        let _ = e.resolve(&ResolveRequest::incremental(&refs));
        let n = e.paths().len();
        let mut w = crate::learn::PathWeights::uniform(n);
        w.resem[0] += 0.5;
        e.set_weights(w).unwrap();
        // The stale entry must not be reused: the rebuild interns again.
        let after = e.resolve(&ResolveRequest::incremental(&refs));
        assert!(after.exec.arena_rows_interned > 0);
        let batch = e.resolve(&ResolveRequest::new(&refs));
        assert_eq!(after.clustering.labels, batch.clustering.labels);
    }

    /// Dynamic pin of the lock-scope rule lint D106 proves statically:
    /// the name-cache guard is released before any exec pool boundary —
    /// at the takeout helper (its guard dies inside the single
    /// statement) and along the whole incremental repair (the
    /// `debug_assert!` at the fanout fires under `cargo test` if the
    /// scope ever widens again).
    #[test]
    fn name_cache_guard_is_never_held_across_the_pool_boundary() {
        let d = dataset();
        let mut e = engine(&d);
        let refs0 = e.references_of("Wei Wang");
        assert!(e
            .resolve(&ResolveRequest::incremental(&refs0))
            .is_complete());

        let entry = e.take_name_entry("Wei Wang");
        assert!(entry.is_some(), "warm resolve must have cached the name");
        assert!(
            !e.names.is_locked(),
            "take_name_entry leaked its guard past the statement"
        );

        // Warm the cache again, update, and run the full repair — it
        // crosses the profile/similarity/clustering fanouts with debug
        // assertions on, so the boundary assert rides along.
        assert!(e
            .resolve(&ResolveRequest::incremental(&refs0))
            .is_complete());
        let paper_key = 100_077i64;
        e.apply_updates(&[
            publication_update(&d, paper_key, "Guard Scope Pin"),
            UpdateTuple::new(
                "Publish",
                vec![Value::str("Wei Wang"), Value::from(paper_key)],
            ),
        ])
        .unwrap();
        let refs1 = e.references_of("Wei Wang");
        let warm = e.resolve(&ResolveRequest::incremental(&refs1));
        assert!(warm.is_complete());
        assert!(!e.names.is_locked());
    }

    #[test]
    fn empty_update_batch_is_a_complete_no_op() {
        let d = dataset();
        let mut e = engine(&d);
        let nodes = e.graph().node_count();
        let report = e.apply_updates(&[]).unwrap();
        assert_eq!(report.applied, 0);
        assert_eq!(report.skipped, 0);
        assert_eq!(report.refs_added, 0);
        assert_eq!(report.refs_dirtied, 0);
        assert_eq!(report.names_affected, 0);
        assert!(report.names.is_empty());
        assert_eq!(e.graph().node_count(), nodes);
    }

    #[test]
    fn update_touching_an_unreferenced_relation_dirties_zero_pairs() {
        let d = dataset();
        let mut e = engine(&d);
        // A fresh conference nothing links to: the sweep must find no
        // reference whose neighborhood changed.
        let report = e
            .apply_updates(&[UpdateTuple::new(
                "Conferences",
                vec![Value::str("Phantom Conf"), Value::str("Nobody Press")],
            )])
            .unwrap();
        assert_eq!(report.applied, 1);
        assert_eq!(report.refs_added, 0);
        assert_eq!(
            report.refs_dirtied, 0,
            "a leaf tuple nothing references must not dirty the sweep"
        );
        assert_eq!(report.names_affected, 0);
        assert!(report.names.is_empty());
    }

    #[test]
    fn single_reference_name_resolves_after_its_first_update() {
        let d = dataset();
        let mut e = engine(&d);
        let paper_key = 100_078i64;
        let report = e
            .apply_updates(&[
                UpdateTuple::new("Authors", vec![Value::str("Solo Author")]),
                publication_update(&d, paper_key, "A Single Authored Result"),
                UpdateTuple::new(
                    "Publish",
                    vec![Value::str("Solo Author"), Value::from(paper_key)],
                ),
            ])
            .unwrap();
        assert_eq!(report.applied, 3);
        assert_eq!(report.refs_added, 1);
        assert!(
            report.names.contains(&"Solo Author".to_string()),
            "{:?}",
            report.names
        );
        let refs = e.references_of("Solo Author");
        assert_eq!(refs.len(), 1);
        let outcome = e.resolve(&ResolveRequest::incremental(&refs));
        assert!(outcome.is_complete());
        assert_eq!(outcome.clustering.cluster_count(), 1);
    }

    #[test]
    fn duplicate_tuple_in_one_batch_applies_once_and_skips_once() {
        let d = dataset();
        let mut e = engine(&d);
        let dup = publication_update(&d, 100_079, "Appended Twice");
        let report = e.apply_updates(&[dup.clone(), dup]).unwrap();
        assert_eq!(report.applied, 1);
        assert_eq!(report.skipped, 1);
        assert_eq!(report.refs_added, 0);
    }
}

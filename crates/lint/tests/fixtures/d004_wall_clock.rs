//@ crate: eval
//@ path: crates/eval/src/bad_d004.rs
//@ role: library

/// Times a stage with a raw clock read instead of RunControl's budget.
pub fn measure() -> u128 {
    let start = std::time::Instant::now(); //~ D004
    busy();
    start.elapsed().as_millis()
}

/// Stamps output with wall-clock time, breaking replay determinism.
pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now() //~ D004
}

fn busy() {}

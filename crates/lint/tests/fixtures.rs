//! Fixture-based self-tests for the lint passes.
//!
//! Each `tests/fixtures/*.rs` file declares its virtual workspace location
//! in `//@` header comments and its expected findings as `//~ D00x`
//! markers on the offending lines. The harness lexes the fixture exactly
//! as the real driver would (passes, then suppressions, then
//! unused-suppression D000s) and asserts the (lint, line) multiset matches
//! the markers — no more, no less. The fixtures directory itself is
//! excluded from real workspace scans by `model::classify`.

use lint::catalog::{Finding, LintId};
use lint::model::{FileCtx, Role};
use lint::{passes, suppress};
use std::path::{Path, PathBuf};

struct Fixture {
    name: String,
    path: String,
    crate_name: String,
    role: Role,
    src: String,
    /// Expected (lint, 1-based line) pairs, from the `//~` markers.
    expected: Vec<(LintId, u32)>,
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn parse_fixture(name: &str, src: &str) -> Fixture {
    let mut path = None;
    let mut crate_name = None;
    let mut role = Role::Library;
    let mut expected = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        if let Some(rest) = line.trim().strip_prefix("//@") {
            let (key, value) = rest
                .split_once(':')
                .unwrap_or_else(|| panic!("{name}:{lineno}: malformed `//@` header"));
            let value = value.trim().to_string();
            match key.trim() {
                "path" => path = Some(value),
                "crate" => crate_name = Some(value),
                "role" => {
                    role = match value.as_str() {
                        "library" => Role::Library,
                        "test" => Role::Test,
                        "example" => Role::Example,
                        "bench" => Role::Bench,
                        "bin" => Role::Bin,
                        other => panic!("{name}:{lineno}: unknown role `{other}`"),
                    }
                }
                other => panic!("{name}:{lineno}: unknown header `{other}`"),
            }
        }
        if let Some(pos) = line.find("//~") {
            for word in line[pos + 3..].split_whitespace() {
                let id = LintId::parse(word)
                    .unwrap_or_else(|| panic!("{name}:{lineno}: bad marker id `{word}`"));
                expected.push((id, lineno));
            }
        }
    }
    Fixture {
        name: name.to_string(),
        path: path.unwrap_or_else(|| panic!("{name}: missing `//@ path:` header")),
        crate_name: crate_name.unwrap_or_else(|| panic!("{name}: missing `//@ crate:` header")),
        role,
        src: src.to_string(),
        expected,
    }
}

/// Run one fixture through the same per-file pipeline `lint::analyze` uses:
/// passes, suppression application, then unused suppressions as D000s.
fn findings_for(f: &Fixture) -> Vec<(LintId, u32)> {
    let ctx = FileCtx::new(&f.path, &f.crate_name, f.role, &f.src);
    let (mut sups, malformed) = suppress::collect(&ctx);
    let mut findings: Vec<Finding> = malformed;
    findings.extend(suppress::apply(passes::run_all(&ctx), &mut sups));
    for s in &sups {
        if !s.used {
            findings.push(Finding {
                id: LintId::D000,
                file: ctx.path.clone(),
                line: s.comment_line,
                message: "unused suppression".into(),
            });
        }
    }
    let mut out: Vec<(LintId, u32)> = findings.iter().map(|f| (f.id, f.line)).collect();
    out.sort_by_key(|&(id, line)| (line, id));
    out
}

fn load_fixtures() -> Vec<Fixture> {
    let dir = fixtures_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    names
        .iter()
        .map(|n| {
            let src = std::fs::read_to_string(dir.join(n)).expect("read fixture");
            parse_fixture(n, &src)
        })
        .collect()
}

#[test]
fn every_fixture_matches_its_markers() {
    let fixtures = load_fixtures();
    assert!(
        fixtures.len() >= 9,
        "expected the full fixture set, found {}",
        fixtures.len()
    );
    for f in &fixtures {
        let mut expected = f.expected.clone();
        expected.sort_by_key(|&(id, line)| (line, id));
        let got = findings_for(f);
        assert_eq!(
            got, expected,
            "{}: findings disagree with //~ markers\n  got:      {:?}\n  expected: {:?}",
            f.name, got, expected
        );
    }
}

#[test]
fn fixtures_cover_every_lint() {
    let fixtures = load_fixtures();
    let seen: std::collections::BTreeSet<LintId> = fixtures
        .iter()
        .flat_map(|f| f.expected.iter().map(|&(id, _)| id))
        .collect();
    for id in LintId::ALL {
        // The interprocedural lints are exercised by the multi-file
        // groups in `tests/fixtures/semantic/` (see semantic_fixtures.rs).
        if !lint::Mode::Syntactic.is_active(id) {
            continue;
        }
        assert!(
            seen.contains(&id),
            "no fixture exercises {id:?}; add a `//~ {}` case",
            id.name()
        );
    }
}

#[test]
fn fixture_paths_are_invisible_to_real_scans() {
    // The known-bad fixtures live under the one directory `classify`
    // blinds itself to; if that exclusion regresses, every fixture
    // violation becomes workspace debt.
    assert_eq!(
        lint::model::classify("crates/lint/tests/fixtures/d001_hash_order.rs"),
        None
    );
}

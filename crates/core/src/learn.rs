//! Supervised path weighting (paper §3).
//!
//! Each training pair becomes a feature vector of per-path similarities; a
//! linear-kernel SVM learns one weight per path, separately for the set
//! resemblance features and for the random walk features. The learned
//! hyperplane weights are then clamped at zero (unimportant paths "have
//! weights close to zero and can be ignored") and normalized to sum to 1,
//! so weighted similarities keep the scale the `min-sim` threshold is
//! calibrated against.

use serde::{Deserialize, Serialize};
use svm::{train_smo_guarded, Dataset, Kernel, LinearModel, PlattScaler, SmoConfig, SvmError};

/// Per-path weights for both similarity measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathWeights {
    /// Weights applied to per-path set resemblances.
    pub resem: Vec<f64>,
    /// Weights applied to per-path random walk probabilities.
    pub walk: Vec<f64>,
}

impl PathWeights {
    /// Uniform weights over `n` paths (the unsupervised baselines).
    pub fn uniform(n: usize) -> Self {
        let w = if n == 0 {
            Vec::new()
        } else {
            vec![1.0 / n as f64; n]
        };
        PathWeights {
            resem: w.clone(),
            walk: w,
        }
    }

    /// Number of paths.
    pub fn path_count(&self) -> usize {
        self.resem.len()
    }
}

/// Clamp negatives to zero and normalize to sum 1; uniform fallback if
/// everything clamps away.
fn clamp_normalize(weights: &[f64]) -> Vec<f64> {
    let clamped: Vec<f64> = weights.iter().map(|&w| w.max(0.0)).collect();
    let sum: f64 = clamped.iter().sum();
    if sum > 0.0 {
        clamped.into_iter().map(|w| w / sum).collect()
    } else if weights.is_empty() {
        Vec::new()
    } else {
        vec![1.0 / weights.len() as f64; weights.len()]
    }
}

/// A trained weighting model with diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearnedModel {
    /// The final per-path weights used by the pipeline.
    pub weights: PathWeights,
    /// Raw (unscaled-space) resemblance hyperplane, for inspection.
    pub resem_model: LinearModel,
    /// Raw (unscaled-space) walk hyperplane, for inspection.
    pub walk_model: LinearModel,
    /// Training accuracy of the resemblance model.
    pub resem_train_accuracy: f64,
    /// Training accuracy of the walk model.
    pub walk_train_accuracy: f64,
    /// Platt calibration of the resemblance model's decision values:
    /// turns `resem_model.decision(features)` into P(same entity).
    pub resem_platt: PlattScaler,
    /// Platt calibration of the walk model's decision values.
    pub walk_platt: PlattScaler,
}

impl LearnedModel {
    /// Calibrated probability that a pair of references with the given
    /// per-path feature vectors refers to the same entity, combining both
    /// models' calibrated probabilities by geometric mean (consistent with
    /// the clustering composite).
    pub fn pair_probability(&self, resem_features: &[f64], walk_features: &[f64]) -> f64 {
        let pr = self
            .resem_platt
            .probability(self.resem_model.decision(resem_features));
        let pw = self
            .walk_platt
            .probability(self.walk_model.decision(walk_features));
        (pr * pw).sqrt()
    }
}

/// Assemble the two aligned SVM datasets (resemblance rows, walk rows)
/// from featurized training pairs. Rows are pushed **in pair order**, so
/// the datasets — and everything the SMO optimizer derives from them — are
/// independent of how many threads featurized the pairs.
// distinct-lint: allow(D005, reason="bounded by the training-pair cap; train_weights_guarded charges the budget in the SMO loop that follows")
pub fn assemble_datasets(
    features: &[crate::training::PairFeatures],
) -> Result<(Dataset, Dataset), SvmError> {
    let mut resem_data = Dataset::new();
    let mut walk_data = Dataset::new();
    for f in features {
        resem_data.push(f.resem.clone(), f.label)?;
        walk_data.push(f.walk.clone(), f.label)?;
    }
    Ok((resem_data, walk_data))
}

/// Train one linear SVM on a (pair-features, label) dataset and return the
/// hyperplane in original feature space plus its training accuracy.
///
/// Features are scaled by a single **global** factor (the largest feature
/// magnitude in the dataset) rather than per-path standardization:
/// per-path scaling would divide each learned weight by that path's
/// standard deviation, handing near-constant, uninformative paths (a
/// publisher shared by everybody) enormously inflated weights. A global
/// factor preserves the paths' relative scales — exactly what the learned
/// weights must rank — while keeping the optimizer well-conditioned for
/// tiny-magnitude features like walk probabilities.
fn train_one(
    data: &Dataset,
    svm_c: f64,
    seed: u64,
    guard: &mut dyn FnMut(u64) -> bool,
) -> Result<(LinearModel, f64), SvmError> {
    // Scale by the 95th percentile of nonzero magnitudes (not the max): a
    // single outlier pair — e.g. two references on the same paper, walk
    // probability near 1 — would otherwise squash every ordinary feature
    // value toward zero and starve the optimizer.
    let mut magnitudes: Vec<f64> = data
        .iter()
        .flat_map(|(x, _)| x.iter().copied())
        .map(f64::abs)
        .filter(|&v| v > 0.0)
        .collect();
    if magnitudes.is_empty() {
        return Err(SvmError::Degenerate("all pair features are zero".into()));
    }
    magnitudes.sort_by(f64::total_cmp);
    let p95 = magnitudes[(magnitudes.len() - 1) * 95 / 100];
    let scale = 1.0 / p95;
    // Winsorize: when the p95 is many orders of magnitude below the max
    // (walk probabilities can span 1e-30..1), unbounded scaled outliers
    // would overflow the kernel matrix; capping them keeps the optimizer
    // finite and barely moves the hyperplane (only the top tail saturates).
    const CAP: f64 = 100.0;
    let mut scaled = Dataset::new();
    for (x, y) in data.iter() {
        // distinct-lint: allow(D110, reason="each scaled row is an exact-sized buffer moved into the new dataset; winsorizing in place would mutate the caller's training data")
        scaled.push(x.iter().map(|&v| (v * scale).clamp(-CAP, CAP)).collect(), y)?;
    }
    let cfg = SmoConfig {
        c: svm_c,
        seed,
        ..Default::default()
    };
    let kernel_model = train_smo_guarded(&scaled, Kernel::Linear, &cfg, guard)?;
    let accuracy = kernel_model.accuracy(&scaled);
    // distinct-lint: allow(D002, D101, reason="kernel is Kernel::Linear two lines up, and to_linear is total for linear kernels")
    let linear = kernel_model.to_linear().expect("linear kernel collapses");
    // Undo the global scale (a uniform rescaling: relative weights are
    // unchanged, and they are normalized downstream anyway).
    let w: Vec<f64> = linear.weights.iter().map(|&wi| wi * scale).collect();
    Ok((
        LinearModel {
            weights: w,
            bias: linear.bias,
        },
        accuracy,
    ))
}

/// Learn path weights from the two feature datasets (rows aligned:
/// resemblance features and walk features of the same training pairs).
pub fn learn_weights(
    resem_data: &Dataset,
    walk_data: &Dataset,
    svm_c: f64,
    seed: u64,
) -> Result<LearnedModel, SvmError> {
    learn_weights_guarded(resem_data, walk_data, svm_c, seed, &mut |_| true)
}

/// Like [`learn_weights`], but cooperatively interruptible: `guard` is
/// charged per SMO optimization pass (see [`svm::train_smo_guarded`]);
/// tripping it surfaces as [`SvmError::Interrupted`].
pub fn learn_weights_guarded(
    resem_data: &Dataset,
    walk_data: &Dataset,
    svm_c: f64,
    seed: u64,
    guard: &mut dyn FnMut(u64) -> bool,
) -> Result<LearnedModel, SvmError> {
    let (resem_model, resem_acc) = train_one(resem_data, svm_c, seed, guard)?;
    let (walk_model, walk_acc) = train_one(walk_data, svm_c, seed.wrapping_add(1), guard)?;
    let resem_platt = PlattScaler::fit_model(resem_data, |x| resem_model.decision(x))?;
    let walk_platt = PlattScaler::fit_model(walk_data, |x| walk_model.decision(x))?;
    let weights = PathWeights {
        resem: clamp_normalize(&resem_model.weights),
        walk: clamp_normalize(&walk_model.weights),
    };
    Ok(LearnedModel {
        weights,
        resem_model,
        walk_model,
        resem_train_accuracy: resem_acc,
        walk_train_accuracy: walk_acc,
        resem_platt,
        walk_platt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic pair features: path 0 is informative (high for positives),
    /// path 1 is noise, path 2 is anti-informative (high for negatives).
    fn synthetic(n_per: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n_per {
            d.push(
                vec![
                    0.6 + rng.gen_range(-0.2..0.2),
                    rng.gen_range(0.0..1.0),
                    0.1 + rng.gen_range(-0.1..0.1),
                ],
                1.0,
            )
            .unwrap();
            d.push(
                vec![
                    0.1 + rng.gen_range(-0.1..0.1),
                    rng.gen_range(0.0..1.0),
                    0.6 + rng.gen_range(-0.2..0.2),
                ],
                -1.0,
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn uniform_weights() {
        let w = PathWeights::uniform(4);
        assert_eq!(w.path_count(), 4);
        assert!(w.resem.iter().all(|&x| (x - 0.25).abs() < 1e-12));
        assert_eq!(w.resem, w.walk);
        assert!(PathWeights::uniform(0).resem.is_empty());
    }

    #[test]
    fn clamp_normalize_behaviour() {
        let w = clamp_normalize(&[2.0, -1.0, 2.0]);
        assert_eq!(w, vec![0.5, 0.0, 0.5]);
        // All-negative falls back to uniform.
        let w = clamp_normalize(&[-1.0, -2.0]);
        assert_eq!(w, vec![0.5, 0.5]);
        assert!(clamp_normalize(&[]).is_empty());
    }

    #[test]
    fn informative_path_gets_the_weight() {
        let resem = synthetic(120, 1);
        let walk = synthetic(120, 2);
        let m = learn_weights(&resem, &walk, 1.0, 7).unwrap();
        for w in [&m.weights.resem, &m.weights.walk] {
            assert!(w[0] > 0.8, "informative path should dominate: {w:?}");
            assert!(w[1] < 0.15, "noise path should be ignored: {w:?}");
            assert_eq!(w[2], 0.0, "anti-informative path must clamp to zero: {w:?}");
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        assert!(m.resem_train_accuracy > 0.95);
        assert!(m.walk_train_accuracy > 0.95);
    }

    #[test]
    fn learned_model_serializes() {
        let m = learn_weights(&synthetic(40, 3), &synthetic(40, 4), 1.0, 7).unwrap();
        let j = serde_json::to_string(&m).unwrap();
        let back: LearnedModel = serde_json::from_str(&j).unwrap();
        assert_eq!(m.weights, back.weights);
    }

    #[test]
    fn degenerate_data_errors() {
        // Single-class data cannot train.
        let mut d = Dataset::new();
        d.push(vec![1.0], 1.0).unwrap();
        d.push(vec![0.9], 1.0).unwrap();
        assert!(learn_weights(&d, &d, 1.0, 7).is_err());
    }
}

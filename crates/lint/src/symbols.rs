//! Workspace symbol table: every library function definition, indexed
//! for call-site resolution under the crate-dependency constraint.
//!
//! Resolution is a deliberate over-approximation (it must never miss a
//! real edge, or D101's "unreachable" proofs would be unsound):
//!
//! * a method call `recv.name(..)` resolves to **every** function named
//!   `name` — receivers are untyped at the token level;
//! * a path call `a::b::name(..)` resolves to functions named `name`
//!   whose impl type, crate, or module stem matches every path segment;
//! * a bare call `name(..)` prefers same-crate functions, falling back
//!   to the whole dependency closure (for `use`-imported free functions);
//!
//! all three constrained to the caller's *normal* dependency closure:
//! library code in `core` cannot call into `datagen` (a dev-dependency),
//! so `datagen`'s panic sites stay unreachable from `resolve()`.

use crate::graph::{CrateGraph, GraphError};
use crate::model::FileCtx;
use crate::parse::{parse_fns, CallSite, FnDef};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// The parsed workspace: all library functions plus the crate topology
/// facts resolution needs.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Every library (non-fixture) function definition, in file order.
    pub fns: Vec<FnDef>,
    /// Function name → indices into `fns`.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Crate directory name → `[package] name`.
    pub packages: BTreeMap<String, String>,
    /// Crate directory name → transitive normal-dependency closure
    /// (directory names, including the crate itself).
    closures: BTreeMap<String, BTreeSet<String>>,
}

impl Workspace {
    /// Build the symbol table from pre-lexed files plus explicit crate
    /// topology — the constructor fixtures use directly.
    pub fn build(
        ctxs: &[&FileCtx],
        packages: BTreeMap<String, String>,
        closures: BTreeMap<String, BTreeSet<String>>,
    ) -> Workspace {
        let mut fns = Vec::new();
        for ctx in ctxs {
            if ctx.is_library() {
                fns.extend(parse_fns(ctx));
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        Workspace {
            fns,
            by_name,
            packages,
            closures,
        }
    }

    /// Build from the real workspace: crate topology from
    /// [`CrateGraph::load`] plus the root package's own manifest.
    pub fn from_workspace(root: &Path, ctxs: &[FileCtx]) -> Result<Workspace, GraphError> {
        let graph = CrateGraph::load(root)?;
        let mut packages = BTreeMap::new();
        let mut closures = BTreeMap::new();
        for (dir, node) in &graph.nodes {
            packages.insert(dir.clone(), node.package.clone());
            closures.insert(dir.clone(), graph.normal_closure(dir));
        }
        // The root package (crate dir `.`): name and normal deps from the
        // top-level manifest, if it declares a package at all.
        let (root_pkg, root_deps) = root_package(root, &graph)?;
        if let Some(pkg) = root_pkg {
            packages.insert(".".into(), pkg);
        }
        let mut root_closure: BTreeSet<String> = BTreeSet::new();
        root_closure.insert(".".into());
        for dep in root_deps {
            root_closure.extend(graph.normal_closure(&dep));
        }
        closures.insert(".".into(), root_closure);
        let refs: Vec<&FileCtx> = ctxs.iter().collect();
        Ok(Workspace::build(&refs, packages, closures))
    }

    /// Qualified display name: `package::Type::name` (package falls back
    /// to the directory name).
    pub fn qual(&self, i: usize) -> String {
        let f = &self.fns[i];
        let pkg = self
            .packages
            .get(&f.crate_dir)
            .cloned()
            .unwrap_or_else(|| f.crate_dir.clone());
        match &f.impl_type {
            Some(ty) => format!("{pkg}::{ty}::{}", f.name),
            None => format!("{pkg}::{}", f.name),
        }
    }

    /// Whether `target_dir` is inside the caller crate's normal
    /// dependency closure.
    fn in_closure(&self, caller_dir: &str, target_dir: &str) -> bool {
        match self.closures.get(caller_dir) {
            Some(c) => c.contains(target_dir),
            // Unknown crate (scratch workspaces without manifests): only
            // same-crate calls resolve.
            None => caller_dir == target_dir,
        }
    }

    /// Candidate callees for one call site inside `fns[caller]`.
    pub fn resolve(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let caller_dir = self.fns[caller].crate_dir.clone();
        let Some(cands) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        let visible: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| {
                !self.fns[i].is_test && self.in_closure(&caller_dir, &self.fns[i].crate_dir)
            })
            .collect();
        if call.is_method {
            return visible;
        }
        if !call.path.is_empty() {
            return visible
                .into_iter()
                .filter(|&i| {
                    call.path
                        .iter()
                        .all(|seg| self.segment_matches(i, seg, caller))
                })
                .collect();
        }
        // Bare call: same-crate first, dependency closure as fallback.
        let same: Vec<usize> = visible
            .iter()
            .copied()
            .filter(|&i| self.fns[i].crate_dir == caller_dir)
            .collect();
        if !same.is_empty() {
            same
        } else {
            visible
        }
    }

    /// Whether one path segment is consistent with candidate `i`:
    /// `crate`/`self`/`Self` always match; otherwise the segment must
    /// name the candidate's impl type, crate directory, package, or
    /// module file stem.
    fn segment_matches(&self, i: usize, seg: &str, caller: usize) -> bool {
        if matches!(seg, "crate" | "self" | "Self" | "super") {
            // `Self::` must stay inside the caller's impl type when both
            // are known; the cheap approximation is same-file.
            if seg == "Self" {
                let (c, t) = (&self.fns[caller], &self.fns[i]);
                if let (Some(ct), Some(tt)) = (&c.impl_type, &t.impl_type) {
                    return ct == tt;
                }
            }
            return true;
        }
        let f = &self.fns[i];
        if f.impl_type.as_deref() == Some(seg) || f.crate_dir == seg {
            return true;
        }
        if self.packages.get(&f.crate_dir).map(String::as_str) == Some(seg) {
            return true;
        }
        // Module stem: `crates/relstore/src/persist.rs` → `persist`.
        let stem = f
            .file
            .rsplit('/')
            .next()
            .and_then(|n| n.strip_suffix(".rs"))
            .unwrap_or("");
        stem == seg
    }
}

/// Read the root manifest's `[package] name` and workspace-internal
/// `[dependencies]` (directory-name aliases).
fn root_package(
    root: &Path,
    graph: &CrateGraph,
) -> Result<(Option<String>, Vec<String>), GraphError> {
    let path = root.join("Cargo.toml");
    let text = std::fs::read_to_string(&path).map_err(|e| GraphError::Io {
        context: format!("read {}", path.display()),
        reason: e.to_string(),
    })?;
    let mut pkg = None;
    let mut deps = Vec::new();
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') && line.ends_with(']') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let Some((key, val)) = line.split_once('=') else {
            continue;
        };
        let (key, val) = (key.trim(), val.trim());
        if section == "package" && key == "name" {
            pkg = Some(val.trim_matches('"').to_string());
        }
        if section == "dependencies" {
            let dep = key.split('.').next().unwrap_or(key).to_string();
            if graph.nodes.contains_key(&dep) && !deps.contains(&dep) {
                deps.push(dep);
            }
        }
    }
    Ok((pkg, deps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FileCtx, Role};

    fn two_crate_ws() -> (Vec<FileCtx>, Workspace) {
        let a = FileCtx::new(
            "crates/core/src/pipeline.rs",
            "core",
            Role::Library,
            "impl Distinct {\n pub fn resolve(&self) { self.deep(); helper(); relgraph::walk::go(1); }\n fn deep(&self) {}\n}\nfn helper() {}\n",
        );
        let b = FileCtx::new(
            "crates/relgraph/src/walk.rs",
            "relgraph",
            Role::Library,
            "pub fn go(n: u32) { x.unwrap(); }\n",
        );
        let c = FileCtx::new(
            "crates/datagen/src/world.rs",
            "datagen",
            Role::Library,
            "pub fn go(n: u32) { panic!(\"boom\"); }\n",
        );
        let ctxs = vec![a, b, c];
        let refs: Vec<&FileCtx> = ctxs.iter().collect();
        let mut packages = BTreeMap::new();
        packages.insert("core".to_string(), "distinct".to_string());
        let mut closures = BTreeMap::new();
        let cl = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<BTreeSet<_>>();
        closures.insert("core".into(), cl(&["core", "relgraph"]));
        closures.insert("relgraph".into(), cl(&["relgraph"]));
        closures.insert("datagen".into(), cl(&["datagen"]));
        let ws = Workspace::build(&refs, packages, closures);
        (ctxs, ws)
    }

    #[test]
    fn resolution_respects_dependency_closure() {
        let (_ctxs, ws) = two_crate_ws();
        let resolve = ws.fns.iter().position(|f| f.name == "resolve").unwrap();
        let call_go = ws.fns[resolve]
            .facts
            .calls
            .iter()
            .find(|c| c.name == "go")
            .unwrap()
            .clone();
        let targets = ws.resolve(resolve, &call_go);
        // Only the relgraph `go` — datagen is outside the closure.
        assert_eq!(targets.len(), 1, "{targets:?}");
        assert_eq!(ws.fns[targets[0]].crate_dir, "relgraph");
    }

    #[test]
    fn method_and_bare_calls_resolve() {
        let (_ctxs, ws) = two_crate_ws();
        let resolve = ws.fns.iter().position(|f| f.name == "resolve").unwrap();
        let deep = ws.fns[resolve]
            .facts
            .calls
            .iter()
            .find(|c| c.name == "deep")
            .unwrap()
            .clone();
        assert_eq!(ws.resolve(resolve, &deep).len(), 1);
        let helper = ws.fns[resolve]
            .facts
            .calls
            .iter()
            .find(|c| c.name == "helper")
            .unwrap()
            .clone();
        assert_eq!(ws.resolve(resolve, &helper).len(), 1);
    }

    #[test]
    fn qual_uses_package_name() {
        let (_ctxs, ws) = two_crate_ws();
        let resolve = ws.fns.iter().position(|f| f.name == "resolve").unwrap();
        assert_eq!(ws.qual(resolve), "distinct::Distinct::resolve");
        let go = ws
            .fns
            .iter()
            .position(|f| f.name == "go" && f.crate_dir == "relgraph")
            .unwrap();
        assert_eq!(ws.qual(go), "relgraph::go");
    }
}

//! Configuration of the DISTINCT pipeline.

use serde::{Deserialize, Serialize};

/// Which similarity measure(s) drive clustering (Fig. 4's axis 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MeasureMode {
    /// Geometric combination of set resemblance and random walk (DISTINCT).
    Combined,
    /// Set resemblance only (the approach of Bhattacharya & Getoor \[1\]).
    SetResemblance,
    /// Random walk probability only (the approach of Kalashnikov et al. \[9\]).
    RandomWalk,
}

/// How join paths are weighted (Fig. 4's axis 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WeightingMode {
    /// SVM-learned weights from the automatically constructed training set.
    Supervised,
    /// Every join path weighted equally (the unsupervised baselines).
    Uniform,
}

/// How the two cluster-level measures are composed (ablation A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompositeMode {
    /// Geometric mean — the paper's choice: neither measure's scale can
    /// drown the other.
    Geometric,
    /// Arithmetic mean — the ablation alternative.
    Arithmetic,
}

/// Configuration of automatic training-set construction (paper §3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Target number of positive example pairs (paper: 1000).
    pub positives: usize,
    /// Target number of negative example pairs (paper: 1000).
    pub negatives: usize,
    /// A first name is "rare" if at most this many authors carry it.
    pub max_first_name_freq: usize,
    /// A last name is "rare" if at most this many authors carry it.
    pub max_last_name_freq: usize,
    /// Sampling seed.
    pub seed: u64,
    /// Soft-margin penalty for the SVM.
    pub svm_c: f64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            positives: 1000,
            negatives: 1000,
            max_first_name_freq: 3,
            max_last_name_freq: 3,
            seed: 17,
            svm_c: 1.0,
        }
    }
}

/// Full DISTINCT configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistinctConfig {
    /// Maximum join-path length enumerated from the reference relation
    /// (4 covers every semantic path of the DBLP schema: coauthors,
    /// conferences, publishers, years).
    pub max_path_len: usize,
    /// Clustering stops when the best cluster-pair similarity drops below
    /// this.
    ///
    /// The paper fixes min-sim = 0.0005 under its (unnormalized) SVM
    /// weight scale. This implementation normalizes the learned path
    /// weights to sum to 1, which changes the similarity scale; the
    /// equivalent calibrated default here is 0.005 (see EXPERIMENTS.md).
    pub min_sim: f64,
    /// Similarity measure(s) in use.
    pub measure: MeasureMode,
    /// Path weighting in use.
    pub weighting: WeightingMode,
    /// Cluster-level composition of the two measures.
    pub composite: CompositeMode,
    /// Treat attribute values as pseudo-tuples before analysis (§2.1).
    pub expand_attributes: bool,
    /// Worker threads for the parallel stages (profile fan-out, pairwise
    /// similarity matrix, training-pair featurization). `0` means "auto":
    /// the `DISTINCT_THREADS` environment variable if set, else one worker
    /// per available core. `1` forces sequential execution. Output is
    /// identical for every value; only wall-clock time changes. A
    /// per-request override (`ResolveRequest::threads`) takes precedence.
    pub threads: usize,
    /// Training-set construction parameters.
    pub training: TrainingConfig,
}

impl Default for DistinctConfig {
    fn default() -> Self {
        DistinctConfig {
            max_path_len: 4,
            min_sim: 0.005,
            measure: MeasureMode::Combined,
            weighting: WeightingMode::Supervised,
            composite: CompositeMode::Geometric,
            expand_attributes: true,
            threads: 0,
            training: TrainingConfig::default(),
        }
    }
}

impl DistinctConfig {
    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_path_len == 0 {
            return Err("max_path_len must be >= 1".into());
        }
        if !self.min_sim.is_finite() || self.min_sim < 0.0 {
            return Err("min_sim must be finite and >= 0".into());
        }
        if self.training.svm_c <= 0.0 {
            return Err("svm_c must be > 0".into());
        }
        if self.training.positives == 0 || self.training.negatives == 0 {
            return Err("training set needs both positives and negatives".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DistinctConfig::default();
        assert_eq!(c.min_sim, 0.005); // paper's 0.0005, recalibrated (see docs)
        assert_eq!(c.training.positives, 1000);
        assert_eq!(c.training.negatives, 1000);
        assert_eq!(c.measure, MeasureMode::Combined);
        assert_eq!(c.weighting, WeightingMode::Supervised);
        assert_eq!(c.composite, CompositeMode::Geometric);
        assert!(c.expand_attributes);
        assert_eq!(c.threads, 0, "auto-sized parallelism by default");
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = DistinctConfig::default();
        c.max_path_len = 0;
        assert!(c.validate().is_err());

        let mut c = DistinctConfig::default();
        c.min_sim = -0.1;
        assert!(c.validate().is_err());

        let mut c = DistinctConfig::default();
        c.min_sim = f64::NAN;
        assert!(c.validate().is_err());

        let mut c = DistinctConfig::default();
        c.training.svm_c = 0.0;
        assert!(c.validate().is_err());

        let mut c = DistinctConfig::default();
        c.training.positives = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_round_trips_through_json() {
        let c = DistinctConfig::default();
        let j = serde_json::to_string(&c).unwrap();
        let back: DistinctConfig = serde_json::from_str(&j).unwrap();
        assert_eq!(c, back);
    }
}

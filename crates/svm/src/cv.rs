//! K-fold cross-validation utilities.

use crate::data::{Dataset, Result, SvmError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministic k-fold split: returns `k` disjoint index sets covering
/// `0..n`, after a seeded shuffle. Fold sizes differ by at most one.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Result<Vec<Vec<usize>>> {
    if k < 2 {
        return Err(SvmError::BadParameter {
            name: "k",
            reason: "need k >= 2 folds".into(),
        });
    }
    if n < k {
        return Err(SvmError::Degenerate(format!(
            "{n} samples cannot fill {k} folds"
        )));
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds = vec![Vec::with_capacity(n / k + 1); k];
    for (i, v) in idx.into_iter().enumerate() {
        folds[i % k].push(v);
    }
    Ok(folds)
}

/// Cross-validate a training procedure: `train` gets a training subset and
/// returns a scoring closure; the returned vector holds per-fold accuracy.
pub fn cross_validate<F, M>(data: &Dataset, k: usize, seed: u64, train: F) -> Result<Vec<f64>>
where
    F: Fn(&Dataset) -> Result<M>,
    M: Fn(&[f64]) -> f64, // predicted label for a feature vector
{
    let folds = kfold_indices(data.len(), k, seed)?;
    let mut accs = Vec::with_capacity(k);
    for test_fold in 0..k {
        let train_idx: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != test_fold)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        let model = train(&data.subset(&train_idx))?;
        let test = &folds[test_fold];
        let correct = test
            .iter()
            .filter(|&&i| model(data.x(i)) == data.y(i))
            .count();
        accs.push(correct as f64 / test.len() as f64);
    }
    Ok(accs)
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use crate::smo::{train_smo, SmoConfig};
    use rand::Rng;

    #[test]
    fn folds_partition_the_index_space() {
        let folds = kfold_indices(10, 3, 42).unwrap();
        assert_eq!(folds.len(), 3);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        // Balanced: sizes 4, 3, 3.
        let mut sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3, 4]);
    }

    #[test]
    fn folds_are_deterministic_per_seed() {
        assert_eq!(
            kfold_indices(20, 4, 1).unwrap(),
            kfold_indices(20, 4, 1).unwrap()
        );
        assert_ne!(
            kfold_indices(20, 4, 1).unwrap(),
            kfold_indices(20, 4, 2).unwrap()
        );
    }

    #[test]
    fn degenerate_folds_rejected() {
        assert!(kfold_indices(10, 1, 0).is_err());
        assert!(kfold_indices(2, 3, 0).is_err());
    }

    #[test]
    fn cross_validation_on_separable_data() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut d = Dataset::new();
        for _ in 0..30 {
            d.push(vec![1.0 + rng.gen_range(-0.3..0.3)], 1.0).unwrap();
            d.push(vec![-1.0 + rng.gen_range(-0.3..0.3)], -1.0).unwrap();
        }
        let accs = cross_validate(&d, 5, 1, |train| {
            let m = train_smo(train, Kernel::Linear, &SmoConfig::default())?;
            Ok(move |x: &[f64]| m.predict(x))
        })
        .unwrap();
        assert_eq!(accs.len(), 5);
        assert!(mean(&accs) > 0.95, "accs {accs:?}");
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }
}

//! # oracle — reference implementations for differential testing
//!
//! Slow, dependency-free, transparently-literal implementations of the
//! four numeric pillars of DISTINCT (Yin, Han, Yu, *Object Distinction*,
//! ICDE 2007), written straight from the paper's formulas with no
//! caching, no parallelism, no incremental maintenance, and no hash-map
//! iteration order anywhere near a floating-point sum:
//!
//! 1. **Connection-strength propagation** (§2.2) — [`propagate`]
//!    enumerates every individual walk along a join path and sums
//!    `Π 1/fanout` per end tuple, instead of the production level-by-level
//!    frontier propagation.
//! 2. **Weighted set resemblance** (Definition 2) — [`resemblance`]
//!    computes `Σ min / Σ max` over the explicit union of both supports,
//!    instead of the production `Σmin / (totalA + totalB − Σmin)`
//!    rearrangement.
//! 3. **Random-walk probability** (§2.4) — [`walk`] computes
//!    `Walk_P(a→b) = Σ_t Prob_P(a→t) · Prob_P(t→b)` term by term in
//!    deterministic key order.
//! 4. **Composite agglomerative clustering** (§4) — [`cluster`] rescans
//!    every live cluster pair each round and recomputes cluster
//!    similarities from scratch over the member lists (O(n³) and worse),
//!    instead of the production lazy max-heap over incrementally
//!    maintained pair sums.
//!
//! The only crates this one touches are `relstore` (the data substrate
//! under test is relational, so the oracle must read the same tuples),
//! `datagen` (to regenerate the golden corpus), and the vendored `serde`
//! pair (to serialize it). None of the production analysis crates
//! (`relgraph`, `cluster`, `distinct`) appear, so a bug there cannot
//! cancel itself out here.
//!
//! All maps are `BTreeMap<TupleRef, f64>`: every summation happens in
//! tuple order, making each oracle value a deterministic function of the
//! catalog alone. The production engine agrees with the oracle to within
//! `1e-9` per pair (see DESIGN.md §11 for the tolerance argument), and
//! the differential suite in `tests/oracle_differential.rs` holds it
//! there.

#![warn(missing_docs)]

pub mod cluster;
pub mod engine;
pub mod golden;
pub mod paths;
pub mod profile;
pub mod propagate;
pub mod resemblance;
pub mod walk;

pub use cluster::{naive_agglomerate, OracleClustering, OracleMerge};
pub use engine::{Composite, Measure, OracleEngine, OraclePairwise};
pub use golden::{compute_case, golden_cases, GoldenCase, GoldenGroup, GoldenMerge};
pub use paths::select_paths;
pub use profile::{build_profile, OracleProfile};
pub use propagate::{enumerate_propagation, Mass, OraclePropagation};
pub use resemblance::weighted_jaccard;
pub use walk::directed_walk;

//! # object-distinction — facade crate
//!
//! A from-scratch Rust reproduction of **DISTINCT** (Yin, Han, Yu:
//! *Object Distinction — Distinguishing Objects with Identical Names*,
//! ICDE 2007). This crate re-exports the whole workspace so downstream
//! users can depend on one name; the repository's examples and
//! integration tests do exactly that.
//!
//! * [`exec`] — the deterministic scoped thread pool behind the parallel
//!   pipeline stages (thread-count selection, `DISTINCT_THREADS`);
//! * [`relstore`] — the in-memory relational database substrate;
//! * [`relgraph`] — probability propagation and random-walk machinery;
//! * [`svm`] — the from-scratch SVM library (SMO, Pegasos, Platt, CV);
//! * [`cluster`] — the agglomerative clustering engine and constraints;
//! * [`datagen`] — the synthetic DBLP-schema world generator;
//! * [`eval`] — pairwise / B³ / ARI metrics, confusion analysis, tables;
//! * [`distinct`] — the paper's methodology: the [`distinct::Distinct`]
//!   engine (prepare → train → resolve), variants, calibration, and
//!   whole-database resolution.
//!
//! ```no_run
//! use distinct::{Distinct, DistinctConfig, ResolveRequest};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let catalog = relstore::Catalog::new();
//! let mut engine = Distinct::prepare(&catalog, "Publish", "author", DistinctConfig::default())?;
//! engine.train()?;
//! let refs = engine.references_of("Wei Wang");
//! let outcome = engine.resolve(&ResolveRequest::new(&refs));
//! println!("{} references -> {} people", refs.len(), outcome.clustering.cluster_count());
//! # Ok(()) }
//! ```

#![warn(missing_docs)]

pub use cluster;
pub use datagen;
pub use distinct;
pub use eval;
pub use exec;
pub use relgraph;
pub use relstore;
pub use svm;

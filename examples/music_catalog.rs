//! The paper's *other* motivating example: "there are 72 songs and 3
//! albums named Forgotten in allmusic.com". This example shows DISTINCT is
//! schema-agnostic: a completely different relational schema (recordings,
//! albums, artists, labels) with recordings that share one title, resolved
//! with the same engine.
//!
//! Schema:
//! ```text
//! Titles(title KEY)
//! Artists(artist KEY, country)
//! Labels(label KEY)
//! Albums(album KEY, artist -> Artists, label -> Labels, year)
//! Recordings(title -> Titles, album -> Albums)    <- the references
//! ```
//!
//! Two recordings of "Forgotten" are the *same song* when the same artist
//! recorded it (possibly on several albums); different artists' "Forgotten"s
//! are different songs. Linkage through albums, artists, and labels is what
//! separates them — exactly the paper's method, different domain.
//!
//! Run: `cargo run --release --example music_catalog`

use distinct::{Distinct, DistinctConfig, TrainingConfig, WeightingMode};
use eval::PairCounts;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relstore::{AttrType, Catalog, SchemaBuilder, Value};

struct MusicWorld {
    catalog: Catalog,
    /// Ground truth: (recording tuple, song id) for the ambiguous title.
    truth: Vec<(relstore::TupleRef, usize)>,
}

/// Build a synthetic music catalog with several distinct songs that share
/// the title "Forgotten".
fn build_music_world(seed: u64) -> MusicWorld {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Catalog::new();
    c.add_relation(
        SchemaBuilder::new("Titles")
            .key("title", AttrType::Str)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.add_relation(
        SchemaBuilder::new("Artists")
            .key("artist", AttrType::Str)
            .data("country", AttrType::Str)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.add_relation(
        SchemaBuilder::new("Labels")
            .key("label", AttrType::Str)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.add_relation(
        SchemaBuilder::new("Albums")
            .key("album", AttrType::Str)
            .fk("artist", AttrType::Str, "Artists")
            .fk("label", AttrType::Str, "Labels")
            .data("year", AttrType::Int)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.add_relation(
        SchemaBuilder::new("Recordings")
            .fk("title", AttrType::Str, "Titles")
            .fk("album", AttrType::Str, "Albums")
            .build()
            .unwrap(),
    )
    .unwrap();

    const COUNTRIES: &[&str] = &["US", "UK", "DE", "JP", "SE"];
    for l in ["Sub Pop", "4AD", "Matador", "Warp", "Domino", "Merge"] {
        c.insert("Labels", [Value::str(l)].into()).unwrap();
    }

    let n_artists = 60usize;
    let mut artist_label: Vec<usize> = Vec::new();
    for a in 0..n_artists {
        c.insert(
            "Artists",
            [
                Value::str(format!("Artist-{a:02}")),
                Value::str(COUNTRIES[a % COUNTRIES.len()]),
            ]
            .into(),
        )
        .unwrap();
        artist_label.push(rng.gen_range(0..6));
    }
    const LABELS: &[&str] = &["Sub Pop", "4AD", "Matador", "Warp", "Domino", "Merge"];

    // Every artist releases 2-4 albums on (mostly) their home label.
    let mut albums_of: Vec<Vec<String>> = vec![Vec::new(); n_artists];
    for a in 0..n_artists {
        for k in 0..rng.gen_range(2..=4) {
            let album = format!("Album-{a:02}-{k}");
            let label = if rng.gen::<f64>() < 0.8 {
                LABELS[artist_label[a]]
            } else {
                LABELS[rng.gen_range(0..LABELS.len())]
            };
            c.insert(
                "Albums",
                [
                    Value::str(&album),
                    Value::str(format!("Artist-{a:02}")),
                    Value::str(label),
                    Value::Int(1990 + rng.gen_range(0..25)),
                ]
                .into(),
            )
            .unwrap();
            albums_of[a].push(album);
        }
    }

    // Unique titles: each artist records plenty of uniquely-titled songs
    // (appearing on 2-3 of their albums: original + compilation), which the
    // automatic training-set construction will discover.
    let mut title_id = 0usize;
    let mut recordings: Vec<(String, String)> = Vec::new(); // (title, album)
    for a in 0..n_artists {
        for _ in 0..6 {
            let title = format!("Song Unique {title_id}");
            title_id += 1;
            c.insert("Titles", [Value::str(&title)].into()).unwrap();
            let n_appearances = rng.gen_range(2..=3).min(albums_of[a].len());
            for k in 0..n_appearances {
                recordings.push((title.clone(), albums_of[a][k].clone()));
            }
        }
    }

    // The ambiguous title: 5 different songs called "Forgotten", by 5
    // different artists, each appearing on several of that artist's albums.
    c.insert("Titles", [Value::str("Forgotten")].into())
        .unwrap();
    let mut ambiguous: Vec<(String, usize)> = Vec::new(); // (album, song id)
    for (song, &artist) in [3usize, 17, 29, 41, 55].iter().enumerate() {
        for album in albums_of[artist].iter().take(3) {
            ambiguous.push((album.clone(), song));
        }
    }

    // Insert recordings; remember the ambiguous tuples.
    for (title, album) in &recordings {
        c.insert("Recordings", [Value::str(title), Value::str(album)].into())
            .unwrap();
    }
    let mut truth = Vec::new();
    for (album, song) in &ambiguous {
        let t = c
            .insert(
                "Recordings",
                [Value::str("Forgotten"), Value::str(album)].into(),
            )
            .unwrap();
        truth.push((t, *song));
    }
    c.finalize(true).unwrap();
    MusicWorld { catalog: c, truth }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = build_music_world(11);
    println!(
        "music catalog: {} recordings across {} albums",
        world
            .catalog
            .relation(world.catalog.relation_id("Recordings").unwrap())
            .len(),
        world
            .catalog
            .relation(world.catalog.relation_id("Albums").unwrap())
            .len(),
    );

    // Titles are single tokens here, so the name-based rare-name filter
    // does not apply; "unique titles" are identified the same way (titles
    // with small frequency) via uniform weighting. We run the unsupervised
    // combined measure — the schema-agnostic core of the method.
    let config = DistinctConfig {
        weighting: WeightingMode::Uniform,
        min_sim: 0.05,
        training: TrainingConfig {
            positives: 2,
            negatives: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let engine = Distinct::prepare(&world.catalog, "Recordings", "title", config)?;
    println!("join paths from Recordings: {}", engine.paths().len());

    let refs: Vec<_> = world.truth.iter().map(|&(r, _)| r).collect();
    let gold: Vec<usize> = world.truth.iter().map(|&(_, s)| s).collect();
    let clustering = engine
        .resolve(&distinct::ResolveRequest::new(&refs))
        .clustering;
    let counts = PairCounts::from_labels(&gold, &clustering.labels);
    let s = counts.scores();
    println!(
        "\n\"Forgotten\": {} recordings -> {} songs (truth: {}); p {:.3}, r {:.3}, f {:.3}",
        refs.len(),
        clustering.cluster_count(),
        gold.iter().max().unwrap() + 1,
        s.precision,
        s.recall,
        s.f_measure
    );
    for (label, group) in clustering.groups().iter().enumerate() {
        print!("  song {label}:");
        for &i in group {
            let album = engine.catalog().value(refs[i], 1);
            print!(" {album}");
        }
        println!();
    }
    assert!(s.f_measure > 0.9, "music scenario should resolve cleanly");
    Ok(())
}

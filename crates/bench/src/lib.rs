//! # distinct-bench — experiment harness
//!
//! Shared plumbing for the `exp_*` binaries that regenerate every table
//! and figure of the paper, and for the Criterion performance benches.
//! See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.

#![warn(missing_docs)]

pub mod harness;
pub mod meter;

pub use meter::{metering_enabled, AllocSnapshot, CountingAlloc};

pub use harness::{
    build_dataset, evaluate_name, mean_accuracy, mean_f, standard_world_config, sweep_best_min_sim,
    variant_engine, NameResult, PaperRow, PAPER_FIG4, PAPER_TABLE2, STANDARD_SEED,
};

use std::fmt;

/// A fatal error in an experiment binary, naming the binary and the
/// pipeline stage that failed — the typed replacement for the bare
/// `unwrap()`/`expect()` exits the `exp_*` and `bench_*` mains used to
/// take. `main() -> Result<(), BenchError>` renders it through the
/// [`fmt::Debug`] impl below, which delegates to [`fmt::Display`] so the
/// process exit message reads as one plain sentence.
pub struct BenchError {
    /// The binary that failed (`exp_timing`, `bench_ladder`, ...).
    pub bin: &'static str,
    /// The stage that failed (`locate the Publications relation`, ...).
    pub stage: &'static str,
    /// What went wrong, from the underlying error when there is one.
    pub detail: String,
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} failed: {}", self.bin, self.stage, self.detail)
    }
}

impl fmt::Debug for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for BenchError {}

/// Attach binary/stage context while converting an `Option` or a
/// `Result` into `Result<T, BenchError>`.
pub trait StageContext<T> {
    /// Name the binary and stage this value was needed for.
    fn stage(self, bin: &'static str, stage: &'static str) -> Result<T, BenchError>;
}

impl<T> StageContext<T> for Option<T> {
    fn stage(self, bin: &'static str, stage: &'static str) -> Result<T, BenchError> {
        self.ok_or(BenchError {
            bin,
            stage,
            detail: "required value was missing".into(),
        })
    }
}

impl<T, E: fmt::Display> StageContext<T> for Result<T, E> {
    fn stage(self, bin: &'static str, stage: &'static str) -> Result<T, BenchError> {
        self.map_err(|e| BenchError {
            bin,
            stage,
            detail: e.to_string(),
        })
    }
}

//! Offline drop-in subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free API: `lock`
//! returns the guard directly, and a panic while holding the lock does not
//! poison it for later users.

#![warn(missing_docs)]

use std::sync;

/// A mutual exclusion primitive (poison-free `lock()`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Whether the mutex is currently held (by anyone). Advisory only —
    /// the answer can be stale by the time the caller acts on it — but
    /// exact in the negative direction for a thread that itself holds no
    /// guard, which is what lock-scope assertions need.
    pub fn is_locked(&self) -> bool {
        match self.0.try_lock() {
            Ok(_) => false,
            Err(sync::TryLockError::Poisoned(_)) => false,
            Err(sync::TryLockError::WouldBlock) => true,
        }
    }
}

/// A reader-writer lock (poison-free `read()`/`write()`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}

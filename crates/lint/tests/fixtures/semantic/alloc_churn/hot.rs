//@ path: crates/core/src/hot.rs
//@ crate: core
//! Fixture: D110 hot-loop allocation and D111 read-only clones.
//! `batch_features` charges the budget and then allocates three ways on
//! every iteration; `batch_features_sized` is the disciplined twin
//! (capacity hints and a hoisted, cleared buffer); `first_bad` builds
//! its error message on a cold `return` path, which is never
//! per-iteration churn; `labels` allocates in a loop but never charges,
//! so D110 does not apply. On the copy side, `snapshot_len` clones a
//! place and only ever reads the copy (D111), while `bump_all`,
//! `take_rows`, and `joined_rows` mutate, move, or nest the clone in
//! another call's arguments — each justifies itself.

/// Charged featurization: every iteration allocates afresh.
pub fn batch_features(ctl: &Ctl, rows: &[Row]) -> usize {
    ctl.charge(rows.len() as u64);
    let mut total = 0;
    for row in rows {
        let owned: Vec<u32> = row.ids.iter().copied().collect(); //~ D110
        let label = format!("row-{}", row.id); //~ D110
        let mut acc = Vec::new(); //~ D110
        for &v in &owned {
            acc.push(v);
        }
        total += acc.len() + label.len();
    }
    total
}

/// Disciplined twin: sized buffers and a hoisted, cleared accumulator.
pub fn batch_features_sized(ctl: &Ctl, rows: &[Row]) -> usize {
    ctl.charge(rows.len() as u64);
    let mut total = 0;
    let mut acc = Vec::new();
    for row in rows {
        let mut owned: Vec<u32> = Vec::with_capacity(row.ids.len());
        owned.extend(row.ids.iter().copied());
        acc.clear();
        for &v in &owned {
            acc.push(v);
        }
        total += acc.len();
    }
    total
}

/// Early exits may build their error message: a `return` statement runs
/// at most once per call, so this is never per-iteration churn.
pub fn first_bad(ctl: &Ctl, rows: &[Row]) -> Result<(), String> {
    ctl.charge(rows.len() as u64);
    for row in rows {
        if row.id == 0 {
            return Err(format!("zero id at offset {}", row.off));
        }
    }
    Ok(())
}

/// Never charges the budget, so its loop is not a charge-guarded hot
/// path and D110 stays quiet.
pub fn labels(rows: &[Row]) -> Vec<String> {
    let mut out = Vec::new();
    for row in rows {
        out.push(format!("r{}", row.id));
    }
    out
}

/// A saved query over row ids: clone-discipline cases live here.
pub struct Query {
    rows: Vec<u32>,
    limit: usize,
}

impl Query {
    /// The clone is only ever read afterwards: a borrow would do.
    fn snapshot_len(&self) -> usize {
        let copy = self.rows.clone(); //~ D111
        let mut n = 0;
        for v in &copy {
            n += *v as usize;
        }
        n
    }

    /// Mutated after the copy: the clone earns its keep.
    fn bump_all(&self) -> Vec<u32> {
        let mut copy = self.rows.clone();
        for v in copy.iter_mut() {
            *v += 1;
        }
        copy
    }

    /// Moved into the result: not a read-only clone.
    fn take_rows(&self) -> Vec<u32> {
        let copy = self.rows.clone();
        copy
    }

    /// A clone nested in another call's arguments is not the binding's
    /// own value; the callee owns (and here truncates) it.
    fn joined_rows(&self) -> Vec<u32> {
        let joined = cap(self.rows.clone(), self.limit);
        joined
    }
}

fn cap(mut rows: Vec<u32>, limit: usize) -> Vec<u32> {
    rows.truncate(limit);
    rows
}

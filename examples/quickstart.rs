//! Quickstart: build a small relational database by hand, point DISTINCT
//! at the references, and split two "J. Lee"s apart.
//!
//! Run: `cargo run --release --example quickstart`

use distinct::{Distinct, DistinctConfig, TrainingConfig, WeightingMode};
use relstore::{AttrType, Catalog, SchemaBuilder, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A tiny bibliographic database (the paper's Fig. 2 schema,
    //        minus proceedings for brevity). -------------------------------
    let mut db = Catalog::new();
    db.add_relation(
        SchemaBuilder::new("Authors")
            .key("author", AttrType::Str)
            .build()?,
    )?;
    db.add_relation(
        SchemaBuilder::new("Venues")
            .key("venue", AttrType::Str)
            .build()?,
    )?;
    db.add_relation(
        SchemaBuilder::new("Papers")
            .key("paper", AttrType::Int)
            .fk("venue", AttrType::Str, "Venues")
            .build()?,
    )?;
    db.add_relation(
        SchemaBuilder::new("Publish")
            .fk("author", AttrType::Str, "Authors")
            .fk("paper", AttrType::Int, "Papers")
            .build()?,
    )?;

    for venue in ["VLDB", "SIGGRAPH"] {
        db.insert("Venues", [Value::str(venue)].into())?;
    }
    // Two different people named "J. Lee": a database researcher who writes
    // with Ada and Bob at VLDB, and a graphics researcher who writes with
    // Carol and Dan at SIGGRAPH.
    let authors = [
        "J. Lee",
        "Ada",
        "Bob",
        "Carol",
        "Dan",
        "Rare Solo",
        "Other Unique",
    ];
    for a in authors {
        db.insert("Authors", [Value::str(a)].into())?;
    }
    // paper id, venue, byline
    let papers: &[(i64, &str, &[&str])] = &[
        (1, "VLDB", &["J. Lee", "Ada"]),
        (2, "VLDB", &["J. Lee", "Bob"]),
        (3, "VLDB", &["Ada", "Bob"]),
        (4, "SIGGRAPH", &["J. Lee", "Carol"]),
        (5, "SIGGRAPH", &["J. Lee", "Dan"]),
        (6, "SIGGRAPH", &["Carol", "Dan"]),
        // References that make "Rare Solo" / "Other Unique" usable as
        // automatic training examples (unique names with >= 2 papers).
        (7, "VLDB", &["Rare Solo", "Ada"]),
        (8, "VLDB", &["Rare Solo", "Bob"]),
        (9, "SIGGRAPH", &["Other Unique", "Carol"]),
        (10, "SIGGRAPH", &["Other Unique", "Dan"]),
    ];
    for &(id, venue, byline) in papers {
        db.insert("Papers", [Value::Int(id), Value::str(venue)].into())?;
        for a in byline {
            db.insert("Publish", [Value::str(*a), Value::Int(id)].into())?;
        }
    }

    // --- 2. Prepare DISTINCT over the references (Publish.author). --------
    // This toy database is too small for the full supervised pipeline to
    // have anything to learn from, so we run the unsupervised variant; see
    // the other examples for supervised runs on realistic data.
    let config = DistinctConfig {
        weighting: WeightingMode::Uniform,
        min_sim: 0.01,
        training: TrainingConfig {
            positives: 2,
            negatives: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    let engine = Distinct::prepare(&db, "Publish", "author", config)?;
    println!("analyzing {} join paths:", engine.paths().len());
    for d in &engine.paths().descriptions {
        println!("  {d}");
    }

    // --- 3. Resolve the ambiguous name. ------------------------------------
    let refs = engine.references_of("J. Lee");
    let clustering = engine
        .resolve(&distinct::ResolveRequest::new(&refs))
        .clustering;
    println!(
        "\n\"J. Lee\" has {} references -> {} distinct people:",
        refs.len(),
        clustering.cluster_count()
    );
    for (label, group) in clustering.groups().iter().enumerate() {
        print!("  person {label}: papers");
        for &i in group {
            let paper = engine.catalog().value(refs[i], 1);
            print!(" {paper}");
        }
        println!();
    }
    assert_eq!(
        clustering.cluster_count(),
        2,
        "the two J. Lees must separate"
    );
    Ok(())
}

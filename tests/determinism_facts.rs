//! Cross-check between the static shared-state registry (lint D108) and
//! the dynamic determinism suite.
//!
//! The analyzer proves, file by file, which interior-mutability cells are
//! reachable from the resolve/train spine and requires each to declare a
//! merge discipline. This suite closes the loop from the other side:
//! the production caches must actually be in the registry, every
//! reachable cell must live in a crate the 1/2/8-thread bit-identity
//! runs exercise, and a fanout over those very cells must stay
//! bit-identical — so a cell that the static analysis missed or a
//! discipline that stopped holding both show up as a failure here.

use datagen::{to_catalog, AmbiguousSpec, World, WorldConfig};
use distinct::{Distinct, DistinctConfig, ResolveRequest, TrainRequest, TrainingConfig};
use lint::callgraph::CallGraph;
use lint::concur::{self, ConcurFacts};
use lint::symbols::Workspace;
use std::path::Path;

fn registry() -> ConcurFacts {
    let root =
        lint::workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let ctxs = lint::workspace::collect_files(&root).expect("scan workspace");
    let ws = Workspace::from_workspace(&root, &ctxs).expect("symbol table");
    let graph = CallGraph::build(ws);
    concur::collect_facts(&graph, &ctxs)
}

/// The two production caches the resolve spine leans on must be in the
/// registry, reachable, and carrying the disciplines their concurrency
/// story depends on.
#[test]
fn production_caches_are_registered_with_their_disciplines() {
    let facts = registry();
    assert!(!facts.cells.is_empty(), "registry must not be empty");

    let cell = |owner: &str, field: &str| {
        facts
            .cells
            .iter()
            .find(|c| c.owner == owner && c.field.as_deref() == Some(field))
            .unwrap_or_else(|| panic!("{owner}.{field} missing from the registry"))
    };

    let shards = cell("ProfileCache", "shards");
    assert!(shards.reachable, "ProfileCache.shards must be on the spine");
    assert!(
        shards
            .discipline
            .as_deref()
            .unwrap_or("")
            .contains("first-insert-wins"),
        "ProfileCache relies on racing builders inserting bit-identical \
         profiles; its declared discipline says otherwise: {:?}",
        shards.discipline
    );

    let names = cell("Distinct", "names");
    assert!(names.reachable, "the name cache must be on the spine");
    assert!(
        names
            .discipline
            .as_deref()
            .unwrap_or("")
            .contains("exclusive takeout"),
        "the name cache protocol (entry leaves the map before fanout, \
         returns after the ordered commit) is not what is declared: {:?}",
        names.discipline
    );
}

/// Every cell the analyzer proves reachable must (a) declare a merge
/// discipline — the D108 invariant restated against the live tree — and
/// (b) live in a crate the multi-thread determinism runs exercise, so
/// the bit-identity suite is actually testing the declared disciplines.
#[test]
fn reachable_cells_are_declared_and_covered_by_the_determinism_suite() {
    let facts = registry();
    for c in facts.cells.iter().filter(|c| c.reachable) {
        assert!(
            c.discipline.is_some(),
            "reachable cell {}.{} ({}) has no shared(...) declaration",
            c.owner,
            c.field.as_deref().unwrap_or("<static>"),
            c.file
        );
        assert!(
            c.file.starts_with("crates/core/")
                || c.file.starts_with("crates/exec/")
                || c.file.starts_with("crates/relgraph/"),
            "reachable cell {}.{} lives in {}, outside the crates the \
             1/2/8-thread suite drives; extend the suite before shipping it",
            c.owner,
            c.field.as_deref().unwrap_or("<static>"),
            c.file
        );
    }
    // The guard-site half of the registry feeds D106; an empty list would
    // mean lock tracking silently stopped seeing the cache shards.
    assert!(
        facts
            .guards
            .iter()
            .any(|g| g.file.ends_with("core/src/cache.rs")),
        "no guard sites recorded for the profile cache: {:?}",
        facts.guards
    );
}

/// The dynamic half of the cross-check: drive the resolve/train spine —
/// the code paths touching every registered reachable cell — at 1, 2,
/// and 8 threads and require bit-identical output.
#[test]
fn fanout_over_registered_cells_is_bit_identical() {
    let mut config = WorldConfig::tiny(11);
    config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![7, 5])];
    let d = to_catalog(&World::generate(config)).expect("valid world");

    let engine = || {
        let config = DistinctConfig {
            training: TrainingConfig {
                positives: 40,
                negatives: 40,
                ..Default::default()
            },
            ..Default::default()
        };
        Distinct::prepare(&d.catalog, "Publish", "author", config).unwrap()
    };

    let mut reference = engine();
    let ref_report = reference
        .train_with(&TrainRequest::new().threads(1))
        .unwrap();
    let refs = reference.references_of("Wei Wang");
    let ref_outcome = reference.resolve(&ResolveRequest::new(&refs).threads(1));
    assert!(ref_outcome.is_complete());

    for threads in [2, 8] {
        let mut e = engine();
        let report = e.train_with(&TrainRequest::new().threads(threads)).unwrap();
        assert_eq!(
            report.path_weights, ref_report.path_weights,
            "weights differ at {threads} threads — a registered cell's \
             declared merge discipline does not hold"
        );
        let outcome = e.resolve(&ResolveRequest::new(&refs).threads(threads));
        assert!(outcome.is_complete());
        assert_eq!(
            outcome.clustering.labels, ref_outcome.clustering.labels,
            "clustering differs at {threads} threads"
        );
    }
}

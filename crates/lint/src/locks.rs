//! D103 — lock-order consistency. Builds a global lock-ordering digraph
//! from per-function acquisition facts: an edge `A → B` means some code
//! path acquires `B` while holding `A` (directly, or through a call whose
//! callee transitively acquires `B`). A cycle in that digraph is a
//! potential deadlock; so is a lock held across a blocking `.send(..)`.
//! Locks are identified by their textual receiver label — two sites with
//! the same label are conservatively the same lock, and differently
//! labelled aliases are missed (stated in the catalog rationale).

use crate::callgraph::CallGraph;
use crate::catalog::{Finding, LintId};
use std::collections::{BTreeMap, BTreeSet};

/// One ordering edge with the site that witnesses it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Edge {
    held: String,
    acquired: String,
    file: String,
    line: u32,
}

/// Fixpoint over the call graph: the set of lock labels each function may
/// acquire (itself or transitively), and whether it may send.
fn transitive_effects(graph: &CallGraph) -> (Vec<BTreeSet<String>>, Vec<bool>) {
    let ws = &graph.ws;
    let n = ws.fns.len();
    let mut acquires: Vec<BTreeSet<String>> = (0..n)
        .map(|i| {
            ws.fns[i]
                .facts
                .locks
                .iter()
                .map(|l| l.label.clone())
                .collect()
        })
        .collect();
    let mut sends: Vec<bool> = (0..n).map(|i| !ws.fns[i].facts.sends.is_empty()).collect();
    // The graph may be cyclic (recursion), so iterate to a fixpoint;
    // label sets only grow, so this terminates.
    loop {
        let mut changed = false;
        for i in 0..n {
            for &j in &graph.edges[i] {
                if sends[j] && !sends[i] {
                    sends[i] = true;
                    changed = true;
                }
                if !acquires[j].is_subset(&acquires[i]) {
                    let add: Vec<String> = acquires[j].difference(&acquires[i]).cloned().collect();
                    acquires[i].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            return (acquires, sends);
        }
    }
}

/// Run the D103 pass over a built call graph.
pub fn d103_lock_order(graph: &CallGraph) -> Vec<Finding> {
    let ws = &graph.ws;
    let (acquires, sends) = transitive_effects(graph);
    let mut edges: BTreeSet<Edge> = BTreeSet::new();
    let mut findings = Vec::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        for lock in &f.facts.locks {
            let held = (lock.idx, lock.hold_end);
            // Later direct acquisitions inside the hold range.
            for other in &f.facts.locks {
                if other.idx > held.0 && other.idx < held.1 && other.label != lock.label {
                    edges.insert(Edge {
                        held: lock.label.clone(),
                        acquired: other.label.clone(),
                        file: f.file.clone(),
                        line: other.line,
                    });
                }
            }
            // Calls made while holding: the callee's transitive acquires
            // happen under this lock, and a transitive send blocks under it.
            for call in &f.facts.calls {
                if call.idx <= held.0 || call.idx >= held.1 {
                    continue;
                }
                for &j in &graph.edges[i] {
                    // Only callees this call site resolves to.
                    if !ws.resolve(i, call).contains(&j) {
                        continue;
                    }
                    for label in &acquires[j] {
                        if label != &lock.label {
                            edges.insert(Edge {
                                held: lock.label.clone(),
                                acquired: label.clone(),
                                file: f.file.clone(),
                                line: call.line,
                            });
                        }
                    }
                    if sends[j] {
                        findings.push(Finding {
                            id: LintId::D103,
                            file: f.file.clone(),
                            line: call.line,
                            message: format!(
                                "lock `{}` held across call to `{}` which may send on a channel",
                                lock.label,
                                ws.qual(j)
                            ),
                        });
                    }
                }
            }
            // Direct sends inside the hold range.
            for &(line, idx) in &f.facts.sends {
                if idx > held.0 && idx < held.1 {
                    findings.push(Finding {
                        id: LintId::D103,
                        file: f.file.clone(),
                        line,
                        message: format!("lock `{}` held across `.send(..)`", lock.label),
                    });
                }
            }
        }
    }
    // Cycle detection on the label digraph: flag each edge that closes a
    // cycle (its target can already reach its source).
    let mut succ: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        succ.entry(e.held.as_str())
            .or_default()
            .insert(e.acquired.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(u) = stack.pop() {
            if u == to {
                return true;
            }
            if !seen.insert(u) {
                continue;
            }
            if let Some(next) = succ.get(u) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    for e in &edges {
        if reaches(e.acquired.as_str(), e.held.as_str()) {
            findings.push(Finding {
                id: LintId::D103,
                file: e.file.clone(),
                line: e.line,
                message: format!(
                    "acquiring `{}` while holding `{}` closes a lock-order cycle",
                    e.acquired, e.held
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    findings.dedup();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FileCtx, Role};
    use crate::symbols::Workspace;
    use std::collections::{BTreeMap, BTreeSet};

    fn graph(files: &[(&str, &str, &str)]) -> CallGraph {
        let ctxs: Vec<FileCtx> = files
            .iter()
            .map(|(p, k, s)| FileCtx::new(p, k, Role::Library, s))
            .collect();
        let refs: Vec<&FileCtx> = ctxs.iter().collect();
        let dirs: BTreeSet<String> = files.iter().map(|(_, k, _)| k.to_string()).collect();
        let mut closures = BTreeMap::new();
        for d in &dirs {
            closures.insert(d.clone(), dirs.clone());
        }
        CallGraph::build(Workspace::build(&refs, BTreeMap::new(), closures))
    }

    #[test]
    fn opposite_acquisition_orders_cycle() {
        let g = graph(&[(
            "crates/exec/src/pool.rs",
            "exec",
            "\
fn ab(&self) { let a = self.a.lock(); let b = self.b.lock(); }
fn ba(&self) { let b = self.b.lock(); let a = self.a.lock(); }
",
        )]);
        let findings = d103_lock_order(&g);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("lock-order cycle")),
            "{findings:?}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let g = graph(&[(
            "crates/exec/src/pool.rs",
            "exec",
            "\
fn ab(&self) { let a = self.a.lock(); let b = self.b.lock(); }
fn also_ab(&self) { let a = self.a.lock(); let b = self.b.lock(); }
",
        )]);
        assert!(d103_lock_order(&g).is_empty());
    }

    #[test]
    fn send_under_lock_direct_and_through_call() {
        let g = graph(&[(
            "crates/exec/src/pool.rs",
            "exec",
            "\
fn direct(&self) { let a = self.state.lock(); self.tx.send(1); }
fn indirect(&self) { let a = self.state.lock(); self.notify(); }
fn notify(&self) { self.tx.send(2); }
",
        )]);
        let findings = d103_lock_order(&g);
        assert!(
            findings.iter().any(|f| f.message.contains("`.send(..)`")),
            "{findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.message.contains("may send")),
            "{findings:?}"
        );
    }

    #[test]
    fn cross_function_cycle_through_calls() {
        // f holds A and calls g (acquires B); h holds B and calls k
        // (acquires A): A→B and B→A through the graph.
        let g = graph(&[(
            "crates/exec/src/pool.rs",
            "exec",
            "\
fn f(&self) { let a = self.a.lock(); self.grab_b(); }
fn grab_b(&self) { let b = self.b.lock(); }
fn h(&self) { let b = self.b.lock(); self.grab_a(); }
fn grab_a(&self) { let a = self.a.lock(); }
",
        )]);
        let findings = d103_lock_order(&g);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("lock-order cycle")),
            "{findings:?}"
        );
    }

    #[test]
    fn single_statement_scopes_do_not_overlap() {
        // ProfileCache style: guard dropped at end of statement.
        let g = graph(&[(
            "crates/relstore/src/cache.rs",
            "relstore",
            "\
fn put(&self, k: u64, v: V) { self.shard(k).lock().insert(k, v); self.other(k).lock().remove(&k); }
",
        )]);
        assert!(d103_lock_order(&g).is_empty());
    }
}

//! Brute-force random-walk probability (paper §2.4).
//!
//! The probability of walking from reference `a` out along path `P` and
//! back to reference `b` along the reverse path, marginalized over the
//! intermediate end tuple `t`:
//!
//! ```text
//! Walk_P(a → b) = Σ_t  Prob_P(a → t) · Prob_P(t → b)
//! ```
//!
//! Computed term by term over `a`'s forward support in tuple order; `b`'s
//! backward map supplies `Prob_P(t → b)` (0 when absent).

use crate::propagate::Mass;

/// Directed walk probability `Walk_P(a → b)` from `a`'s forward masses
/// and `b`'s backward (return) probabilities.
pub fn directed_walk(forward_a: &Mass, backward_b: &Mass) -> f64 {
    let mut sum = 0.0;
    for (t, &f) in forward_a {
        sum += f * backward_b.get(t).copied().unwrap_or(0.0);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{RelId, TupleId, TupleRef};

    fn mass(pairs: &[(u32, f64)]) -> Mass {
        pairs
            .iter()
            .map(|&(t, w)| (TupleRef::new(RelId(0), TupleId(t)), w))
            .collect()
    }

    #[test]
    fn hand_computed_walk() {
        let fwd_a = mass(&[(1, 0.5), (2, 0.5)]);
        let bwd_b = mass(&[(2, 0.4)]);
        // Only tuple 2 is shared: 0.5 · 0.4 = 0.2.
        assert!((directed_walk(&fwd_a, &bwd_b) - 0.2).abs() < 1e-15);
    }

    #[test]
    fn disjoint_supports_walk_zero() {
        let a = mass(&[(1, 1.0)]);
        let b = mass(&[(2, 1.0)]);
        assert_eq!(directed_walk(&a, &b), 0.0);
    }
}

//! Calibration utility — sweep `min-sim` for full DISTINCT on the
//! standard world and print per-threshold average metrics. Used to pick
//! the calibrated default documented in EXPERIMENTS.md; not one of the
//! paper's artifacts itself.
//!
//! Run: `cargo run --release -p distinct-bench --bin exp_sweep`

use distinct::{min_sim_grid, Distinct, DistinctConfig};
use distinct_bench::{build_dataset, evaluate_name, mean_accuracy, mean_f, STANDARD_SEED};
use eval::{f3, f4, Align, Table};

fn main() {
    let dataset = build_dataset(STANDARD_SEED);
    let mut engine = Distinct::prepare(
        &dataset.catalog,
        "Publish",
        "author",
        DistinctConfig::default(),
    )
    .expect("prepare");
    engine.train().expect("train");

    let mut table = Table::new(
        &[
            "min-sim",
            "avg precision",
            "avg recall",
            "avg f",
            "avg accuracy",
            "perfect-p names",
        ],
        &[
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    )
    .with_title("DISTINCT min-sim calibration sweep (standard world)");
    for min_sim in min_sim_grid() {
        let results: Vec<_> = dataset
            .truths
            .iter()
            .map(|t| evaluate_name(&engine, t, min_sim))
            .collect();
        let p = results.iter().map(|r| r.scores.precision).sum::<f64>() / results.len() as f64;
        let r = results.iter().map(|r| r.scores.recall).sum::<f64>() / results.len() as f64;
        let perfect = results
            .iter()
            .filter(|r| r.scores.precision >= 0.9999)
            .count();
        table.row(vec![
            f4(min_sim),
            f3(p),
            f3(r),
            f3(mean_f(&results)),
            f3(mean_accuracy(&results)),
            perfect.to_string(),
        ]);
    }
    println!("{}", table.render());
}

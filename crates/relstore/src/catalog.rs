//! The catalog: a named collection of relations linked by foreign keys.
//!
//! The catalog is the unit the rest of the system operates on. After all
//! relations are registered and populated, call [`Catalog::finalize`]: it
//! resolves foreign-key targets, builds the reverse foreign-key indexes
//! required for join-path traversal, and (optionally) checks referential
//! integrity.

use crate::error::{Result, StoreError};
use crate::fxhash::FxHashMap;
use crate::relation::Relation;
use crate::schema::RelationSchema;
use crate::tuple::{RelId, Tuple, TupleRef};
use crate::value::Value;
use std::fmt;

/// Identifier of a foreign-key edge within a catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FkId(pub u32);

impl FkId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A resolved foreign-key edge: `from.attr` references the key of `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FkEdge {
    /// Edge id.
    pub id: FkId,
    /// Referencing relation.
    pub from: RelId,
    /// Attribute position in `from` carrying the foreign key.
    pub attr: usize,
    /// Referenced relation (must declare a key).
    pub to: RelId,
    /// Key attribute position in `to`.
    pub to_key: usize,
    /// Human-readable label, e.g. `Publish.paper_key->Publications`.
    pub label: String,
}

/// A populated, linked relational database.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: Vec<Relation>,
    by_name: FxHashMap<String, RelId>,
    fks: Vec<FkEdge>,
    /// Outgoing FK edge ids per relation.
    out_edges: Vec<Vec<FkId>>,
    /// Incoming FK edge ids per relation.
    in_edges: Vec<Vec<FkId>>,
    finalized: bool,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a relation schema, returning the relation id.
    pub fn add_relation(&mut self, schema: RelationSchema) -> Result<RelId> {
        if self.by_name.contains_key(&schema.name) {
            return Err(StoreError::DuplicateRelation(schema.name));
        }
        let id = RelId(self.relations.len() as u32);
        self.by_name.insert(schema.name.clone(), id);
        self.relations.push(Relation::new(schema));
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        self.finalized = false;
        Ok(id)
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Resolve a relation by name.
    pub fn relation_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// The relation with the given id.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.index()]
    }

    /// Mutable access to a relation (invalidates finalization).
    pub fn relation_mut(&mut self, id: RelId) -> &mut Relation {
        self.finalized = false;
        &mut self.relations[id.index()]
    }

    /// Iterate over relations with their ids.
    pub fn relations(&self) -> impl Iterator<Item = (RelId, &Relation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u32), r))
    }

    /// Insert a tuple into the named relation.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<TupleRef> {
        let rel = self
            .relation_id(relation)
            .ok_or_else(|| StoreError::UnknownRelation(relation.to_string()))?;
        self.finalized = false;
        // distinct-lint: allow(D113, reason="relation storage is the reference corpus: it grows with inserted tuples by design; dropping the catalog is the only eviction")
        let tid = self.relations[rel.index()].insert(tuple)?;
        Ok(TupleRef::new(rel, tid))
    }

    /// Resolve foreign keys, build reverse FK indexes, and optionally verify
    /// referential integrity (`check_integrity`).
    ///
    /// Must be called after loading and before traversal; it is idempotent.
    pub fn finalize(&mut self, check_integrity: bool) -> Result<()> {
        self.fks.clear();
        for edges in self.out_edges.iter_mut().chain(self.in_edges.iter_mut()) {
            edges.clear();
        }
        // Resolve FK declarations into edges.
        let mut resolved: Vec<(RelId, usize, RelId, usize, String)> = Vec::new();
        for (rid, rel) in self.relations.iter().enumerate() {
            let rid = RelId(rid as u32);
            let fk_list: Vec<(usize, String)> = rel
                .schema()
                .foreign_keys()
                .map(|(a, t)| (a, t.to_string()))
                .collect();
            for (attr, target) in fk_list {
                let to =
                    self.relation_id(&target)
                        .ok_or_else(|| StoreError::InvalidForeignKey {
                            relation: rel.name().to_string(),
                            attribute: rel.schema().attributes[attr].name.clone(),
                            reason: format!("target relation `{target}` does not exist"),
                        })?;
                let to_key = self.relations[to.index()]
                    .schema()
                    .key_index()
                    .ok_or_else(|| StoreError::InvalidForeignKey {
                        relation: rel.name().to_string(),
                        attribute: rel.schema().attributes[attr].name.clone(),
                        reason: format!("target relation `{target}` declares no key"),
                    })?;
                let label = format!(
                    "{}.{}->{}",
                    rel.name(),
                    rel.schema().attributes[attr].name,
                    target
                );
                resolved.push((rid, attr, to, to_key, label));
            }
        }
        for (from, attr, to, to_key, label) in resolved {
            let id = FkId(self.fks.len() as u32);
            self.fks.push(FkEdge {
                id,
                from,
                attr,
                to,
                to_key,
                label,
            });
            // distinct-lint: allow(D113, reason="FK adjacency tracks corpus size one edge per inserted tuple; rebuilt only with the catalog")
            self.out_edges[from.index()].push(id);
            // distinct-lint: allow(D113, reason="FK adjacency tracks corpus size one edge per inserted tuple; rebuilt only with the catalog")
            self.in_edges[to.index()].push(id);
            // Reverse traversal (target -> referrers) needs an index on the
            // FK attribute of the referencing relation.
            if !self.relations[from.index()].has_index(attr) {
                self.relations[from.index()].build_index(attr);
            }
        }
        if check_integrity {
            for fk in &self.fks {
                let from_rel = &self.relations[fk.from.index()];
                let to_rel = &self.relations[fk.to.index()];
                for (_, t) in from_rel.iter() {
                    let v = t.get(fk.attr);
                    if !v.is_null() && to_rel.by_key(v).is_none() {
                        return Err(StoreError::DanglingForeignKey {
                            relation: from_rel.name().to_string(),
                            attribute: from_rel.schema().attributes[fk.attr].name.clone(),
                            value: v.to_string(),
                        });
                    }
                }
            }
        }
        self.finalized = true;
        Ok(())
    }

    /// True once [`Catalog::finalize`] has run since the last mutation.
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// All foreign-key edges.
    pub fn fk_edges(&self) -> &[FkEdge] {
        &self.fks
    }

    /// The edge with the given id.
    pub fn fk(&self, id: FkId) -> &FkEdge {
        &self.fks[id.index()]
    }

    /// FK edges leaving `rel` (rel is the referencing side).
    pub fn out_edges(&self, rel: RelId) -> &[FkId] {
        &self.out_edges[rel.index()]
    }

    /// FK edges entering `rel` (rel is the referenced side).
    pub fn in_edges(&self, rel: RelId) -> &[FkId] {
        &self.in_edges[rel.index()]
    }

    /// Follow edge `fk` forward from a tuple of the referencing relation:
    /// the single target tuple whose key equals the FK value (if any).
    pub fn follow_forward(&self, fk: FkId, t: TupleRef) -> Option<TupleRef> {
        let edge = self.fk(fk);
        debug_assert_eq!(t.rel, edge.from, "tuple not in FK source relation");
        let v = self.relations[edge.from.index()]
            .tuple(t.tid)
            .get(edge.attr);
        if v.is_null() {
            return None;
        }
        self.relations[edge.to.index()]
            .by_key(v)
            .map(|tid| TupleRef::new(edge.to, tid))
    }

    /// Follow edge `fk` backward from a tuple of the referenced relation:
    /// all referrer tuples whose FK value equals this tuple's key.
    pub fn follow_backward(&self, fk: FkId, t: TupleRef) -> Vec<TupleRef> {
        let edge = self.fk(fk);
        debug_assert_eq!(t.rel, edge.to, "tuple not in FK target relation");
        let key = self.relations[edge.to.index()]
            .tuple(t.tid)
            .get(edge.to_key);
        self.relations[edge.from.index()]
            .lookup(edge.attr, key)
            .into_iter()
            .map(|tid| TupleRef::new(edge.from, tid))
            .collect()
    }

    /// Fanout of backward traversal without materializing the tuples.
    pub fn backward_count(&self, fk: FkId, t: TupleRef) -> usize {
        let edge = self.fk(fk);
        let key = self.relations[edge.to.index()]
            .tuple(t.tid)
            .get(edge.to_key);
        self.relations[edge.from.index()].lookup_count(edge.attr, key)
    }

    /// The value of attribute `attr` of a tuple.
    pub fn value(&self, t: TupleRef, attr: usize) -> &Value {
        self.relations[t.rel.index()].tuple(t.tid).get(attr)
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Catalog ({} relations, {} tuples)",
            self.relation_count(),
            self.tuple_count()
        )?;
        for (_, r) in self.relations() {
            writeln!(f, "  {}  [{} tuples]", r.schema(), r.len())?;
        }
        for fk in &self.fks {
            writeln!(f, "  FK {}", fk.label)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::tuple::TupleId;
    use crate::value::AttrType;

    /// Tiny two-relation catalog: Papers(paper KEY, venue->Venues), Venues(venue KEY).
    fn tiny() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("Venues")
                .key("venue", AttrType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Papers")
                .key("paper", AttrType::Int)
                .fk("venue", AttrType::Str, "Venues")
                .build()
                .unwrap(),
        )
        .unwrap();
        c.insert("Venues", [Value::str("VLDB")].into()).unwrap();
        c.insert("Venues", [Value::str("KDD")].into()).unwrap();
        c.insert("Papers", [Value::Int(1), Value::str("VLDB")].into())
            .unwrap();
        c.insert("Papers", [Value::Int(2), Value::str("VLDB")].into())
            .unwrap();
        c.insert("Papers", [Value::Int(3), Value::str("KDD")].into())
            .unwrap();
        c
    }

    #[test]
    fn register_and_lookup() {
        let c = tiny();
        assert_eq!(c.relation_count(), 2);
        assert_eq!(c.tuple_count(), 5);
        assert!(c.relation_id("Venues").is_some());
        assert!(c.relation_id("Nope").is_none());
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut c = tiny();
        let r = c.add_relation(
            SchemaBuilder::new("Venues")
                .key("venue", AttrType::Str)
                .build()
                .unwrap(),
        );
        assert!(matches!(r, Err(StoreError::DuplicateRelation(_))));
    }

    #[test]
    fn insert_unknown_relation_rejected() {
        let mut c = tiny();
        let r = c.insert("Nope", [Value::Int(1)].into());
        assert!(matches!(r, Err(StoreError::UnknownRelation(_))));
    }

    #[test]
    fn finalize_builds_edges_and_indexes() {
        let mut c = tiny();
        assert!(!c.is_finalized());
        c.finalize(true).unwrap();
        assert!(c.is_finalized());
        assert_eq!(c.fk_edges().len(), 1);
        let fk = &c.fk_edges()[0];
        assert_eq!(fk.label, "Papers.venue->Venues");
        let papers = c.relation_id("Papers").unwrap();
        let venues = c.relation_id("Venues").unwrap();
        assert_eq!(c.out_edges(papers), &[fk.id]);
        assert_eq!(c.in_edges(venues), &[fk.id]);
        assert!(c.relation(papers).has_index(1));
    }

    #[test]
    fn forward_and_backward_traversal() {
        let mut c = tiny();
        c.finalize(true).unwrap();
        let papers = c.relation_id("Papers").unwrap();
        let venues = c.relation_id("Venues").unwrap();
        let fk = c.fk_edges()[0].id;

        let p0 = TupleRef::new(papers, TupleId(0));
        let v = c.follow_forward(fk, p0).unwrap();
        assert_eq!(v.rel, venues);
        assert_eq!(c.value(v, 0).as_str(), Some("VLDB"));

        let back = c.follow_backward(fk, v);
        assert_eq!(back.len(), 2);
        assert_eq!(c.backward_count(fk, v), 2);
    }

    #[test]
    fn integrity_check_catches_dangling_fk() {
        let mut c = tiny();
        c.insert("Papers", [Value::Int(9), Value::str("NOSUCH")].into())
            .unwrap();
        let r = c.finalize(true);
        assert!(matches!(r, Err(StoreError::DanglingForeignKey { .. })));
        // Without the check it finalizes, and forward traversal yields None.
        let mut c2 = tiny();
        c2.insert("Papers", [Value::Int(9), Value::str("NOSUCH")].into())
            .unwrap();
        c2.finalize(false).unwrap();
        let papers = c2.relation_id("Papers").unwrap();
        let fk = c2.fk_edges()[0].id;
        assert_eq!(
            c2.follow_forward(fk, TupleRef::new(papers, TupleId(3))),
            None
        );
    }

    #[test]
    fn fk_to_missing_relation_rejected() {
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("A")
                .key("a", AttrType::Int)
                .fk("b", AttrType::Int, "B")
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(matches!(
            c.finalize(false),
            Err(StoreError::InvalidForeignKey { .. })
        ));
    }

    #[test]
    fn fk_to_keyless_relation_rejected() {
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("B")
                .data("x", AttrType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("A")
                .fk("b", AttrType::Int, "B")
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(matches!(
            c.finalize(false),
            Err(StoreError::InvalidForeignKey { .. })
        ));
    }

    #[test]
    fn mutation_invalidates_finalization() {
        let mut c = tiny();
        c.finalize(false).unwrap();
        assert!(c.is_finalized());
        c.insert("Venues", [Value::str("ICDE")].into()).unwrap();
        assert!(!c.is_finalized());
        c.finalize(true).unwrap();
        assert!(c.is_finalized());
    }

    #[test]
    fn null_fk_is_allowed_and_skipped() {
        let mut c = tiny();
        c.insert("Papers", [Value::Int(10), Value::Null].into())
            .unwrap();
        c.finalize(true).unwrap();
        let papers = c.relation_id("Papers").unwrap();
        let fk = c.fk_edges()[0].id;
        assert_eq!(
            c.follow_forward(fk, TupleRef::new(papers, TupleId(3))),
            None
        );
    }

    #[test]
    fn display_mentions_relations_and_fks() {
        let mut c = tiny();
        c.finalize(false).unwrap();
        let s = c.to_string();
        assert!(s.contains("Papers"));
        assert!(s.contains("FK Papers.venue->Venues"));
    }
}

//! Random-walk probabilities between references (paper §2.4).
//!
//! The linkage strength between two references along a join path `P` is
//! the probability of walking from one to the other: out along `P` and
//! back along its reverse. Because [`propagate()`](crate::propagate()) already
//! yields, for each reference `r`, both `Prob_P(r → t)` and
//! `Prob_P(t → r)` over the path's end relation, the walk probability is a
//! simple combination — the "combine such probabilities" optimization the
//! paper describes instead of walking long concatenated paths:
//!
//! ```text
//! Walk_P(r1 → r2) = Σ_t  Prob_P(r1 → t) · Prob_P(t → r2)
//! ```
//!
//! We report the symmetrized value `(Walk_P(r1→r2) + Walk_P(r2→r1)) / 2`.

use crate::propagate::Propagation;

/// Directed walk probability `Walk_P(a → b)`: leave `a` forward along the
/// path, return to `b` along the reverse path.
///
/// The cross terms are summed in ascending node order (not hash-map
/// iteration order): float addition is not associative, so a hash-ordered
/// sum would let the maps' insertion history perturb low-order bits and
/// break the bit-identical-at-any-thread-count guarantee (lint D001).
pub fn directed_walk(a: &Propagation, b: &Propagation) -> f64 {
    // Iterate over the smaller support.
    let (small, large): (Vec<(crate::graph::NodeId, f64)>, _) =
        if a.forward.len() <= b.backward.len() {
            (
                a.forward.iter().map(|(&n, &w)| (n, w)).collect(),
                &b.backward,
            )
        } else {
            (
                b.backward.iter().map(|(&n, &w)| (n, w)).collect(),
                &a.forward,
            )
        };
    let mut terms = small;
    terms.sort_unstable_by_key(|&(n, _)| n);
    terms
        .iter()
        .map(|&(n, w)| w * large.get(&n).copied().unwrap_or(0.0))
        .sum()
}

/// Symmetrized walk probability between two references along one path.
pub fn walk_probability(a: &Propagation, b: &Propagation) -> f64 {
    0.5 * (directed_walk(a, b) + directed_walk(b, a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkGraph, NodeId};
    use crate::propagate::propagate;
    use relstore::{
        AttrType, Catalog, FxHashMap, JoinPath, JoinStep, SchemaBuilder, TupleId, TupleRef, Value,
    };

    fn prop(fwd: &[(u32, f64)], bwd: &[(u32, f64)]) -> Propagation {
        let mut f: FxHashMap<NodeId, f64> = FxHashMap::default();
        for &(n, w) in fwd {
            f.insert(NodeId(n), w);
        }
        let mut b: FxHashMap<NodeId, f64> = FxHashMap::default();
        for &(n, w) in bwd {
            b.insert(NodeId(n), w);
        }
        Propagation {
            forward: f,
            backward: b,
        }
    }

    #[test]
    fn directed_walk_hand_computed() {
        let a = prop(&[(1, 0.5), (2, 0.5)], &[(1, 0.2), (2, 0.3)]);
        let b = prop(&[(2, 1.0)], &[(2, 0.4)]);
        // a→b: f_a(2) * b_b(2) = 0.5 * 0.4 = 0.2 (node 1 not in b's support).
        assert!((directed_walk(&a, &b) - 0.2).abs() < 1e-12);
        // b→a: f_b(2) * b_a(2) = 1.0 * 0.3 = 0.3.
        assert!((directed_walk(&b, &a) - 0.3).abs() < 1e-12);
        assert!((walk_probability(&a, &b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn disjoint_supports_walk_zero() {
        let a = prop(&[(1, 1.0)], &[(1, 1.0)]);
        let b = prop(&[(2, 1.0)], &[(2, 1.0)]);
        assert_eq!(walk_probability(&a, &b), 0.0);
    }

    #[test]
    fn walk_probability_is_symmetric() {
        let a = prop(&[(1, 0.4), (3, 0.6)], &[(1, 0.5), (3, 0.1)]);
        let b = prop(&[(1, 0.9), (2, 0.1)], &[(1, 0.7), (2, 0.2)]);
        assert!((walk_probability(&a, &b) - walk_probability(&b, &a)).abs() < 1e-15);
    }

    /// End-to-end: walk probabilities computed from real propagations over
    /// a shared-paper graph behave as the paper intends — references that
    /// share a paper have a much higher walk probability than references
    /// merely sharing a venue-sized neighborhood.
    #[test]
    fn end_to_end_shared_paper_beats_unrelated() {
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("Papers")
                .key("p", AttrType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Publish")
                .fk("p", AttrType::Int, "Papers")
                .build()
                .unwrap(),
        )
        .unwrap();
        for p in 1..=2 {
            c.insert("Papers", [Value::Int(p)].into()).unwrap();
        }
        // Records 0,1 share paper 1; record 2 is alone on paper 2.
        for p in [1, 1, 2] {
            c.insert("Publish", [Value::Int(p)].into()).unwrap();
        }
        c.finalize(true).unwrap();
        let g = LinkGraph::build(&c);
        let publish = c.relation_id("Publish").unwrap();
        let fk = c.fk_edges()[0].id;
        let path = JoinPath::new(publish, vec![JoinStep::forward(fk)], &c).unwrap();
        let p0 = propagate(&g, &c, &path, TupleRef::new(publish, TupleId(0)));
        let p1 = propagate(&g, &c, &path, TupleRef::new(publish, TupleId(1)));
        let p2 = propagate(&g, &c, &path, TupleRef::new(publish, TupleId(2)));
        let same = walk_probability(&p0, &p1);
        let diff = walk_probability(&p0, &p2);
        // Shared paper: 1 * 1/2 both ways = 0.5. Unrelated: 0.
        assert!((same - 0.5).abs() < 1e-12);
        assert_eq!(diff, 0.0);
    }

    #[test]
    fn self_walk_reflects_fanout() {
        // A reference's walk probability to itself along a path equals the
        // chance of returning to itself — 1/|paper records|.
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("Papers")
                .key("p", AttrType::Int)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Publish")
                .fk("p", AttrType::Int, "Papers")
                .build()
                .unwrap(),
        )
        .unwrap();
        c.insert("Papers", [Value::Int(1)].into()).unwrap();
        for _ in 0..4 {
            c.insert("Publish", [Value::Int(1)].into()).unwrap();
        }
        c.finalize(true).unwrap();
        let g = LinkGraph::build(&c);
        let publish = c.relation_id("Publish").unwrap();
        let fk = c.fk_edges()[0].id;
        let path = JoinPath::new(publish, vec![JoinStep::forward(fk)], &c).unwrap();
        let p = propagate(&g, &c, &path, TupleRef::new(publish, TupleId(0)));
        assert!((walk_probability(&p, &p) - 0.25).abs() < 1e-12);
    }
}

//! The deprecated `resolve_*` / `train_ctl` shims are gone; every call
//! site builds a [`ResolveRequest`] / [`TrainRequest`] directly. This
//! test pins the equivalence the shims used to guarantee, now stated
//! purely against the request path: each historical call shape, spelled
//! as a request, is byte-for-byte interchangeable with every other
//! spelling of the same options — so deleting the shims was a provable
//! no-op for callers that migrated.

use datagen::{AmbiguousSpec, World, WorldConfig};
use distinct::{
    Distinct, DistinctConfig, ResolveRequest, RunControl, TrainRequest, TrainingConfig,
};
use std::sync::OnceLock;

fn dataset() -> &'static datagen::DblpDataset {
    static DATA: OnceLock<datagen::DblpDataset> = OnceLock::new();
    DATA.get_or_init(|| {
        let mut config = WorldConfig::tiny(21);
        config.ambiguous = vec![
            AmbiguousSpec::new("Wei Wang", vec![10, 8, 5]),
            AmbiguousSpec::new("Hui Fang", vec![5, 4]),
        ];
        datagen::to_catalog(&World::generate(config)).unwrap()
    })
}

fn make_engine() -> Distinct {
    let config = DistinctConfig {
        training: TrainingConfig {
            positives: 80,
            negatives: 80,
            ..Default::default()
        },
        ..Default::default()
    };
    Distinct::prepare(&dataset().catalog, "Publish", "author", config).unwrap()
}

/// Labels and full dendrogram must match exactly (bitwise similarities).
fn assert_same_clustering(a: &cluster::Clustering, b: &cluster::Clustering) {
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.dendrogram.merges(), b.dendrogram.merges());
}

#[test]
fn request_spellings_of_the_old_shim_shapes_are_interchangeable() {
    let engine = make_engine();
    let refs = engine.references_of("Wei Wang");
    assert_eq!(refs.len(), 23);

    // `resolve_name(name)` ≡ references_of + bare request.
    let bare = engine.resolve(&ResolveRequest::new(&refs));
    assert!(bare.degraded.is_none());

    // `resolve_with_min_sim(refs, engine_default)` ≡ bare request: an
    // explicit threshold equal to the configured one changes nothing.
    let engine_min_sim = engine.config().min_sim;
    let explicit = engine.resolve(&ResolveRequest::new(&refs).min_sim(engine_min_sim));
    assert_same_clustering(&bare.clustering, &explicit.clustering);

    // `resolve_ctl(refs, ctl)` ≡ bare request under an unlimited control:
    // attaching limits that never trip is observationally free.
    let ctl = RunControl::new();
    let limited = engine.resolve(&ResolveRequest::new(&refs).control(&ctl));
    assert!(limited.degraded.is_none());
    assert_same_clustering(&bare.clustering, &limited.clustering);

    // `resolve_with_min_sim_ctl` ≡ the two options composed, in either
    // builder order.
    let ctl_a = RunControl::new();
    let ctl_b = RunControl::new();
    let ab = engine.resolve(&ResolveRequest::new(&refs).min_sim(0.02).control(&ctl_a));
    let ba = engine.resolve(&ResolveRequest::new(&refs).control(&ctl_b).min_sim(0.02));
    assert_same_clustering(&ab.clustering, &ba.clustering);

    // `resolve_constrained` ≡ the constraint builders, and the
    // constraints actually bind: 0-1 together, 0-4 apart.
    let constrained = engine.resolve(
        &ResolveRequest::new(&refs)
            .must_link(&[(0, 1), (2, 3)])
            .cannot_link(&[(0, 4)]),
    );
    let labels = &constrained.clustering.labels;
    assert_eq!(labels[0], labels[1]);
    assert_eq!(labels[2], labels[3]);
    assert_ne!(labels[0], labels[4]);

    // `train_ctl(ctl)` ≡ `train_with(request.control(ctl))` ≡ plain
    // `train()`: identical learned weights, statistics, and downstream
    // resolution.
    let mut plain_engine = make_engine();
    let mut request_engine = make_engine();
    let train_ctl = RunControl::new();
    let plain = plain_engine.train().unwrap();
    let request = request_engine
        .train_with(&TrainRequest::new().control(&train_ctl))
        .unwrap();
    assert_eq!(plain_engine.weights(), request_engine.weights());
    assert_eq!(plain.unique_names, request.unique_names);
    assert_eq!(plain.positives, request.positives);
    assert_eq!(plain.negatives, request.negatives);
    assert_eq!(plain.resem_accuracy, request.resem_accuracy);
    assert_eq!(plain.walk_accuracy, request.walk_accuracy);
    assert_eq!(plain.path_weights, request.path_weights);
    let trained_refs = plain_engine.references_of("Wei Wang");
    assert_same_clustering(
        &plain_engine
            .resolve(&ResolveRequest::new(&trained_refs).min_sim(0.005))
            .clustering,
        &request_engine
            .resolve(&ResolveRequest::new(&trained_refs).min_sim(0.005))
            .clustering,
    );
}

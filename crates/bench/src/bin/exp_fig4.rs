//! Experiment F4 — regenerate **Figure 4**: average pairwise accuracy and
//! f-measure of the six method variants. Per the paper, DISTINCT runs at
//! its fixed `min-sim`; every other variant gets the `min-sim` from the
//! grid that maximizes its average accuracy.
//!
//! Run: `cargo run --release -p distinct-bench --bin exp_fig4`

use distinct::{min_sim_grid, DistinctConfig, Variant};
use distinct_bench::{
    build_dataset, evaluate_name, mean_accuracy, mean_f, sweep_best_min_sim, variant_engine,
    BenchError, StageContext, PAPER_FIG4, STANDARD_SEED,
};
use eval::{f3, f4, Align, Table};

fn main() -> Result<(), BenchError> {
    let dataset = build_dataset(STANDARD_SEED);
    let base = DistinctConfig::default();
    let grid = min_sim_grid();

    let mut table = Table::new(
        &[
            "Variant",
            "min-sim",
            "accuracy",
            "f-measure",
            "paper acc",
            "paper f",
        ],
        &[
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    )
    .with_title("Figure 4. Accuracy and f-measure of the six variants");

    let mut measured: Vec<(Variant, f64, f64)> = Vec::new();
    for variant in Variant::all() {
        let engine = variant_engine(&dataset, variant, &base);
        let (min_sim, results) = if variant.sweeps_min_sim() {
            sweep_best_min_sim(&engine, &dataset.truths, &grid)
        } else {
            let results: Vec<_> = dataset
                .truths
                .iter()
                .map(|t| evaluate_name(&engine, t, base.min_sim))
                .collect();
            (base.min_sim, results)
        };
        let acc = mean_accuracy(&results);
        let f = mean_f(&results);
        let paper = PAPER_FIG4.iter().find(|(l, _, _)| *l == variant.label());
        table.row(vec![
            variant.label().to_string(),
            f4(min_sim),
            f3(acc),
            f3(f),
            paper.map_or_else(String::new, |(_, a, _)| f3(*a)),
            paper.map_or_else(String::new, |(_, _, pf)| f3(*pf)),
        ]);
        measured.push((variant, acc, f));
        eprintln!("done: {variant}");
    }
    println!("{}", table.render());

    // The paper's three comparative claims, checked on our measurements.
    let f_of = |v: Variant| {
        measured
            .iter()
            .find(|(m, _, _)| *m == v)
            .map(|&(_, _, f)| f)
            .stage("exp_fig4", "look up a measured variant's f-measure")
    };
    let distinct = f_of(Variant::Distinct)?;
    println!("shape checks (paper's claims, our measurements):");
    println!(
        "  DISTINCT vs unsupervised single-measure baselines: +{:.1}% / +{:.1}% f-measure (paper: ~15%)",
        100.0 * (distinct - f_of(Variant::UnsupervisedResemblance)?),
        100.0 * (distinct - f_of(Variant::UnsupervisedWalk)?),
    );
    println!(
        "  supervision gain on combined measure: +{:.1}% f-measure (paper: >10%)",
        100.0 * (distinct - f_of(Variant::UnsupervisedCombined)?),
    );
    println!(
        "  combined-measure gain over supervised single measures: +{:.1}% / +{:.1}% (paper: ~3%)",
        100.0 * (distinct - f_of(Variant::SupervisedResemblance)?),
        100.0 * (distinct - f_of(Variant::SupervisedWalk)?),
    );
    Ok(())
}

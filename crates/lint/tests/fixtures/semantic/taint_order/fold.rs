//@ path: crates/core/src/fold.rs
//@ crate: core
//! Fixture: D107 determinism taint. Values drawn from unordered hash
//! iteration or from the thread count must not reach float folds,
//! growing buffers, or ExecReport/ParStats counters. `fold_hash` and
//! `chain_fold` accumulate straight off `values()`; `push_unordered`
//! grows an output buffer in arrival order; `thread_shaped` lets the
//! worker count shape a stats report. `sorted_fold` kills the taint with
//! an explicit sort, and `ordered_commit` sorts the buffer before it is
//! read — the ordered-commit discipline.

struct Fold;

impl Fold {
    fn fold_hash(&self, m: &FxHashMap<u32, f64>) -> f64 {
        let mut total = 0.0;
        for v in m.values() {
            total += v; //~ D107
        }
        total
    }

    fn chain_fold(&self, m: &FxHashMap<u32, f64>) -> f64 {
        m.values().sum() //~ D107
    }

    fn push_unordered(&self, m: &FxHashMap<u32, f64>, out: &mut Vec<f64>) {
        for v in m.values() {
            out.push(scale(v)); //~ D107
        }
    }

    fn thread_shaped(&self) -> ParStats {
        let threads = auto_threads();
        ParStats { threads } //~ D107
    }

    fn sorted_fold(&self, m: &FxHashMap<u32, f64>) -> f64 {
        let mut keys: Vec<u32> = m.keys().copied().collect();
        keys.sort_unstable();
        let mut total = 0.0;
        for k in keys.iter() {
            total += score(m, k);
        }
        total
    }

    fn ordered_commit(&self, m: &FxHashMap<u32, f64>) -> Vec<f64> {
        let mut out = Vec::new();
        for (k, v) in m.iter() {
            out.push(weight(k, v));
        }
        out.sort_by(f64::total_cmp);
        out
    }
}

//! Experiment T1 — regenerate **Table 1**: the ten ambiguous names with
//! their (#authors, #references) profile, plus the dataset statistics the
//! paper states in §5 (author / paper / reference counts).
//!
//! Run: `cargo run --release -p distinct-bench --bin exp_table1`

use distinct_bench::{
    build_dataset, standard_world_config, BenchError, StageContext, STANDARD_SEED,
};
use eval::{Align, Table};

fn main() -> Result<(), BenchError> {
    let config = standard_world_config(STANDARD_SEED);
    let dataset = build_dataset(STANDARD_SEED);
    let catalog = &dataset.catalog;

    let authors = catalog.relation(dataset.authors).len();
    let papers = catalog
        .relation(
            catalog
                .relation_id("Publications")
                .stage("exp_table1", "locate the Publications relation")?,
        )
        .len();
    let refs = catalog.relation(dataset.publish).len();
    println!("Synthetic DBLP-schema world (seed {STANDARD_SEED}):");
    println!("  {authors} distinct author names, {papers} papers, {refs} references");
    println!("  (paper's snapshot: 127,124 authors, ~616K papers, 1.29M references; the");
    println!("   generator scales to laptop size — structure, not volume, is the target)\n");

    let mut table = Table::new(
        &["Name", "#author", "#ref", "Name", "#author", "#ref"],
        &[
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Left,
            Align::Right,
            Align::Right,
        ],
    )
    .with_title("Table 1. Names corresponding to multiple authors");
    let specs = &config.ambiguous;
    let half = specs.len().div_ceil(2);
    for i in 0..half {
        let left = &specs[i];
        let (rn, ra, rr) = if i + half < specs.len() {
            let right = &specs[i + half];
            (
                right.name.clone(),
                right.entities().to_string(),
                right.total_refs().to_string(),
            )
        } else {
            (String::new(), String::new(), String::new())
        };
        table.row(vec![
            left.name.clone(),
            left.entities().to_string(),
            left.total_refs().to_string(),
            rn,
            ra,
            rr,
        ]);
    }
    println!("{}", table.render());

    // Verify the planted ground truth matches the specification.
    let mut ok = true;
    for (spec, truth) in specs.iter().zip(&dataset.truths) {
        if truth.refs.len() != spec.total_refs() || truth.entity_count() != spec.entities() {
            ok = false;
            println!(
                "MISMATCH {}: planted {} refs / {} entities, spec {} / {}",
                spec.name,
                truth.refs.len(),
                truth.entity_count(),
                spec.total_refs(),
                spec.entities()
            );
        }
    }
    if ok {
        println!("ground truth verified: every name matches its Table 1 profile");
    }
    Ok(())
}

//! # distinct-bench — experiment harness
//!
//! Shared plumbing for the `exp_*` binaries that regenerate every table
//! and figure of the paper, and for the Criterion performance benches.
//! See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.

#![warn(missing_docs)]

pub mod harness;

pub use harness::{
    build_dataset, evaluate_name, mean_accuracy, mean_f, standard_world_config, sweep_best_min_sim,
    variant_engine, NameResult, PaperRow, PAPER_FIG4, PAPER_TABLE2, STANDARD_SEED,
};

//! Criterion bench: probability propagation along join paths (the inner
//! loop of profile construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{to_catalog, AmbiguousSpec, World, WorldConfig};
use relgraph::{propagate, LinkGraph};
use relstore::expand_values;
use std::hint::black_box;

fn bench_propagation(c: &mut Criterion) {
    let mut config = WorldConfig::tiny(5);
    config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![20, 10])];
    let d = to_catalog(&World::generate(config)).unwrap();
    let ex = expand_values(&d.catalog).unwrap();
    let graph = LinkGraph::build(&ex.catalog);
    let publish = ex.catalog.relation_id("Publish").unwrap();
    let opts = relstore::PathEnumOptions {
        max_len: 4,
        ..Default::default()
    };
    let paths = relstore::enumerate_paths(&ex.catalog, publish, &opts);
    let refs = &d.truths[0].refs;

    let mut group = c.benchmark_group("propagation");
    for (label, len) in [("len2", 2usize), ("len3", 3), ("len4", 4)] {
        let path = paths
            .iter()
            .find(|p| p.len() == len)
            .expect("path of length");
        group.bench_with_input(BenchmarkId::new("single_path", label), path, |b, path| {
            b.iter(|| {
                let prop = propagate(&graph, &ex.catalog, path, black_box(refs[0]));
                black_box(prop.neighbor_count())
            })
        });
    }
    group.bench_function("all_paths_one_reference", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for path in &paths {
                total += propagate(&graph, &ex.catalog, path, black_box(refs[1])).neighbor_count();
            }
            black_box(total)
        })
    });
    group.finish();

    c.bench_function("link_graph_build", |b| {
        b.iter(|| black_box(LinkGraph::build(&ex.catalog).node_count()))
    });
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);

//! Differential testing: the production pipeline against the reference
//! oracle.
//!
//! For each generated world the production engine (`Distinct` +
//! `ResolveRequest`) runs under every combination of thread count
//! {1, 4} and cache state {cold, warm}, and must agree with the
//! `oracle` crate's transparently-literal implementations:
//!
//! * per-pair resemblance / walk / similarity within `1e-9` (the two
//!   sides sum identical term sets in different orders, so they can
//!   differ by float non-associativity but nothing else — see
//!   DESIGN.md §11 for the tolerance budget);
//! * byte-identical final labels and merge-by-merge identical
//!   dendrograms (ids and sizes exact, similarities within `1e-9`).
//!
//! On disagreement the failing world is shrunk to a locally minimal
//! configuration with `datagen::shrink_world` and the test panics with
//! its JSON — a ready-to-paste regression case.

use datagen::{AmbiguousSpec, World, WorldConfig};
use distinct::{
    Distinct, DistinctConfig, Resemblance, ResolveRequest, TrainingConfig, WeightingMode,
};
use oracle::{Composite, Measure, OracleEngine};

const TOLERANCE: f64 = 1e-9;
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn world_config(seed: u64, ambiguous: Vec<AmbiguousSpec>) -> WorldConfig {
    let mut config = WorldConfig::tiny(seed);
    config.n_authors = 120;
    config.n_venues = 12;
    config.n_communities = 5;
    config.ambiguous = ambiguous;
    config
}

fn engine_config(supervised: bool) -> DistinctConfig {
    DistinctConfig {
        max_path_len: 3,
        min_sim: 1e-4,
        weighting: if supervised {
            WeightingMode::Supervised
        } else {
            WeightingMode::Uniform
        },
        training: TrainingConfig {
            positives: 60,
            negatives: 60,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Largest absolute difference between two matrices.
fn max_delta(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    let mut worst: f64 = 0.0;
    for (ra, rb) in a.iter().zip(b) {
        for (&x, &y) in ra.iter().zip(rb) {
            worst = worst.max((x - y).abs());
        }
    }
    worst
}

/// First cell where two matrices differ in their f64 bit patterns, if any.
/// Bitwise (not `==`) so a `-0.0` vs `+0.0` drift in the pruned engine's
/// reconstructed zeros fails loudly instead of hiding behind IEEE equality.
fn first_bit_mismatch(a: &[Vec<f64>], b: &[Vec<f64>]) -> Option<(usize, usize, f64, f64)> {
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        for (j, (&x, &y)) in ra.iter().zip(rb).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Some((i, j, x, y));
            }
        }
    }
    None
}

/// Run the full differential check on one world. `Err` carries a
/// human-readable description of the first disagreement.
fn check_world(config: &WorldConfig, supervised: bool) -> Result<(), String> {
    let d = datagen::to_catalog(&World::generate(config.clone()))
        .map_err(|e| format!("world does not convert: {e:?}"))?;
    // One reference engine, trained once, defines the weights both sides
    // use; per-(threads) engines below re-run cold with those weights.
    let mut reference_engine =
        Distinct::prepare(&d.catalog, "Publish", "author", engine_config(supervised))
            .map_err(|e| format!("prepare failed: {e:?}"))?;
    if supervised {
        reference_engine
            .train()
            .map_err(|e| format!("training failed: {e:?}"))?;
    }
    let weights = reference_engine.weights().clone();
    let min_sim = reference_engine.config().min_sim;

    // The oracle's independent path selection must agree with the
    // production PathSet before any numbers are compared.
    let (oracle_paths, oracle_fk) = oracle::select_paths(
        reference_engine.catalog(),
        "Publish",
        "author",
        reference_engine.config().max_path_len,
    )
    .ok_or("oracle path selection failed")?;
    let prod_paths = &reference_engine.paths().paths;
    if oracle_paths != *prod_paths || oracle_fk != reference_engine.paths().ref_fk {
        return Err(format!(
            "path selection disagrees: oracle {} paths, production {}",
            oracle_paths.len(),
            prod_paths.len()
        ));
    }

    let oracle_engine = OracleEngine::new(
        reference_engine.catalog(),
        oracle_paths,
        oracle_fk,
        weights.resem.clone(),
        weights.walk.clone(),
        Measure::Combined,
        Composite::Geometric,
    );

    for truth in &d.truths {
        let refs = &truth.refs;
        let tables = oracle_engine.pairwise(refs);
        let expected = oracle_engine.resolve(refs, min_sim);
        for threads in THREAD_COUNTS {
            // Cold: a fresh engine with an empty profile cache.
            let mut engine =
                Distinct::prepare(&d.catalog, "Publish", "author", engine_config(supervised))
                    .map_err(|e| format!("prepare failed: {e:?}"))?;
            engine
                .set_weights(weights.clone())
                .map_err(|e| format!("set_weights failed: {e:?}"))?;
            // Cold runs under the pruned default, so the oracle checks
            // below also vet the pruning engine — and its accounting must
            // balance: every scheduled kernel unit is either pruned under
            // a zero certificate or evaluated exactly.
            let cold = engine.resolve(&ResolveRequest::new(refs).threads(threads));
            if cold.degraded.is_some() {
                return Err(format!("unlimited run degraded for `{}`", truth.name));
            }
            let n_pairs = (refs.len() * refs.len().saturating_sub(1) / 2) as u64;
            let n_paths = engine.paths().len() as u64;
            if cold.exec.pairs_total != n_pairs * n_paths
                || cold.exec.pairs_pruned + cold.exec.pairs_exact != cold.exec.pairs_total
            {
                return Err(format!(
                    "`{}` kernel-unit accounting broken (threads={threads}): \
                     total {} (expected {}), pruned {} + exact {}",
                    truth.name,
                    cold.exec.pairs_total,
                    n_pairs * n_paths,
                    cold.exec.pairs_pruned,
                    cold.exec.pairs_exact
                ));
            }

            // Kernel differential: the exact reference path must produce
            // the same clustering and prune nothing.
            let exact_req = ResolveRequest::new(refs)
                .threads(threads)
                .similarity(Resemblance::Exact)
                .map_err(|e| format!("Exact kernel rejected: {e}"))?;
            let exact = engine.resolve(&exact_req);
            if exact.clustering.labels != cold.clustering.labels
                || exact.clustering.dendrogram.merges() != cold.clustering.dendrogram.merges()
            {
                return Err(format!(
                    "`{}` pruned run differs from the exact kernel (threads={threads})",
                    truth.name
                ));
            }
            if exact.exec.pairs_pruned != 0 || exact.exec.pairs_exact != exact.exec.pairs_total {
                return Err(format!(
                    "`{}` exact kernel claims pruning (threads={threads}): {:?}",
                    truth.name, exact.exec
                ));
            }

            // Stage probe (also warms the cache): per-stage 1e-9 agreement.
            let probe = engine.stage_probe(refs);
            for (stage, prod, oracle) in [
                ("resemblance", &probe.resemblance, &tables.resemblance),
                ("walk", &probe.walk, &tables.walk),
                ("similarity", &probe.similarity, &tables.similarity),
            ] {
                let delta = max_delta(prod, oracle);
                if delta > TOLERANCE {
                    return Err(format!(
                        "`{}` {stage} disagrees by {delta:e} (threads={threads})",
                        truth.name
                    ));
                }
            }

            // Losslessness at full precision: the pruned default's stage
            // tables must be *bit-identical* to the exact kernel's, not
            // merely within tolerance.
            let exact_probe = engine.stage_probe_with(refs, &Resemblance::Exact);
            for (stage, pruned, exact_t) in [
                ("resemblance", &probe.resemblance, &exact_probe.resemblance),
                ("walk", &probe.walk, &exact_probe.walk),
                ("similarity", &probe.similarity, &exact_probe.similarity),
            ] {
                if let Some((i, j, p, e)) = first_bit_mismatch(pruned, exact_t) {
                    return Err(format!(
                        "`{}` pruned {stage}[{i}][{j}] = {p:e} is not bit-identical \
                         to exact {e:e} (threads={threads})",
                        truth.name
                    ));
                }
            }

            // Warm: resolve again off the populated cache — byte-identical.
            let warm = engine.resolve(&ResolveRequest::new(refs).threads(threads));
            if warm.clustering.labels != cold.clustering.labels
                || warm.clustering.dendrogram.merges() != cold.clustering.dendrogram.merges()
            {
                return Err(format!(
                    "`{}` warm run differs from cold (threads={threads})",
                    truth.name
                ));
            }

            // Final clustering: labels exact, dendrogram merge by merge.
            if cold.clustering.labels != expected.labels {
                return Err(format!(
                    "`{}` labels disagree (threads={threads}): production {:?}, oracle {:?}",
                    truth.name, cold.clustering.labels, expected.labels
                ));
            }
            let prod_merges = cold.clustering.dendrogram.merges();
            if prod_merges.len() != expected.merges.len() {
                return Err(format!(
                    "`{}` merge counts disagree (threads={threads}): {} vs {}",
                    truth.name,
                    prod_merges.len(),
                    expected.merges.len()
                ));
            }
            for (p, o) in prod_merges.iter().zip(&expected.merges) {
                if (p.a, p.b, p.into, p.size) != (o.a, o.b, o.into, o.size)
                    || (p.similarity - o.similarity).abs() > TOLERANCE
                {
                    return Err(format!(
                        "`{}` dendrograms disagree (threads={threads}): \
                         production ({}, {}) -> {} @ {:.12}, oracle ({}, {}) -> {} @ {:.12}",
                        truth.name, p.a, p.b, p.into, p.similarity, o.a, o.b, o.into, o.similarity
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Check a world; on failure, shrink to a minimal counterexample first.
fn assert_world_agrees(config: WorldConfig, supervised: bool) {
    if let Err(original) = check_world(&config, supervised) {
        let minimal = datagen::shrink_world(config, |c| check_world(c, supervised).is_err());
        let failure = check_world(&minimal, supervised)
            .expect_err("shrinking preserves the failure predicate");
        panic!(
            "production pipeline disagrees with the oracle.\n\
             original failure: {original}\n\
             minimal failure:  {failure}\n\
             minimal config:\n{}",
            serde_json::to_string_pretty(&minimal).unwrap()
        );
    }
}

#[test]
fn world_1_two_entity_split() {
    assert_world_agrees(
        world_config(3, vec![AmbiguousSpec::new("Wei Wang", vec![6, 4])]),
        false,
    );
}

#[test]
fn world_2_three_entity_split() {
    assert_world_agrees(
        world_config(11, vec![AmbiguousSpec::new("Lei Li", vec![5, 4, 2])]),
        false,
    );
}

#[test]
fn world_3_uneven_split() {
    assert_world_agrees(
        world_config(19, vec![AmbiguousSpec::new("Bin Yu", vec![7, 2])]),
        false,
    );
}

#[test]
fn world_4_two_ambiguous_names() {
    assert_world_agrees(
        world_config(
            27,
            vec![
                AmbiguousSpec::new("Wei Wang", vec![4, 4]),
                AmbiguousSpec::new("Hui Fang", vec![3, 3]),
            ],
        ),
        false,
    );
}

#[test]
fn world_5_supervised_weights() {
    assert_world_agrees(
        world_config(35, vec![AmbiguousSpec::new("Rakesh Kumar", vec![5, 4])]),
        true,
    );
}

/// The zero certificates must actually fire on realistic data — a pruned
/// engine that never prunes would pass every losslessness check while
/// delivering none of the speedup the two-tier design exists for.
#[test]
fn pruned_kernel_prunes_on_a_real_world() {
    let config = world_config(3, vec![AmbiguousSpec::new("Wei Wang", vec![6, 4])]);
    let d = datagen::to_catalog(&World::generate(config)).unwrap();
    let engine = Distinct::prepare(&d.catalog, "Publish", "author", engine_config(false)).unwrap();
    let refs = &d.truths[0].refs;
    let outcome = engine.resolve(&ResolveRequest::new(refs));
    assert!(outcome.degraded.is_none());
    let exec = outcome.exec;
    assert_eq!(exec.pairs_pruned + exec.pairs_exact, exec.pairs_total);
    assert!(
        exec.pairs_pruned > 0,
        "no kernel unit pruned out of {} on a multi-entity world",
        exec.pairs_total
    );
}

/// Regression for the sorted-iteration (lint D001) conversion of
/// `WeightedSet`: the resemblance of two sets must be **bit-identical**
/// however their backing maps were populated — f64 addition is not
/// associative, and the old hash-order accumulation let insertion history
/// perturb low-order bits — and must still agree with the oracle's
/// literal Definition-2 union walk.
#[test]
fn resemblance_is_insertion_order_invariant_and_matches_oracle() {
    use oracle::Mass;
    use relgraph::{NodeId, WeightedSet};
    use relstore::{RelId, TupleId, TupleRef};

    // Deterministic pseudo-random weights over a moderately large support.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 + 1e-6
    };
    let a_pairs: Vec<(u32, f64)> = (0..200).map(|i| (i * 3 % 251, next())).collect();
    let b_pairs: Vec<(u32, f64)> = (0..180).map(|i| (i * 7 % 251, next())).collect();

    let build = |pairs: &[(u32, f64)]| -> WeightedSet {
        pairs.iter().map(|&(n, w)| (NodeId(n), w)).collect()
    };
    // Three insertion orders: as generated, reversed, and odd-then-even.
    let orders = |pairs: &[(u32, f64)]| -> Vec<Vec<(u32, f64)>> {
        let rev: Vec<_> = pairs.iter().rev().copied().collect();
        let mut split: Vec<_> = pairs.iter().skip(1).step_by(2).copied().collect();
        split.extend(pairs.iter().step_by(2).copied());
        vec![pairs.to_vec(), rev, split]
    };

    let reference = build(&a_pairs).resemblance(&build(&b_pairs));
    for ao in orders(&a_pairs) {
        for bo in orders(&b_pairs) {
            let r = build(&ao).resemblance(&build(&bo));
            assert_eq!(
                r.to_bits(),
                reference.to_bits(),
                "insertion order changed resemblance: {r} vs {reference}"
            );
        }
    }

    // And the production value still matches the oracle's literal
    // Definition-2 accumulation over the sorted union.
    let mass = |pairs: &[(u32, f64)]| -> Mass {
        let mut m = Mass::new();
        for &(n, w) in pairs {
            *m.entry(TupleRef::new(RelId(0), TupleId(n))).or_insert(0.0) += w;
        }
        m
    };
    let oracle_r = oracle::weighted_jaccard(&mass(&a_pairs), &mass(&b_pairs));
    assert!(
        (reference - oracle_r).abs() < 1e-12,
        "core {reference} vs oracle {oracle_r}"
    );
}

//! Fig. 5-style textual reports: predicted groups vs real entities, with
//! split/merge mistakes called out.

use eval::Confusion;

/// Render the clustering of one name against ground truth, in the spirit
/// of the paper's Fig. 5 visualization of "Wei Wang".
///
/// `gold` and `pred` are parallel label vectors over the name's
/// references; `entity_names` (optional) gives a display string per gold
/// label (e.g. an affiliation like "UNC-CH").
pub fn render_name_report(
    name: &str,
    gold: &[usize],
    pred: &[usize],
    entity_names: Option<&[String]>,
) -> String {
    let confusion = Confusion::from_labels(gold, pred);
    let scores = eval::pairwise_scores(gold, pred);
    let mut out = String::new();
    out.push_str(&format!(
        "=== {name}: {} references, {} real entities, {} predicted groups ===\n",
        gold.len(),
        confusion.gold_labels().len(),
        confusion.pred_labels().len()
    ));
    out.push_str(&format!(
        "precision {:.3}  recall {:.3}  f-measure {:.3}  purity {:.3}\n",
        scores.precision,
        scores.recall,
        scores.f_measure,
        confusion.purity()
    ));

    // Per-entity composition.
    for g in confusion.gold_labels() {
        let label = entity_names
            .and_then(|names| names.get(g))
            .cloned()
            .unwrap_or_else(|| format!("entity {g}"));
        let mut frags: Vec<(usize, usize)> = confusion
            .pred_labels()
            .into_iter()
            .filter_map(|p| {
                let c = confusion.count(g, p);
                (c > 0).then_some((p, c))
            })
            .collect();
        frags.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let frag_str: Vec<String> = frags
            .iter()
            .map(|(p, c)| format!("group {p}: {c}"))
            .collect();
        out.push_str(&format!(
            "  [{label}] ({} refs) -> {}\n",
            confusion.gold_size(g),
            frag_str.join(", ")
        ));
    }

    // Mistakes.
    let splits = confusion.splits();
    let merges = confusion.merges();
    if splits.is_empty() && merges.is_empty() {
        out.push_str("  no mistakes: perfect correspondence\n");
    } else {
        for (g, frags) in &splits {
            let label = entity_names
                .and_then(|names| names.get(*g))
                .cloned()
                .unwrap_or_else(|| format!("entity {g}"));
            out.push_str(&format!(
                "  SPLIT: {label} divided into {} groups ({})\n",
                frags.len(),
                frags
                    .iter()
                    .map(|(p, c)| format!("{c} in group {p}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        for (p, parts) in &merges {
            out.push_str(&format!(
                "  MERGE: group {p} mixes {} entities ({})\n",
                parts.len(),
                parts
                    .iter()
                    .map(|(g, c)| {
                        let label = entity_names
                            .and_then(|names| names.get(*g))
                            .cloned()
                            .unwrap_or_else(|| format!("entity {g}"));
                        format!("{c} of {label}")
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    out
}

/// Render the report as Graphviz DOT: one node per (entity, group) cell,
/// entity clusters boxed, predicted-group mistakes drawn as edges.
pub fn render_name_dot(name: &str, gold: &[usize], pred: &[usize]) -> String {
    let confusion = Confusion::from_labels(gold, pred);
    let mut out = String::new();
    out.push_str(&format!(
        "digraph \"{name}\" {{\n  rankdir=LR;\n  node [shape=box];\n"
    ));
    for g in confusion.gold_labels() {
        out.push_str(&format!(
            "  subgraph cluster_e{g} {{ label=\"entity {g} ({} refs)\";\n",
            confusion.gold_size(g)
        ));
        for p in confusion.pred_labels() {
            let c = confusion.count(g, p);
            if c > 0 {
                out.push_str(&format!("    e{g}_g{p} [label=\"group {p}: {c}\"];\n"));
            }
        }
        out.push_str("  }\n");
    }
    // Edges between cells of the same predicted group across entities
    // (merge mistakes).
    for (p, parts) in confusion.merges() {
        for (a, b) in parts.iter().zip(parts.iter().skip(1)) {
            out.push_str(&format!(
                "  e{}_g{p} -> e{}_g{p} [color=red, dir=both, label=\"merged\"];\n",
                a.0, b.0
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_report() {
        let gold = vec![0, 0, 1, 1];
        let s = render_name_report("Hui Fang", &gold, &gold, None);
        assert!(s.contains("Hui Fang"));
        assert!(s.contains("4 references"));
        assert!(s.contains("2 real entities"));
        assert!(s.contains("no mistakes"));
        assert!(s.contains("f-measure 1.000"));
    }

    #[test]
    fn split_is_reported() {
        let gold = vec![0, 0, 0, 0];
        let pred = vec![0, 0, 1, 1];
        let s = render_name_report("Michael Wagner", &gold, &pred, None);
        assert!(s.contains("SPLIT"), "{s}");
        assert!(s.contains("divided into 2 groups"));
    }

    #[test]
    fn merge_is_reported_with_entity_names() {
        let gold = vec![0, 0, 1];
        let pred = vec![0, 0, 0];
        let names = vec!["UNC-CH".to_string(), "Fudan U".to_string()];
        let s = render_name_report("Wei Wang", &gold, &pred, Some(&names));
        assert!(s.contains("MERGE"), "{s}");
        assert!(s.contains("UNC-CH"));
        assert!(s.contains("Fudan U"));
    }

    #[test]
    fn dot_output_is_structurally_valid() {
        let gold = vec![0, 0, 1, 1];
        let pred = vec![0, 0, 0, 1];
        let dot = render_name_dot("Wei Wang", &gold, &pred);
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("cluster_e0"));
        assert!(dot.contains("cluster_e1"));
        assert!(dot.contains("merged"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}

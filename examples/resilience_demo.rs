//! Resilience tour: checksummed persistence, checkpoint/resume, and
//! execution limits that degrade gracefully instead of hanging.
//!
//! Run: `cargo run --release --example resilience_demo`
//!
//! The flow mirrors the README "Checkpoint and resume" snippet: save the
//! catalog and a trained engine to disk, reload both in a "fresh process",
//! confirm the resumed engine resolves identically, then run resolution
//! under a deadline/budget/cancellation and show the degraded-result
//! reporting. Along the way it corrupts files on purpose to show the
//! load-time detection.

use std::time::Duration;

use datagen::{to_catalog, AmbiguousSpec, World, WorldConfig};
use distinct::{CancelToken, Distinct, DistinctConfig, RunControl, TrainingConfig};
use relstore::{persist, StoreError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("distinct_resilience_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;

    // --- 1. A synthetic DBLP-style world with two "Wei Wang"s. ------------
    let mut config = WorldConfig::tiny(3);
    config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![4, 3])];
    let dataset = to_catalog(&World::generate(config))?;

    let distinct_config = DistinctConfig {
        training: TrainingConfig {
            positives: 20,
            negatives: 20,
            ..Default::default()
        },
        ..Default::default()
    };

    // --- 2. Persist the catalog (atomic writes + checksummed manifest). ---
    let store = dir.join("catalog");
    persist::save_catalog(&dataset.catalog, &store)?;
    let reloaded = persist::load_catalog(&store)?;
    println!(
        "catalog round trip: {} relations saved and reloaded",
        reloaded.relation_count()
    );

    // --- 3. Train, resolve, checkpoint. ------------------------------------
    let mut engine = Distinct::prepare(&reloaded, "Publish", "author", distinct_config.clone())?;
    engine.train()?;
    let refs = engine.references_of("Wei Wang");
    let before = engine
        .resolve(&distinct::ResolveRequest::new(&refs))
        .clustering;
    println!(
        "trained engine: \"Wei Wang\" {} references -> {} people",
        refs.len(),
        before.cluster_count()
    );

    let ckpt = dir.join("engine.ckpt");
    engine.save_checkpoint(&ckpt)?; // atomic, checksummed
    println!(
        "checkpoint written: {} bytes",
        std::fs::metadata(&ckpt)?.len()
    );

    // --- 4. "Fresh process": reload catalog + checkpoint, resolve again. ---
    let catalog = persist::load_catalog(&store)?;
    let mut resumed = Distinct::prepare(&catalog, "Publish", "author", distinct_config)?;
    resumed.load_checkpoint(&ckpt)?; // weights + model + profile cache
    let wei = resumed.references_of("Wei Wang");
    let after = resumed
        .resolve(&distinct::ResolveRequest::new(&wei))
        .clustering;
    assert_eq!(
        before.groups(),
        after.groups(),
        "resumed engine must resolve identically"
    );
    println!(
        "resumed engine resolves identically ({} clusters)",
        after.cluster_count()
    );

    // --- 5. Resolution under limits: valid clustering, degradation report. -
    let ctl = RunControl::new()
        .with_deadline(Duration::from_secs(30))
        .with_budget(5);
    let outcome = resumed.resolve(&distinct::ResolveRequest::new(&refs).control(&ctl));
    assert_eq!(outcome.clustering.labels.len(), refs.len());
    match &outcome.degraded {
        Some(d) => println!("tight budget: partial result ({d})"),
        None => println!("tight budget: completed anyway"),
    }

    let token = CancelToken::new();
    token.cancel();
    let ctl = RunControl::new().with_token(token);
    let outcome = resumed.resolve(&distinct::ResolveRequest::new(&refs).control(&ctl));
    assert!(!outcome.is_complete());
    println!(
        "pre-cancelled run: still a full partition over {} refs ({})",
        outcome.clustering.labels.len(),
        outcome.degraded.expect("cancelled run reports degradation")
    );

    // --- 6. Corruption is caught at load, with a typed error. --------------
    let victim = store.join("Publish.csv");
    let mut bytes = std::fs::read(&victim)?;
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&victim, &bytes)?;
    match persist::load_catalog(&store) {
        Err(StoreError::Corrupt { file, reason }) => {
            println!("flipped one bit in {file}: load refused ({reason})");
        }
        other => panic!("corruption must be detected, got {other:?}"),
    }

    match persist::load_catalog(&dir.join("never_saved")) {
        Err(StoreError::MissingManifest { .. }) => {
            println!("missing store: reported as missing manifest, not a panic");
        }
        other => panic!("expected MissingManifest, got {other:?}"),
    }

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}

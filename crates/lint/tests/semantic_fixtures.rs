//! Fixture-based self-tests for the interprocedural (semantic) lints.
//!
//! Each subdirectory of `tests/fixtures/semantic/` is one virtual
//! workspace. Every `*.rs` file in a group declares its location with
//! `//@ path:` / `//@ crate:` headers, its crate's *normal* dependencies
//! with `//@ deps:` (comma-separated crate directory names), and
//! optionally a `//@ package:` display name. Expected findings are `//~
//! D1xx` markers on the offending lines, exactly as in the syntactic
//! fixture suite. The harness builds the symbol table and call graph the
//! same way `check --semantic` does (explicit topology in place of
//! `Cargo.toml` parsing), runs the per-file semantic passes plus the
//! interprocedural ones, applies suppressions, and asserts the (lint,
//! line) multiset per file matches the markers — no more, no less.

use lint::callgraph::{self, CallGraph};
use lint::catalog::{Finding, LintId};
use lint::model::{FileCtx, Role};
use lint::symbols::Workspace;
use lint::{passes, suppress, Mode};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

struct SemFile {
    /// Fixture file name within its group, for messages.
    name: String,
    /// Declared virtual workspace path.
    path: String,
    crate_name: String,
    /// Declared direct normal dependencies of `crate_name`.
    deps: Vec<String>,
    /// Declared `[package] name` of `crate_name`, if any.
    package: Option<String>,
    src: String,
    /// Expected (lint, 1-based line) pairs, from the `//~` markers.
    expected: Vec<(LintId, u32)>,
}

struct Group {
    name: String,
    files: Vec<SemFile>,
}

fn semantic_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/semantic")
}

fn parse_sem_file(name: &str, src: &str) -> SemFile {
    let mut path = None;
    let mut crate_name = None;
    let mut deps = Vec::new();
    let mut package = None;
    let mut expected = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        if let Some(rest) = line.trim().strip_prefix("//@") {
            let (key, value) = rest
                .split_once(':')
                .unwrap_or_else(|| panic!("{name}:{lineno}: malformed `//@` header"));
            let value = value.trim().to_string();
            match key.trim() {
                "path" => path = Some(value),
                "crate" => crate_name = Some(value),
                "deps" => {
                    deps.extend(
                        value
                            .split(',')
                            .map(|d| d.trim().to_string())
                            .filter(|d| !d.is_empty()),
                    );
                }
                "package" => package = Some(value),
                other => panic!("{name}:{lineno}: unknown header `{other}`"),
            }
        }
        if let Some(pos) = line.find("//~") {
            for word in line[pos + 3..].split_whitespace() {
                let id = LintId::parse(word)
                    .unwrap_or_else(|| panic!("{name}:{lineno}: bad marker id `{word}`"));
                expected.push((id, lineno));
            }
        }
    }
    SemFile {
        name: name.to_string(),
        path: path.unwrap_or_else(|| panic!("{name}: missing `//@ path:` header")),
        crate_name: crate_name.unwrap_or_else(|| panic!("{name}: missing `//@ crate:` header")),
        deps,
        package,
        src: src.to_string(),
        expected,
    }
}

fn load_groups() -> Vec<Group> {
    let dir = semantic_dir();
    let mut groups = Vec::new();
    let mut group_names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry"))
        .filter(|e| e.path().is_dir())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    group_names.sort();
    for g in group_names {
        let gdir = dir.join(&g);
        let mut file_names: Vec<String> = std::fs::read_dir(&gdir)
            .unwrap_or_else(|e| panic!("read {}: {e}", gdir.display()))
            .map(|e| {
                e.expect("dir entry")
                    .file_name()
                    .to_string_lossy()
                    .into_owned()
            })
            .filter(|n| n.ends_with(".rs"))
            .collect();
        file_names.sort();
        let files = file_names
            .iter()
            .map(|n| {
                let src = std::fs::read_to_string(gdir.join(n)).expect("read fixture");
                parse_sem_file(&format!("{g}/{n}"), &src)
            })
            .collect();
        groups.push(Group { name: g, files });
    }
    groups
}

/// Transitive normal-dependency closures (including self) from the
/// groups' declared direct deps — the explicit-topology stand-in for
/// `CrateGraph::normal_closure`.
fn closures_of(files: &[SemFile]) -> BTreeMap<String, BTreeSet<String>> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in files {
        let entry = direct.entry(f.crate_name.clone()).or_default();
        entry.extend(f.deps.iter().cloned());
    }
    let crates: Vec<String> = direct.keys().cloned().collect();
    let mut closures = BTreeMap::new();
    for c in &crates {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut stack = vec![c.clone()];
        while let Some(d) = stack.pop() {
            if seen.insert(d.clone()) {
                if let Some(next) = direct.get(&d) {
                    stack.extend(next.iter().cloned());
                }
            }
        }
        closures.insert(c.clone(), seen);
    }
    closures
}

/// Run one group through the same pipeline `lint::analyze_mode` uses in
/// semantic mode, returning findings keyed by the fixture file's name.
fn findings_for(group: &Group) -> BTreeMap<String, Vec<(LintId, u32)>> {
    let ctxs: Vec<FileCtx> = group
        .files
        .iter()
        .map(|f| FileCtx::new(&f.path, &f.crate_name, Role::Library, &f.src))
        .collect();
    let refs: Vec<&FileCtx> = ctxs.iter().collect();
    let packages: BTreeMap<String, String> = group
        .files
        .iter()
        .filter_map(|f| f.package.clone().map(|p| (f.crate_name.clone(), p)))
        .collect();
    let ws = Workspace::build(&refs, packages, closures_of(&group.files));
    let graph = CallGraph::build(ws);
    let mut semantic: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in callgraph::run_semantic(&graph, &ctxs) {
        semantic.entry(f.file.clone()).or_default().push(f);
    }
    let mut out = BTreeMap::new();
    for (file, ctx) in group.files.iter().zip(&ctxs) {
        let (mut sups, malformed) = suppress::collect(ctx);
        let mut findings: Vec<Finding> = malformed;
        let mut raw = passes::run_semantic_file(ctx);
        raw.extend(semantic.remove(&ctx.path).unwrap_or_default());
        findings.extend(suppress::apply(raw, &mut sups));
        for s in &sups {
            if !s.used && s.ids.iter().any(|id| Mode::Semantic.is_active(*id)) {
                findings.push(Finding {
                    id: LintId::D000,
                    file: ctx.path.clone(),
                    line: s.comment_line,
                    message: "unused suppression".into(),
                });
            }
        }
        let mut pairs: Vec<(LintId, u32)> = findings.iter().map(|f| (f.id, f.line)).collect();
        pairs.sort_by_key(|&(id, line)| (line, id));
        out.insert(file.name.clone(), pairs);
    }
    out
}

#[test]
fn every_semantic_fixture_matches_its_markers() {
    let groups = load_groups();
    assert!(
        groups.len() >= 4,
        "expected the full semantic fixture set, found {}",
        groups.len()
    );
    for g in &groups {
        let got = findings_for(g);
        for f in &g.files {
            let mut expected = f.expected.clone();
            expected.sort_by_key(|&(id, line)| (line, id));
            assert_eq!(
                got[&f.name], expected,
                "{}: findings disagree with //~ markers\n  got:      {:?}\n  expected: {:?}",
                f.name, got[&f.name], expected
            );
        }
    }
}

#[test]
fn semantic_fixtures_cover_every_semantic_lint() {
    let groups = load_groups();
    let seen: BTreeSet<LintId> = groups
        .iter()
        .flat_map(|g| g.files.iter())
        .flat_map(|f| f.expected.iter().map(|&(id, _)| id))
        .collect();
    for id in LintId::ALL {
        // The semantic-only lints are exactly the ones syntactic mode
        // never runs.
        if Mode::Syntactic.is_active(id) {
            continue;
        }
        assert!(
            seen.contains(&id),
            "no semantic fixture exercises {id:?}; add a `//~ {}` case",
            id.name()
        );
    }
}

#[test]
fn cross_file_panic_chain_names_the_entry_point() {
    let groups = load_groups();
    let g = groups
        .iter()
        .find(|g| g.name == "panic_reach")
        .expect("panic_reach group exists");
    let ctxs: Vec<FileCtx> = g
        .files
        .iter()
        .map(|f| FileCtx::new(&f.path, &f.crate_name, Role::Library, &f.src))
        .collect();
    let refs: Vec<&FileCtx> = ctxs.iter().collect();
    let packages: BTreeMap<String, String> = g
        .files
        .iter()
        .filter_map(|f| f.package.clone().map(|p| (f.crate_name.clone(), p)))
        .collect();
    let ws = Workspace::build(&refs, packages, closures_of(&g.files));
    let graph = CallGraph::build(ws);
    let d101: Vec<Finding> = graph.d101_panic_reach();
    // `run`'s unwrap and `proven`'s suppressed one are both reachable.
    assert_eq!(d101.len(), 2, "{d101:?}");
    let on_run = d101
        .iter()
        .find(|f| f.message.contains("can panic") && f.line == 10)
        .expect("finding on run's unwrap");
    // The chain is rendered with package-qualified hops from the entry.
    assert!(
        on_run.message.contains("distinct::Distinct::resolve"),
        "{}",
        on_run.message
    );
    assert!(on_run.message.contains(" → "), "{}", on_run.message);
    assert!(
        on_run.message.contains("cluster::run"),
        "{}",
        on_run.message
    );
}

#[test]
fn semantic_fixture_paths_are_invisible_to_real_scans() {
    assert_eq!(
        lint::model::classify("crates/lint/tests/fixtures/semantic/panic_reach/core.rs"),
        None
    );
}

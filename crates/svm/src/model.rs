//! Trained models: the primal linear model and the dual (kernel) model.

use crate::data::{dot, Dataset};
use crate::kernel::Kernel;
use serde::{Deserialize, Serialize};

/// A linear decision function `f(x) = w · x + b`, predicting `sign(f(x))`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Weight vector.
    pub weights: Vec<f64>,
    /// Bias term.
    pub bias: f64,
}

impl LinearModel {
    /// Raw decision value `w · x + b`.
    pub fn decision(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x) + self.bias
    }

    /// Predicted label (+1 / −1). Ties break positive.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Fraction of `data` classified correctly.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data.iter().filter(|(x, y)| self.predict(x) == *y).count();
        correct as f64 / data.len() as f64
    }

    /// Weights with negative components clamped to zero.
    ///
    /// DISTINCT uses the learned weights as per-join-path importances in a
    /// similarity aggregation, where a negative weight would make a
    /// similarity *reduce* overall similarity; the paper observes that
    /// unimportant paths get weights "close to zero and can be ignored".
    pub fn clamped_nonnegative(&self) -> LinearModel {
        LinearModel {
            weights: self.weights.iter().map(|&w| w.max(0.0)).collect(),
            bias: self.bias,
        }
    }

    /// L2 norm of the weight vector.
    pub fn weight_norm(&self) -> f64 {
        dot(&self.weights, &self.weights).sqrt()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("LinearModel serializes") // distinct-lint: allow(D002, reason="LinearModel is a flat struct of f64s and strings; serde_json cannot fail on it (no maps with non-string keys)")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Option<LinearModel> {
        serde_json::from_str(s).ok()
    }
}

/// A dual-form kernel model: support vectors with their coefficients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelModel {
    /// Kernel used at training time.
    pub kernel: Kernel,
    /// Support vectors.
    pub support_vectors: Vec<Vec<f64>>,
    /// `alpha_i * y_i` per support vector.
    pub coefficients: Vec<f64>,
    /// Bias term.
    pub bias: f64,
}

impl KernelModel {
    /// Raw decision value `Σ coef_i K(sv_i, x) + b`.
    pub fn decision(&self, x: &[f64]) -> f64 {
        self.support_vectors
            .iter()
            .zip(&self.coefficients)
            .map(|(sv, &c)| c * self.kernel.eval(sv, x))
            .sum::<f64>()
            + self.bias
    }

    /// Predicted label (+1 / −1).
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Fraction of `data` classified correctly.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data.iter().filter(|(x, y)| self.predict(x) == *y).count();
        correct as f64 / data.len() as f64
    }

    /// Number of support vectors.
    pub fn sv_count(&self) -> usize {
        self.support_vectors.len()
    }

    /// For a linear kernel, collapse the dual form into a [`LinearModel`]
    /// (`w = Σ coef_i · sv_i`). Returns `None` for nonlinear kernels.
    pub fn to_linear(&self) -> Option<LinearModel> {
        if !self.kernel.is_linear() {
            return None;
        }
        let dim = self.support_vectors.first().map_or(0, Vec::len);
        let mut w = vec![0.0; dim];
        for (sv, &c) in self.support_vectors.iter().zip(&self.coefficients) {
            for (wi, &xi) in w.iter_mut().zip(sv) {
                *wi += c * xi;
            }
        }
        Some(LinearModel {
            weights: w,
            bias: self.bias,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LinearModel {
        LinearModel {
            weights: vec![1.0, -2.0],
            bias: 0.5,
        }
    }

    #[test]
    fn decision_and_predict() {
        let m = model();
        assert_eq!(m.decision(&[1.0, 1.0]), -0.5);
        assert_eq!(m.predict(&[1.0, 1.0]), -1.0);
        assert_eq!(m.predict(&[1.0, 0.0]), 1.0);
        // Tie breaks positive.
        assert_eq!(m.predict(&[-0.5, 0.0]), 1.0);
    }

    #[test]
    fn accuracy_counts() {
        let m = model();
        let d = Dataset::from_parts(
            vec![vec![1.0, 0.0], vec![1.0, 1.0], vec![0.0, 1.0]],
            vec![1.0, -1.0, 1.0],
        )
        .unwrap();
        // predictions: +1, -1, -1 -> 2/3 correct.
        assert!((m.accuracy(&d) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.accuracy(&Dataset::new()), 0.0);
    }

    #[test]
    fn clamping() {
        let m = model().clamped_nonnegative();
        assert_eq!(m.weights, vec![1.0, 0.0]);
    }

    #[test]
    fn norm() {
        assert!((model().weight_norm() - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip() {
        let m = model();
        let s = m.to_json();
        let back = LinearModel::from_json(&s).unwrap();
        assert_eq!(m, back);
        assert!(LinearModel::from_json("not json").is_none());
    }

    #[test]
    fn kernel_model_linear_collapse() {
        let km = KernelModel {
            kernel: Kernel::Linear,
            support_vectors: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            coefficients: vec![2.0, -1.0],
            bias: 0.25,
        };
        let lm = km.to_linear().unwrap();
        assert_eq!(lm.weights, vec![2.0, -1.0]);
        assert_eq!(lm.bias, 0.25);
        // Decisions agree everywhere.
        for x in [[0.3, -0.7], [1.5, 2.0], [0.0, 0.0]] {
            assert!((km.decision(&x) - lm.decision(&x)).abs() < 1e-12);
        }
        assert_eq!(km.sv_count(), 2);
    }

    #[test]
    fn nonlinear_does_not_collapse() {
        let km = KernelModel {
            kernel: Kernel::Rbf { gamma: 1.0 },
            support_vectors: vec![vec![1.0]],
            coefficients: vec![1.0],
            bias: 0.0,
        };
        assert!(km.to_linear().is_none());
    }

    #[test]
    fn kernel_model_accuracy() {
        let km = KernelModel {
            kernel: Kernel::Linear,
            support_vectors: vec![vec![1.0]],
            coefficients: vec![1.0],
            bias: -0.5,
        };
        let d = Dataset::from_parts(vec![vec![1.0], vec![0.0]], vec![1.0, -1.0]).unwrap();
        assert_eq!(km.accuracy(&d), 1.0);
    }
}

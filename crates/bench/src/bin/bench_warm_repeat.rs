//! Experiment S4 — warm repeat-resolve vs. the first (cold) pass.
//!
//! The rung behind DESIGN.md §18: one engine resolves every Table 1
//! ambiguous name twice. The first pass is cold — profiles are computed
//! on demand and the engine's `ArenaPool` mints its pooled `SetArena`s
//! as the similarity stages first need them. The second pass replays the
//! same names against the warm engine: profiles come from the cache and
//! every similarity stage rebuilds a recycled arena in place instead of
//! allocating a fresh one per call.
//!
//! The rung records the wall-time and allocation delta between the two
//! passes (`allocs` / `bytes_alloc` come from the counting allocator
//! behind the `bench` feature; without it the counters read zero and
//! `"metered": false` says so), and cross-checks that every name's warm
//! partition is bit-identical to its cold one — reuse must be invisible
//! in the tables.
//!
//! Run: `cargo run --release -p distinct-bench --features bench \
//!       --bin bench_warm_repeat -- [laptop|mid]` (default: `laptop`).
//! Writes `benchmarks/BENCH_warm_repeat.json`.

use datagen::{stream_to_catalog, DblpDataset, WorldConfig};
use distinct::{Distinct, DistinctConfig, ResolveRequest};
use distinct_bench::{AllocSnapshot, BenchError, StageContext};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Stage context for this binary.
const BIN: &str = "bench_warm_repeat";

fn config(scale: &str) -> WorldConfig {
    match scale {
        "laptop" => WorldConfig {
            seed: 7,
            ambiguous: WorldConfig::table1_ambiguous(),
            ..Default::default()
        },
        "mid" => WorldConfig {
            seed: 7,
            n_authors: 8_000,
            n_venues: 160,
            n_communities: 64,
            first_name_pool: 1_600,
            last_name_pool: 3_600,
            ambiguous: WorldConfig::table1_ambiguous(),
            ..Default::default()
        },
        other => {
            eprintln!("unknown scale `{other}` (want laptop|mid)");
            std::process::exit(2);
        }
    }
}

fn out_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks")
}

fn ms(d: std::time::Duration) -> u64 {
    d.as_millis() as u64
}

fn ms_frac(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One full pass over the Table 1 names; returns the per-name partitions
/// plus the pass's wall time and allocation delta.
fn pass(
    engine: &Distinct,
    names: &[String],
) -> Result<(Vec<Vec<usize>>, f64, AllocSnapshot), BenchError> {
    let a = AllocSnapshot::now();
    let t = Instant::now();
    let mut labels = Vec::with_capacity(names.len());
    for name in names {
        let refs = engine.references_of(name);
        if refs.is_empty() {
            return Err(BenchError {
                bin: BIN,
                stage: "collect the ambiguous references",
                detail: format!("no references for {name}"),
            });
        }
        let outcome = engine.resolve(&ResolveRequest::new(&refs));
        if !outcome.is_complete() {
            return Err(BenchError {
                bin: BIN,
                stage: "resolve an ambiguous name",
                detail: format!("resolve degraded for {name}"),
            });
        }
        labels.push(outcome.clustering.labels);
    }
    Ok((labels, ms_frac(t.elapsed()), a.delta()))
}

fn main() -> Result<(), BenchError> {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "laptop".into());
    let config = config(&scale);
    let names: Vec<String> = config.ambiguous.iter().map(|s| s.name.clone()).collect();

    eprintln!(
        "[{scale}] generating world ({} authors)...",
        config.n_authors
    );
    let t0 = Instant::now();
    let dataset: DblpDataset =
        stream_to_catalog(&config).stage(BIN, "generate the streamed world")?;
    let generate_ms = ms(t0.elapsed());
    let papers = dataset
        .catalog
        .relation(
            dataset
                .catalog
                .relation_id("Publications")
                .stage(BIN, "locate the Publications relation")?,
        )
        .len();
    let references = dataset.catalog.relation(dataset.publish).len();

    let t1 = Instant::now();
    let engine = Distinct::prepare(
        &dataset.catalog,
        "Publish",
        "author",
        DistinctConfig::default(),
    )
    .stage(BIN, "prepare the engine")?;
    let prepare_ms = ms(t1.elapsed());
    eprintln!(
        "[{scale}] {papers} papers / {references} references; \
         resolving {} names cold, then warm...",
        names.len()
    );

    let (cold_labels, cold_ms, cold_alloc) = pass(&engine, &names)?;
    let (warm_labels, warm_ms, warm_alloc) = pass(&engine, &names)?;
    assert_eq!(
        warm_labels, cold_labels,
        "a warm repeat resolve diverged from the cold pass — arena or \
         cache reuse leaked into the tables"
    );

    let metered = distinct_bench::metering_enabled();
    if metered {
        assert!(
            warm_alloc.allocs < cold_alloc.allocs,
            "the warm pass must allocate less than the cold pass \
             (warm {} vs cold {})",
            warm_alloc.allocs,
            cold_alloc.allocs
        );
    }
    let wall_ratio = cold_ms / warm_ms.max(1e-6);
    let alloc_ratio = cold_alloc.allocs as f64 / (warm_alloc.allocs as f64).max(1.0);

    let json = format!(
        "{{\n  \"scenario\": \"warm_repeat\",\n  \"format\": 1,\n  \"scale\": \"{scale}\",\n  \
         \"weights\": \"uniform\",\n  \"names\": {},\n  \"world\": {{\n    \
         \"authors\": {},\n    \"papers\": {papers},\n    \"references\": {references}\n  }},\n  \
         \"generate_ms\": {generate_ms},\n  \"prepare_ms\": {prepare_ms},\n  \
         \"alloc_metered\": {metered},\n  \
         \"cold\": {{ \"wall_ms\": {cold_ms:.3}, \"allocs\": {}, \"bytes_alloc\": {} }},\n  \
         \"warm\": {{ \"wall_ms\": {warm_ms:.3}, \"allocs\": {}, \"bytes_alloc\": {} }},\n  \
         \"delta\": {{\n    \"wall_ms\": {:.3},\n    \"allocs\": {},\n    \"bytes_alloc\": {},\n    \
         \"wall_ratio\": {wall_ratio:.2},\n    \"alloc_ratio\": {alloc_ratio:.2}\n  }}\n}}\n",
        names.len(),
        config.n_authors,
        cold_alloc.allocs,
        cold_alloc.bytes_alloc,
        warm_alloc.allocs,
        warm_alloc.bytes_alloc,
        cold_ms - warm_ms,
        cold_alloc.allocs.saturating_sub(warm_alloc.allocs),
        cold_alloc.bytes_alloc.saturating_sub(warm_alloc.bytes_alloc),
    );

    let dir = out_dir();
    std::fs::create_dir_all(&dir).stage(BIN, "create the benchmarks/ directory")?;
    let path = dir.join("BENCH_warm_repeat.json");
    std::fs::write(&path, &json).stage(BIN, "write the rung JSON")?;
    eprintln!(
        "[{scale}] cold {cold_ms:.1} ms / warm {warm_ms:.1} ms ({wall_ratio:.1}x), \
         allocs {} -> {} ({alloc_ratio:.1}x) -> {}",
        cold_alloc.allocs,
        warm_alloc.allocs,
        path.display()
    );
    Ok(())
}

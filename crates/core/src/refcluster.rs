//! Clustering references with the composite similarity measure (paper §4).
//!
//! Cluster similarity combines, by geometric mean:
//!
//! * **average set resemblance** — Average-Link over the weighted per-pair
//!   resemblances (robust to individual misleading linkages); and
//! * **collective random walk probability** — the probability of walking
//!   from one cluster to the other, treating each cluster as a single
//!   object (robust to an author's weakly linked collaboration partitions).
//!
//! Both are maintained *incrementally* (§4.2): the tables hold pairwise
//! **sums**, so the values for a merged cluster are the sums of its
//! children's values — O(live clusters) per merge instead of a full
//! recomputation.

use crate::config::{CompositeMode, MeasureMode};
use crate::features::{directed_walk_features, resemblance_features, weighted_sum, Profile};
use crate::learn::PathWeights;
use cluster::Merger;
use relgraph::{ArenaPool, Resemblance, SetArena};
use relstore::FxHashMap;
use std::borrow::Borrow;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

/// Similarity kernel-unit accounting of one matrix build.
///
/// One *unit* is one (unordered reference pair, join path) evaluation,
/// covering that pair's set resemblance and both directed walks along the
/// path — so `total = pairs × paths`. A unit is **pruned** when the
/// engine proved all three kernel values exactly zero without running a
/// merge-join for the pair, **cached** when its values were copied from a
/// previous build's tables (incremental resolution), and **exact**
/// otherwise (at least one kernel evaluated, possibly reused from a
/// content-identical row pair). `pruned + exact + cached == total` holds
/// by construction; `cached` is zero for every cold matrix build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairCounters {
    /// Kernel units scheduled (`pairs × paths`).
    pub total: u64,
    /// Units skipped under a provably-exactly-zero certificate.
    pub pruned: u64,
    /// Units that ran (or reused) at least one exact kernel.
    pub exact: u64,
    /// Units copied from cached tables of a previous build.
    pub cached: u64,
    /// Distinct neighbor-set rows interned into [`SetArena`]s during the
    /// build (0 under [`Resemblance::Exact`] and on table-cache hits).
    pub interned: u64,
}

/// One assembly chunk's `(resemblance, walk i→j, walk j→i)` triples plus
/// the exact kernel units the chunk consumed.
type ChunkValues = (Vec<(f64, f64, f64)>, u64);

/// Per-path kernel memos of the pruned similarity build: interned row
/// assignments plus the *nonzero* kernel values, computed once per
/// distinct row pair. A missing memo entry is a proof that the kernel
/// value is exactly zero.
struct PathKernels {
    /// Distinct forward-set row of each reference.
    row_f: Vec<u32>,
    /// Distinct backward-set row of each reference.
    row_b: Vec<u32>,
    /// Per distinct row: is the row empty? (Decides the zero's sign for
    /// walk misses: `directed_walk`'s `Sum` folds from `-0.0`, which only
    /// survives when the iterated support is empty.)
    row_empty: Vec<bool>,
    /// Resemblance per normalized `(min, max)` forward-row pair.
    resem: FxHashMap<(u32, u32), f64>,
    /// Walk dot product per normalized `(min, max)` row pair (the dot is
    /// symmetric in its rows, so one entry serves both directions).
    dot: FxHashMap<(u32, u32), f64>,
    /// Distinct rows interned into this path's arena (accounting).
    interned: u64,
}

impl PathKernels {
    fn resem_at(&self, i: usize, j: usize) -> Option<f64> {
        let (a, b) = (self.row_f[i], self.row_f[j]);
        self.resem.get(&(a.min(b), a.max(b))).copied()
    }

    /// Walk dot `i → j` (forward row of `i` against backward row of `j`).
    fn dot_at(&self, i: usize, j: usize) -> Option<f64> {
        let (a, b) = (self.row_f[i], self.row_b[j]);
        self.dot.get(&(a.min(b), a.max(b))).copied()
    }

    /// The exact kernel's zero for a pruned `i → j` walk: `-0.0` when
    /// either side's support is empty, `+0.0` when both are non-empty but
    /// provably disjoint — bit-identical to what `directed_walk` returns.
    fn zero_walk(&self, i: usize, j: usize) -> f64 {
        if self.row_empty[self.row_f[i] as usize] || self.row_empty[self.row_b[j] as usize] {
            -0.0
        } else {
            0.0
        }
    }
}

/// A [`Merger`] implementing DISTINCT's composite cluster similarity.
#[derive(Debug, Clone)]
pub struct DistinctMerger {
    /// `resem[a][b]` = Σ over member pairs of weighted set resemblance
    /// (symmetric).
    resem: Vec<Vec<f64>>,
    /// `dwalk[a][b]` = Σ over member pairs of weighted *directed* walk
    /// probability from a member of `a` to a member of `b` (asymmetric).
    dwalk: Vec<Vec<f64>>,
    /// Cluster sizes (leaves = 1).
    sizes: Vec<usize>,
    measure: MeasureMode,
    composite: CompositeMode,
    n: usize,
}

impl DistinctMerger {
    /// Build the pairwise tables from reference profiles with the exact
    /// kernel — the canonical reference for tests and oracles.
    pub fn from_profiles(
        profiles: &[Profile],
        weights: &PathWeights,
        measure: MeasureMode,
        composite: CompositeMode,
    ) -> Self {
        Self::from_profiles_exec(
            profiles,
            weights,
            measure,
            composite,
            &Resemblance::Exact,
            &exec::Executor::sequential(),
            &|_| true,
        )
        .0
        // distinct-lint: allow(D002, reason="guard is the constant true closure above, so the build can never be refused")
        .expect("permissive guard never stops the matrix build")
    }

    /// Like [`DistinctMerger::from_profiles`], but computes the O(n²)
    /// pairwise feature tables **in parallel** — this is the
    /// similarity-matrix hot path of resolution. The resulting tables are
    /// bit-identical for any thread count *and any kernel*:
    ///
    /// * [`Resemblance::Exact`] fans the flat upper-triangle pair index
    ///   space out in chunks and runs every merge-join kernel directly;
    /// * [`Resemblance::Pruned`] first builds, per join path, a columnar
    ///   [`SetArena`] over all forward and backward sets (deduplicating
    ///   content-identical rows), sketches and an exact support-overlap
    ///   matrix over the distinct rows, and evaluates only the kernels
    ///   not *proven* exactly zero — then assembles the same
    ///   upper-triangle chunks from memo lookups, where a missing entry
    ///   is a proof the exact kernel returns zero. Only provably-zero
    ///   work is skipped, so the tables (and every downstream merge) are
    ///   bit-identical to `Exact` — the losslessness contract.
    ///
    /// `guard` is charged with kernel-pair counts (per assembly chunk,
    /// and per arena build / surviving kernel batch on the pruned path);
    /// if it trips, pending work is abandoned and `None` is returned — a
    /// partially filled matrix would silently bias the clustering toward
    /// whichever pairs happened to be computed. The [`exec::ParStats`]
    /// records how far the stage got either way, and the returned
    /// [`PairCounters`] record how many kernel units the chosen kernel
    /// pruned (zeroed on an interrupted build, like the tables).
    pub fn from_profiles_exec<P>(
        profiles: &[P],
        weights: &PathWeights,
        measure: MeasureMode,
        composite: CompositeMode,
        kernel: &Resemblance,
        executor: &exec::Executor,
        guard: &(dyn Fn(u64) -> bool + Sync),
    ) -> (Option<Self>, exec::ParStats, PairCounters)
    where
        P: Borrow<Profile> + Sync,
    {
        // distinct-lint: scratch(transient: oracle and test callers build and drop a private pool per call; engine callers thread the engine-owned pool through from_profiles_pooled instead)
        let pool = ArenaPool::new();
        Self::from_profiles_pooled(
            profiles, weights, measure, composite, kernel, executor, guard, &pool,
        )
    }

    /// Like [`DistinctMerger::from_profiles_exec`], but the pruned
    /// kernel's per-path [`SetArena`]s are taken from (and returned to)
    /// `pool` instead of being rebuilt from cold heap on every call —
    /// the scratch seam that lets an engine reuse arena capacity across
    /// resolves of different names. Tables are bit-identical to the
    /// per-call build: [`SetArena::rebuild`] is content-equivalent to
    /// `SetArena::build`, and the exact path never touches the pool.
    #[allow(clippy::too_many_arguments)]
    pub fn from_profiles_pooled<P>(
        profiles: &[P],
        weights: &PathWeights,
        measure: MeasureMode,
        composite: CompositeMode,
        kernel: &Resemblance,
        executor: &exec::Executor,
        guard: &(dyn Fn(u64) -> bool + Sync),
        pool: &ArenaPool,
    ) -> (Option<Self>, exec::ParStats, PairCounters)
    where
        P: Borrow<Profile> + Sync,
    {
        let n = profiles.len();
        let n_paths = profiles.first().map_or(0, |p| p.borrow().path_count());
        let n_pairs = exec::triangle_count(n);
        let unit_total = (n_pairs * n_paths) as u64;
        let tripped = AtomicBool::new(false);

        // The pruned path precomputes per-path kernel memos; the exact
        // path computes kernels inline during assembly.
        let (kernels, prep_stats) = match kernel {
            Resemblance::Exact => (None, exec::ParStats::default()),
            Resemblance::Pruned { sketch } => {
                let path_idx: Vec<usize> = (0..n_paths).collect();
                let (built, stats) = executor.par_map_guarded(
                    &path_idx,
                    |_, &k| build_path_kernels(profiles, k, sketch, guard, &tripped, pool),
                    || tripped.load(Ordering::Relaxed),
                );
                if built.iter().any(Option::is_none) {
                    tripped.store(true, Ordering::Relaxed);
                    let mut stats = stats;
                    stats.stopped = true;
                    return (None, stats, PairCounters::default());
                }
                (
                    Some(built.into_iter().map(Option::unwrap).collect::<Vec<_>>()),
                    stats,
                )
            }
        };

        // Assembly over the flat upper-triangle pair index space. Each
        // pair's features depend only on its two (immutable) profiles /
        // memos and every value lands in a fixed matrix cell.
        let (chunks, mut stats) = executor.par_chunks(
            n_pairs,
            |range: Range<usize>| -> Option<ChunkValues> {
                if !guard(range.len() as u64) {
                    tripped.store(true, Ordering::Relaxed);
                    return None;
                }
                let mut exact_units = 0u64;
                let vals = range
                    .map(|k| {
                        let (i, j) = exec::triangle_pair(n, k);
                        match &kernels {
                            None => {
                                let (pi, pj) = (profiles[i].borrow(), profiles[j].borrow());
                                exact_units += n_paths as u64;
                                let r = weighted_sum(&resemblance_features(pi, pj), &weights.resem);
                                let dij =
                                    weighted_sum(&directed_walk_features(pi, pj), &weights.walk);
                                let dji =
                                    weighted_sum(&directed_walk_features(pj, pi), &weights.walk);
                                (r, dij, dji)
                            }
                            Some(kernels) => {
                                let mut r_feats = vec![0.0f64; n_paths];
                                let mut dij_feats = vec![0.0f64; n_paths];
                                let mut dji_feats = vec![0.0f64; n_paths];
                                for (p, pk) in kernels.iter().enumerate() {
                                    let mut hit = false;
                                    r_feats[p] =
                                        pk.resem_at(i, j).inspect(|_| hit = true).unwrap_or(0.0);
                                    dij_feats[p] = pk
                                        .dot_at(i, j)
                                        .inspect(|_| hit = true)
                                        .unwrap_or_else(|| pk.zero_walk(i, j));
                                    dji_feats[p] = pk
                                        .dot_at(j, i)
                                        .inspect(|_| hit = true)
                                        .unwrap_or_else(|| pk.zero_walk(j, i));
                                    if hit {
                                        exact_units += 1;
                                    }
                                }
                                let r = weighted_sum(&r_feats, &weights.resem);
                                let dij = weighted_sum(&dij_feats, &weights.walk);
                                let dji = weighted_sum(&dji_feats, &weights.walk);
                                (r, dij, dji)
                            }
                        }
                    })
                    .collect();
                Some((vals, exact_units))
            },
            || tripped.load(Ordering::Relaxed),
        );
        stats.stopped = stats.stopped || tripped.load(Ordering::Relaxed);
        stats.completed = chunks
            .iter()
            .filter(|(_, v)| v.is_some())
            .map(|(r, _)| r.len())
            .sum();
        // One ParStats for the whole stage: pair-granularity tasks (the
        // unit existing probes assert on), wall covering both phases.
        stats.threads = stats.threads.max(prep_stats.threads);
        stats.wall += prep_stats.wall;
        stats.stopped = stats.stopped || prep_stats.stopped;
        if stats.stopped {
            return (None, stats, PairCounters::default());
        }
        let mut exact_units = 0u64;
        let mut resem = vec![vec![0.0; n]; n];
        let mut dwalk = vec![vec![0.0; n]; n];
        for (range, vals) in chunks {
            // distinct-lint: allow(D002, D101, reason="stats.stopped was checked above; a complete run leaves every chunk Some by the exec pool contract")
            let (vals, chunk_exact) = vals.expect("complete run has no refused chunks");
            exact_units += chunk_exact;
            for (k, (r, dij, dji)) in range.zip(vals) {
                let (i, j) = exec::triangle_pair(n, k);
                resem[i][j] = r;
                resem[j][i] = r;
                dwalk[i][j] = dij;
                dwalk[j][i] = dji;
            }
        }
        let counters = PairCounters {
            total: unit_total,
            pruned: unit_total - exact_units,
            exact: exact_units,
            cached: 0,
            interned: kernels
                .as_ref()
                .map_or(0, |ks| ks.iter().map(|k| k.interned).sum()),
        };
        (
            Some(DistinctMerger {
                resem,
                dwalk,
                sizes: vec![1; n],
                measure,
                composite,
                n,
            }),
            stats,
            counters,
        )
    }

    /// Number of leaf references.
    pub fn items(&self) -> usize {
        self.n
    }

    /// The leaf pairwise tables `(resemblance, directed walk)`, for the
    /// run manager's similarity-stage checkpoint. Only meaningful on a
    /// freshly built merger (before any merge extends the tables).
    pub(crate) fn to_tables(&self) -> (&[Vec<f64>], &[Vec<f64>]) {
        (&self.resem, &self.dwalk)
    }

    /// Rebuild a merger from checkpointed leaf tables. Inverse of
    /// [`DistinctMerger::to_tables`] — JSON round-trips `f64` exactly, so
    /// a merger restored this way clusters bit-identically to the one that
    /// was saved. Returns `None` when the tables are not square matrices
    /// of matching size.
    pub(crate) fn from_tables(
        resem: Vec<Vec<f64>>,
        dwalk: Vec<Vec<f64>>,
        measure: MeasureMode,
        composite: CompositeMode,
    ) -> Option<Self> {
        let n = resem.len();
        if dwalk.len() != n
            || resem.iter().any(|row| row.len() != n)
            || dwalk.iter().any(|row| row.len() != n)
        {
            return None;
        }
        Some(DistinctMerger {
            resem,
            dwalk,
            sizes: vec![1; n],
            measure,
            composite,
            n,
        })
    }

    /// The weighted resemblance between two leaf references (diagnostics).
    pub fn leaf_resemblance(&self, i: usize, j: usize) -> f64 {
        self.resem[i][j]
    }

    /// The symmetrized weighted walk probability between two leaves.
    pub fn leaf_walk(&self, i: usize, j: usize) -> f64 {
        0.5 * (self.dwalk[i][j] + self.dwalk[j][i])
    }

    /// Average-Link resemblance between clusters `a` and `b`.
    fn average_resemblance(&self, a: usize, b: usize) -> f64 {
        self.resem[a][b] / (self.sizes[a] * self.sizes[b]) as f64
    }

    /// Collective random walk probability between clusters: start at a
    /// uniformly random member of one cluster, land anywhere in the other;
    /// symmetrized by averaging both directions.
    fn collective_walk(&self, a: usize, b: usize) -> f64 {
        let a_to_b = self.dwalk[a][b] / self.sizes[a] as f64;
        let b_to_a = self.dwalk[b][a] / self.sizes[b] as f64;
        0.5 * (a_to_b + b_to_a)
    }
}

/// Build the kernel memos for one join path: intern all forward and
/// backward sets into a columnar [`SetArena`], prove most distinct row
/// pairs exactly zero (sketch tier first, then the exact support-overlap
/// matrix), and run the merge-join kernels only for the survivors.
///
/// `guard` is charged once with the interned set count (the arena /
/// sketch / overlap build) and once with the surviving kernel count.
///
/// The arena is taken from `pool` and rebuilt in place (bit-identical
/// to a fresh [`SetArena::build`]); it returns to the pool on every
/// exit path, including a tripped guard.
fn build_path_kernels<P: Borrow<Profile>>(
    profiles: &[P],
    k: usize,
    sketch: &relgraph::SketchConfig,
    guard: &(dyn Fn(u64) -> bool + Sync),
    tripped: &AtomicBool,
    pool: &ArenaPool,
) -> Option<PathKernels> {
    let n = profiles.len();
    if !guard(2 * n as u64) {
        tripped.store(true, Ordering::Relaxed);
        return None;
    }
    let bwd: Vec<relgraph::WeightedSet> = profiles
        .iter()
        .map(|p| p.borrow().props[k].backward_set())
        .collect();
    let mut arena: SetArena = pool.take();
    arena.rebuild(
        profiles
            .iter()
            .map(|p| &p.borrow().sets[k])
            .chain(bwd.iter()),
    );
    let sketches = arena.sketches(sketch);
    let overlap = arena.intersections();
    let row_f: Vec<u32> = (0..n).map(|i| arena.row_of(i)).collect();
    let row_b: Vec<u32> = (0..n).map(|i| arena.row_of(n + i)).collect();
    let row_empty: Vec<bool> = sketches.iter().map(|s| s.is_empty()).collect();

    // Distinct forward rows (ascending), remembering which are realized
    // by at least two references — only those can produce a same-row
    // (r, r) resemblance lookup from an i ≠ j pair.
    let mut used_f: Vec<u32> = row_f.clone();
    used_f.sort_unstable();
    let mut uniq_f: Vec<(u32, bool)> = Vec::with_capacity(used_f.len());
    for &r in &used_f {
        match uniq_f.last_mut() {
            Some((p, twice)) if *p == r => *twice = true,
            _ => uniq_f.push((r, false)),
        }
    }
    let mut used_b: Vec<u32> = row_b.clone();
    used_b.sort_unstable();
    used_b.dedup();

    // Candidate row pairs, normalized (min, max). The dot candidates are
    // the cross product of distinct forward × backward rows — a handful
    // of combos only realized by i == j ride along harmlessly.
    let mut resem_cands: Vec<(u32, u32)> =
        Vec::with_capacity(uniq_f.len() * (uniq_f.len() + 1) / 2);
    for (x, &(a, twice)) in uniq_f.iter().enumerate() {
        if twice {
            resem_cands.push((a, a));
        }
        for &(b, _) in &uniq_f[x + 1..] {
            resem_cands.push((a, b));
        }
    }
    let mut dot_cands: Vec<(u32, u32)> = Vec::with_capacity(uniq_f.len() * used_b.len());
    for &(a, _) in &uniq_f {
        for &b in &used_b {
            dot_cands.push((a.min(b), a.max(b)));
        }
    }
    dot_cands.sort_unstable();
    dot_cands.dedup();

    // Zero certificates: the sketch bound prunes first (cheap, sound),
    // the exact overlap matrix catches everything a saturated mask
    // missed — together they are complete, so a surviving pair has a
    // provably nonzero kernel and a skipped pair a provably zero one.
    let survives = |&(a, b): &(u32, u32)| {
        sketches[a as usize].upper_bound(&sketches[b as usize]) != 0.0 && overlap.intersects(a, b)
    };
    let resem_cands: Vec<(u32, u32)> = resem_cands.into_iter().filter(|c| survives(c)).collect();
    let dot_cands: Vec<(u32, u32)> = dot_cands.into_iter().filter(|c| survives(c)).collect();
    if !guard((resem_cands.len() + dot_cands.len()) as u64) {
        tripped.store(true, Ordering::Relaxed);
        pool.put(arena);
        return None;
    }
    let mut resem = FxHashMap::default();
    for (a, b) in resem_cands {
        resem.insert((a, b), arena.resemblance_rows(a, b));
    }
    let mut dot = FxHashMap::default();
    for (a, b) in dot_cands {
        dot.insert((a, b), arena.dot_rows(a, b));
    }
    pool.put(arena);
    Some(PathKernels {
        row_f,
        row_b,
        row_empty,
        resem,
        dot,
        interned: sketches.len() as u64,
    })
}

impl Merger for DistinctMerger {
    fn similarity(&self, a: usize, b: usize) -> f64 {
        match self.measure {
            MeasureMode::SetResemblance => self.average_resemblance(a, b),
            MeasureMode::RandomWalk => self.collective_walk(a, b),
            MeasureMode::Combined => {
                let r = self.average_resemblance(a, b);
                let w = self.collective_walk(a, b);
                match self.composite {
                    CompositeMode::Geometric => (r * w).sqrt(),
                    CompositeMode::Arithmetic => 0.5 * (r + w),
                }
            }
        }
    }

    // distinct-lint: allow(D005, reason="Merger callback doing O(live clusters) row sums; the clustering driver charges the budget once per merge")
    fn merged(&mut self, a: usize, b: usize, into: usize, size_a: usize, size_b: usize) {
        debug_assert_eq!(into, self.resem.len());
        let total = into + 1;
        // New resemblance row: plain sums.
        let mut r_row = Vec::with_capacity(total);
        for c in 0..into {
            r_row.push(self.resem[a][c] + self.resem[b][c]);
        }
        r_row.push(0.0); // self entry, never queried
        for (c, &v) in r_row.iter().enumerate().take(into) {
            self.resem[c].push(v);
        }
        self.resem.push(r_row);
        // New directed-walk row and column.
        let mut out_row = Vec::with_capacity(total); // into -> c
        for c in 0..into {
            out_row.push(self.dwalk[a][c] + self.dwalk[b][c]);
        }
        out_row.push(0.0);
        for c in 0..into {
            let incoming = self.dwalk[c][a] + self.dwalk[c][b]; // c -> into
            self.dwalk[c].push(incoming);
        }
        self.dwalk.push(out_row);
        self.sizes.push(size_a + size_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::agglomerate;
    use relgraph::{NodeId, Propagation, WeightedSet};
    use relstore::{FxHashMap, RelId, TupleId, TupleRef};

    /// Build a synthetic profile over one "path" whose forward map is given
    /// by (node, weight) pairs; backward mirrors forward (good enough for
    /// merger arithmetic tests).
    fn profile(idx: u32, pairs: &[(u32, f64)]) -> Profile {
        let mut fwd: FxHashMap<NodeId, f64> = FxHashMap::default();
        for &(n, w) in pairs {
            fwd.insert(NodeId(n), w);
        }
        let prop = Propagation {
            forward: fwd.clone(),
            backward: fwd.clone(),
        };
        Profile {
            reference: TupleRef::new(RelId(0), TupleId(idx)),
            sets: vec![WeightedSet::from_map(prop.forward.clone())],
            props: vec![prop],
            placeholder: false,
        }
    }

    fn weights() -> PathWeights {
        PathWeights {
            resem: vec![1.0],
            walk: vec![1.0],
        }
    }

    /// Two tight groups: {0,1} share node 1, {2,3} share node 2.
    fn two_groups() -> Vec<Profile> {
        vec![
            profile(0, &[(1, 1.0)]),
            profile(1, &[(1, 1.0)]),
            profile(2, &[(2, 1.0)]),
            profile(3, &[(2, 1.0)]),
        ]
    }

    #[test]
    fn leaf_similarities_reflect_shared_context() {
        let m = DistinctMerger::from_profiles(
            &two_groups(),
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        );
        assert_eq!(m.items(), 4);
        assert!((m.leaf_resemblance(0, 1) - 1.0).abs() < 1e-12);
        assert_eq!(m.leaf_resemblance(0, 2), 0.0);
        assert!(m.leaf_walk(0, 1) > 0.0);
        assert_eq!(m.leaf_walk(0, 3), 0.0);
    }

    #[test]
    fn combined_measure_clusters_the_groups() {
        let mut m = DistinctMerger::from_profiles(
            &two_groups(),
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        );
        let c = agglomerate(4, &mut m, 0.01);
        assert_eq!(c.cluster_count(), 2);
        let g = c.groups();
        assert!(g.contains(&vec![0, 1]));
        assert!(g.contains(&vec![2, 3]));
    }

    #[test]
    fn geometric_composite_vetoes_on_either_zero() {
        // Profiles share neighbors (resemblance > 0) but have zero walk
        // probability: different nodes in backward maps would be needed.
        // Construct resem > 0, walk = 0 by giving asymmetric supports:
        // here we instead verify the arithmetic difference directly.
        let p = vec![profile(0, &[(1, 1.0)]), profile(1, &[(1, 1.0)])];
        let geo = DistinctMerger::from_profiles(
            &p,
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        );
        let ari = DistinctMerger::from_profiles(
            &p,
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Arithmetic,
        );
        let sg = geo.similarity(0, 1);
        let sa = ari.similarity(0, 1);
        // Both positive here; geometric <= arithmetic (AM-GM).
        assert!(sg > 0.0);
        assert!(sg <= sa + 1e-12);
    }

    #[test]
    fn single_measure_modes() {
        let p = two_groups();
        let r_only = DistinctMerger::from_profiles(
            &p,
            &weights(),
            MeasureMode::SetResemblance,
            CompositeMode::Geometric,
        );
        assert!((r_only.similarity(0, 1) - 1.0).abs() < 1e-12);
        let w_only = DistinctMerger::from_profiles(
            &p,
            &weights(),
            MeasureMode::RandomWalk,
            CompositeMode::Geometric,
        );
        assert!((w_only.similarity(0, 1) - 1.0).abs() < 1e-12); // 1*1 both ways
        assert_eq!(w_only.similarity(0, 2), 0.0);
    }

    #[test]
    fn incremental_aggregation_matches_recomputation() {
        // After merging 0 and 1, avg resemblance to 2 must equal the mean
        // of the leaf resemblances, and collective walk must equal the
        // formula over members.
        let profiles = vec![
            profile(0, &[(1, 0.8), (2, 0.2)]),
            profile(1, &[(1, 0.5), (3, 0.5)]),
            profile(2, &[(1, 0.4), (2, 0.6)]),
        ];
        let mut m = DistinctMerger::from_profiles(
            &profiles,
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        );
        let r02 = m.leaf_resemblance(0, 2);
        let r12 = m.leaf_resemblance(1, 2);
        let d02 = m.dwalk[0][2];
        let d12 = m.dwalk[1][2];
        let d20 = m.dwalk[2][0];
        let d21 = m.dwalk[2][1];
        m.merged(0, 1, 3, 1, 1);
        let avg = m.average_resemblance(3, 2);
        assert!((avg - 0.5 * (r02 + r12)).abs() < 1e-12);
        let cw = m.collective_walk(3, 2);
        let expected = 0.5 * ((d02 + d12) / 2.0 + (d20 + d21) / 1.0);
        assert!((cw - expected).abs() < 1e-12);
    }

    #[test]
    fn parallel_matrix_build_matches_sequential() {
        // A spread of profiles with varying overlap so the matrices are
        // non-trivial; compare every table entry across thread counts.
        let profiles: Vec<Profile> = (0..12)
            .map(|i| profile(i, &[(i % 4, 0.5 + 0.04 * i as f64), ((i + 1) % 4, 0.3)]))
            .collect();
        let reference = DistinctMerger::from_profiles(
            &profiles,
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        );
        for threads in [2usize, 5, 8] {
            for kernel in [Resemblance::Exact, Resemblance::default()] {
                let (m, stats, counters) = DistinctMerger::from_profiles_exec(
                    &profiles,
                    &weights(),
                    MeasureMode::Combined,
                    CompositeMode::Geometric,
                    &kernel,
                    &exec::Executor::with_threads(threads),
                    &|_| true,
                );
                let m = m.expect("permissive guard");
                assert!(!stats.stopped);
                assert_eq!(stats.completed, 12 * 11 / 2);
                // One join path in this fixture, so units == pairs.
                assert_eq!(counters.total, 12 * 11 / 2);
                assert_eq!(counters.pruned + counters.exact, counters.total);
                if kernel == Resemblance::Exact {
                    assert_eq!(counters.pruned, 0);
                }
                assert_eq!(m.resem, reference.resem, "threads={threads} {kernel:?}");
                assert_eq!(m.dwalk, reference.dwalk, "threads={threads} {kernel:?}");
            }
        }
    }

    /// The losslessness contract at the table level: the pruned build's
    /// matrices carry the exact build's bits, including zero signs, and
    /// its counters account for real pruning.
    #[test]
    fn pruned_build_is_bit_identical_and_actually_prunes() {
        // Three disconnected cliques: most pairs have provably-zero
        // kernels, a few same-row references exercise memo reuse.
        let mut profiles: Vec<Profile> = Vec::new();
        for g in 0..3u32 {
            for m in 0..3u32 {
                profiles.push(profile(
                    g * 3 + m,
                    &[(10 * g, 0.5 + 0.1 * m as f64), (10 * g + 1, 0.2)],
                ));
            }
        }
        profiles.push(profile(9, &[(0, 0.5), (1, 0.2)])); // same content as profile 0
        profiles.push(profile(10, &[])); // empty: exercises the -0.0 walk zero
        let n = profiles.len();
        let exact = DistinctMerger::from_profiles(
            &profiles,
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        );
        let (pruned, stats, counters) = DistinctMerger::from_profiles_exec(
            &profiles,
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
            &Resemblance::default(),
            &exec::Executor::with_threads(3),
            &|_| true,
        );
        let pruned = pruned.expect("permissive guard");
        assert!(!stats.stopped);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    pruned.resem[i][j].to_bits(),
                    exact.resem[i][j].to_bits(),
                    "resem[{i}][{j}]"
                );
                assert_eq!(
                    pruned.dwalk[i][j].to_bits(),
                    exact.dwalk[i][j].to_bits(),
                    "dwalk[{i}][{j}]"
                );
            }
        }
        assert_eq!(counters.total, exec::triangle_count(n) as u64);
        assert_eq!(counters.pruned + counters.exact, counters.total);
        // Cross-clique and empty-profile units are all provably zero:
        // 9 same-clique pairs + the pair joining profile 0's duplicate
        // to its clique... every nonzero unit involves two refs of one
        // clique (clique 0 has 4 members now): C(4,2) + C(3,2) + C(3,2) = 12.
        assert_eq!(counters.exact, 12);
        assert!(counters.pruned > counters.exact);
    }

    #[test]
    fn table_round_trip_restores_a_bit_identical_merger() {
        let profiles: Vec<Profile> = (0..9)
            .map(|i| profile(i, &[(i % 3, 0.4 + 0.05 * i as f64), ((i + 1) % 3, 0.25)]))
            .collect();
        let m = DistinctMerger::from_profiles(
            &profiles,
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        );
        let (resem, dwalk) = m.to_tables();
        let restored = DistinctMerger::from_tables(
            resem.to_vec(),
            dwalk.to_vec(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        )
        .unwrap();
        let (mut a, mut b) = (m.clone(), restored);
        let ca = agglomerate(9, &mut a, 0.01);
        let cb = agglomerate(9, &mut b, 0.01);
        assert_eq!(ca.labels, cb.labels);
        assert_eq!(ca.dendrogram.merges(), cb.dendrogram.merges());
        // Malformed tables are refused, not misindexed.
        assert!(DistinctMerger::from_tables(
            vec![vec![0.0; 2]; 3],
            vec![vec![0.0; 3]; 3],
            MeasureMode::Combined,
            CompositeMode::Geometric,
        )
        .is_none());
    }

    #[test]
    fn tripped_matrix_build_returns_none() {
        let profiles = two_groups();
        for kernel in [Resemblance::Exact, Resemblance::default()] {
            let (m, stats, counters) = DistinctMerger::from_profiles_exec(
                &profiles,
                &weights(),
                MeasureMode::Combined,
                CompositeMode::Geometric,
                &kernel,
                &exec::Executor::sequential(),
                &|_| false,
            );
            assert!(m.is_none(), "{kernel:?}");
            assert!(stats.stopped);
            assert_eq!(stats.completed, 0);
            assert_eq!(counters, PairCounters::default());
        }
    }

    #[test]
    fn merged_tables_stay_symmetric_in_resemblance() {
        let profiles = two_groups();
        let mut m = DistinctMerger::from_profiles(
            &profiles,
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        );
        m.merged(0, 1, 4, 1, 1);
        for c in 0..4 {
            assert_eq!(m.resem[4][c], m.resem[c][4]);
        }
    }
}

//! Catalog persistence: save/load a whole database to a directory.
//!
//! Layout: `schema.json` holds the ordered relation schemas; each relation
//! body lives in `<name>.csv` (RFC-4180 quoting via [`crate::csv`]);
//! `manifest.json` records a FNV-1a-64 checksum and byte length for every
//! file plus a schema fingerprint, and is written **last** — it is the
//! commit point. Relation names are sanitized for the filesystem (`#`,
//! `/`, etc. map to `_`), with the original names preserved in the schema
//! file.
//!
//! Crash safety: every file is written to a `*.tmp` sibling and atomically
//! renamed into place, and nothing references the new data until the
//! manifest rename lands. A save killed at any point leaves either the
//! previous committed state (old manifest, old checksums) or a detectable
//! mismatch — [`load_catalog`] verifies every checksum before parsing a
//! byte, so a torn or bit-flipped file surfaces as
//! [`StoreError::Corrupt`], never as silently wrong data.
//!
//! All writes go through a [`Vfs`](crate::faults::Vfs), so the fault
//! injection harness in [`crate::faults`] can kill a save at any write.

use crate::catalog::Catalog;
use crate::csv::{load_csv, to_csv};
use crate::error::{Result, StoreError};
use crate::faults::{StdVfs, Vfs};
use crate::schema::RelationSchema;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Manifest schema version understood by this build.
const MANIFEST_VERSION: u32 = 1;
/// File name of the commit record.
const MANIFEST_FILE: &str = "manifest.json";

/// FNV-1a 64-bit checksum — small, dependency-free, and plenty for
/// detecting torn writes and bit rot (not an adversarial MAC).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Integrity record for one store file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// File name relative to the store directory.
    pub file: String,
    /// Exact byte length.
    pub bytes: u64,
    /// FNV-1a-64 checksum, lower-case hex.
    pub fnv1a64: String,
}

/// The store's commit record: written last, verified first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    /// Manifest schema version.
    pub version: u32,
    /// Checksum of `schema.json` — a cheap fingerprint of the relational
    /// schema, letting tools detect schema drift without parsing.
    pub schema_fingerprint: String,
    /// One entry per persisted file (`schema.json` and every `*.csv`).
    pub files: Vec<ManifestEntry>,
}

/// Map a relation name to a safe file stem.
fn file_stem(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Collision-free file stems for an ordered list of relation names
/// (sanitization can alias, e.g. `R#x` and `R_x`; later duplicates get a
/// positional suffix). Deterministic, so save and load agree.
fn unique_stems<'a>(names: impl Iterator<Item = &'a str>) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    names
        .enumerate()
        .map(|(i, name)| {
            let base = file_stem(name);
            if seen.insert(base.clone()) {
                base
            } else {
                let stem = format!("{base}__{i}");
                seen.insert(stem.clone());
                stem
            }
        })
        .collect()
}

fn io_err(context: &str, e: std::io::Error) -> StoreError {
    StoreError::Io {
        context: context.to_string(),
        reason: e.to_string(),
    }
}

/// Write `bytes` to `dir/name` atomically: write `dir/name.tmp`, then
/// rename over the target. A crash mid-write leaves only the `.tmp`
/// orphan; the target keeps its previous content.
///
/// This is the sanctioned persistence primitive (lint D105): checkpoint
/// and snapshot writers elsewhere in the workspace build on it instead of
/// calling `std::fs::write` directly, so every durable artifact inherits
/// the same crash-safety and fault-injection seam.
pub fn write_atomic(vfs: &mut dyn Vfs, dir: &Path, name: &str, bytes: &[u8]) -> Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let dst = dir.join(name);
    vfs.write(&tmp, bytes)
        .map_err(|e| io_err(&format!("write {name}.tmp"), e))?;
    vfs.rename(&tmp, &dst)
        .map_err(|e| io_err(&format!("commit {name}"), e))
}

/// Save a catalog into `dir` (created if absent) through an explicit
/// [`Vfs`] — the fault-injectable entry point.
pub fn save_catalog_with(catalog: &Catalog, dir: &Path, vfs: &mut dyn Vfs) -> Result<()> {
    vfs.create_dir_all(dir)
        .map_err(|e| io_err("create dir", e))?;
    let schemas: Vec<&RelationSchema> = catalog.relations().map(|(_, r)| r.schema()).collect();
    let schema_json =
        serde_json::to_string_pretty(&schemas).map_err(|e| StoreError::Serialize {
            what: "schema.json".into(),
            reason: e.to_string(),
        })?;
    let mut files = vec![ManifestEntry {
        file: "schema.json".into(),
        bytes: schema_json.len() as u64,
        fnv1a64: format!("{:016x}", fnv1a64(schema_json.as_bytes())),
    }];
    write_atomic(vfs, dir, "schema.json", schema_json.as_bytes())?;
    let stems = unique_stems(catalog.relations().map(|(_, r)| r.name()));
    for ((_, rel), stem) in catalog.relations().zip(&stems) {
        let name = format!("{stem}.csv");
        let body = to_csv(rel);
        files.push(ManifestEntry {
            file: name.clone(),
            bytes: body.len() as u64,
            fnv1a64: format!("{:016x}", fnv1a64(body.as_bytes())),
        });
        write_atomic(vfs, dir, &name, body.as_bytes())?;
    }
    let manifest = Manifest {
        version: MANIFEST_VERSION,
        schema_fingerprint: format!("{:016x}", fnv1a64(schema_json.as_bytes())),
        files,
    };
    // Compact encoding on purpose: the manifest cannot checksum itself, so
    // it must not contain semantically inert bytes (pretty-print
    // whitespace) that single-byte corruption could hide in.
    let manifest_json = serde_json::to_string(&manifest).map_err(|e| StoreError::Serialize {
        what: "manifest.json".into(),
        reason: e.to_string(),
    })?;
    // Commit point: until this rename lands, a loader sees the previous
    // manifest (or none) and never trusts the new files.
    write_atomic(vfs, dir, MANIFEST_FILE, manifest_json.as_bytes())
}

/// Save a catalog into `dir` (created if absent).
pub fn save_catalog(catalog: &Catalog, dir: &Path) -> Result<()> {
    save_catalog_with(catalog, dir, &mut StdVfs)
}

/// Read and checksum-verify one manifest-listed file.
fn read_verified(vfs: &mut dyn Vfs, dir: &Path, entry: &ManifestEntry) -> Result<Vec<u8>> {
    let bytes = vfs
        .read(&dir.join(&entry.file))
        .map_err(|e| io_err(&format!("read {}", entry.file), e))?;
    if bytes.len() as u64 != entry.bytes {
        return Err(StoreError::Corrupt {
            file: entry.file.clone(),
            reason: format!(
                "length {} does not match manifest ({} bytes)",
                bytes.len(),
                entry.bytes
            ),
        });
    }
    let sum = format!("{:016x}", fnv1a64(&bytes));
    if sum != entry.fnv1a64 {
        return Err(StoreError::Corrupt {
            file: entry.file.clone(),
            reason: format!("checksum {sum} does not match manifest {}", entry.fnv1a64),
        });
    }
    Ok(bytes)
}

/// Load a catalog saved by [`save_catalog`] through an explicit [`Vfs`].
///
/// Verification order: manifest first (its absence means the store was
/// never committed), then every file's length and checksum, then parsing.
/// The result is finalized with integrity checking enabled.
pub fn load_catalog_with(dir: &Path, vfs: &mut dyn Vfs) -> Result<Catalog> {
    let manifest_bytes =
        vfs.read(&dir.join(MANIFEST_FILE))
            .map_err(|_| StoreError::MissingManifest {
                dir: dir.display().to_string(),
            })?;
    let manifest: Manifest =
        serde_json::from_slice(&manifest_bytes).map_err(|e| StoreError::Corrupt {
            file: MANIFEST_FILE.into(),
            reason: format!("unparseable manifest: {e}"),
        })?;
    if manifest.version != MANIFEST_VERSION {
        return Err(StoreError::VersionMismatch {
            file: MANIFEST_FILE.into(),
            found: manifest.version,
            expected: MANIFEST_VERSION,
        });
    }
    let schema_entry = manifest
        .files
        .iter()
        .find(|f| f.file == "schema.json")
        .ok_or_else(|| StoreError::Corrupt {
            file: MANIFEST_FILE.into(),
            reason: "manifest lists no schema.json".into(),
        })?;
    let schema_bytes = read_verified(vfs, dir, schema_entry)?;
    if format!("{:016x}", fnv1a64(&schema_bytes)) != manifest.schema_fingerprint {
        return Err(StoreError::Corrupt {
            file: "schema.json".into(),
            reason: "schema fingerprint does not match manifest".into(),
        });
    }
    let schemas: Vec<RelationSchema> =
        serde_json::from_slice(&schema_bytes).map_err(|e| StoreError::Corrupt {
            file: "schema.json".into(),
            reason: format!("bad schema.json: {e}"),
        })?;
    let mut catalog = Catalog::new();
    let stems = unique_stems(schemas.iter().map(|s| s.name.as_str()));
    for (schema, stem) in schemas.into_iter().zip(stems) {
        let name = format!("{stem}.csv");
        let entry = manifest
            .files
            .iter()
            .find(|f| f.file == name)
            .ok_or_else(|| StoreError::Corrupt {
                file: MANIFEST_FILE.into(),
                reason: format!("manifest lists no entry for {name}"),
            })?;
        let body = read_verified(vfs, dir, entry)?;
        let text = String::from_utf8(body).map_err(|_| StoreError::Corrupt {
            file: name.clone(),
            reason: "relation body is not valid UTF-8".into(),
        })?;
        let rid = catalog.add_relation(schema)?;
        load_csv(catalog.relation_mut(rid), &text)?;
    }
    catalog.finalize(true)?;
    Ok(catalog)
}

/// Load a catalog saved by [`save_catalog`]. The result is finalized with
/// integrity checking enabled.
pub fn load_catalog(dir: &Path) -> Result<Catalog> {
    load_catalog_with(dir, &mut StdVfs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultyVfs};
    use crate::schema::SchemaBuilder;
    use crate::value::{AttrType, Value};
    use std::fs;

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("Venues")
                .key("venue", AttrType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Papers")
                .key("paper", AttrType::Int)
                .fk("venue", AttrType::Str, "Venues")
                .data("title", AttrType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.insert("Venues", [Value::str("VLDB")].into()).unwrap();
        c.insert("Venues", [Value::str("Conf, with comma")].into())
            .unwrap();
        c.insert(
            "Papers",
            [
                Value::Int(1),
                Value::str("VLDB"),
                Value::str("quoted \"title\""),
            ]
            .into(),
        )
        .unwrap();
        c.insert(
            "Papers",
            [Value::Int(2), Value::str("VLDB"), Value::Null].into(),
        )
        .unwrap();
        c.finalize(true).unwrap();
        c
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("relstore_persist_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_preserves_everything() {
        let dir = temp_dir("rt");
        let original = sample_catalog();
        save_catalog(&original, &dir).unwrap();
        let loaded = load_catalog(&dir).unwrap();
        assert_eq!(loaded.relation_count(), original.relation_count());
        assert_eq!(loaded.tuple_count(), original.tuple_count());
        assert!(loaded.is_finalized());
        for (rid, rel) in original.relations() {
            let other = loaded.relation(rid);
            assert_eq!(rel.name(), other.name());
            assert_eq!(rel.schema(), other.schema());
            for (tid, t) in rel.iter() {
                assert_eq!(t, other.tuple(tid));
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pseudo_relation_names_are_sanitized() {
        // `Conferences#publisher`-style names must map to valid filenames.
        let dir = temp_dir("pseudo");
        let original = crate::expand::expand_values(&sample_catalog())
            .unwrap()
            .catalog;
        save_catalog(&original, &dir).unwrap();
        let loaded = load_catalog(&dir).unwrap();
        assert!(loaded.relation_id("Papers#title").is_some());
        assert_eq!(loaded.tuple_count(), original.tuple_count());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_errors() {
        let dir = temp_dir("missing");
        assert!(matches!(
            load_catalog(&dir),
            Err(StoreError::MissingManifest { .. })
        ));
    }

    #[test]
    fn corrupt_schema_errors() {
        let dir = temp_dir("corrupt");
        save_catalog(&sample_catalog(), &dir).unwrap();
        fs::write(dir.join("schema.json"), "{ not json").unwrap();
        assert!(matches!(
            load_catalog(&dir),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn future_manifest_version_is_a_typed_mismatch() {
        let dir = temp_dir("version");
        save_catalog(&sample_catalog(), &dir).unwrap();
        let mut manifest: Manifest =
            serde_json::from_slice(&fs::read(dir.join(MANIFEST_FILE)).unwrap()).unwrap();
        manifest.version = MANIFEST_VERSION + 7;
        fs::write(
            dir.join(MANIFEST_FILE),
            serde_json::to_string(&manifest).unwrap().into_bytes(),
        )
        .unwrap();
        match load_catalog(&dir) {
            Err(StoreError::VersionMismatch {
                file,
                found,
                expected,
            }) => {
                assert_eq!(file, MANIFEST_FILE);
                assert_eq!(found, MANIFEST_VERSION + 7);
                assert_eq!(expected, MANIFEST_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_checksums_cover_every_file() {
        let dir = temp_dir("cover");
        save_catalog(&sample_catalog(), &dir).unwrap();
        let manifest: Manifest =
            serde_json::from_slice(&fs::read(dir.join(MANIFEST_FILE)).unwrap()).unwrap();
        assert_eq!(manifest.version, MANIFEST_VERSION);
        // schema.json + one csv per relation.
        assert_eq!(manifest.files.len(), 1 + sample_catalog().relation_count());
        for entry in &manifest.files {
            let bytes = fs::read(dir.join(&entry.file)).unwrap();
            assert_eq!(bytes.len() as u64, entry.bytes);
            assert_eq!(format!("{:016x}", fnv1a64(&bytes)), entry.fnv1a64);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_relation_body_is_detected_before_parsing() {
        let dir = temp_dir("tamper");
        save_catalog(&sample_catalog(), &dir).unwrap();
        // Valid CSV, wrong content: only the checksum can catch this.
        let original = fs::read_to_string(dir.join("Venues.csv")).unwrap();
        fs::write(dir.join("Venues.csv"), original.replace("VLDB", "ICDE")).unwrap();
        match load_catalog(&dir) {
            Err(StoreError::Corrupt { file, .. }) => assert_eq!(file, "Venues.csv"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_killed_at_any_write_is_never_silently_loaded() {
        // Exhaustive kill sweep: fail each write of the save in turn. The
        // directory must afterwards either load the *previous* committed
        // state or refuse to load — never a mix.
        let dir = temp_dir("kill");
        let v1 = sample_catalog();
        save_catalog(&v1, &dir).unwrap();
        let v1_tuples = v1.tuple_count();

        // A second version with one more tuple.
        let mut v2 = sample_catalog();
        v2.insert("Venues", [Value::str("SIGMOD")].into()).unwrap();
        v2.finalize(true).unwrap();

        // Count the writes of a full save.
        let mut counting = FaultyVfs::new(FaultPlan::new(0));
        save_catalog_with(&v2, &dir, &mut counting).unwrap();
        let total_writes = counting.writes_attempted();
        assert!(total_writes >= 4);

        for nth in 1..=total_writes {
            // Reset to committed v1.
            fs::remove_dir_all(&dir).unwrap();
            save_catalog(&v1, &dir).unwrap();
            let mut vfs = FaultyVfs::new(FaultPlan::fail_nth_write(nth));
            assert!(save_catalog_with(&v2, &dir, &mut vfs).is_err());
            match load_catalog(&dir) {
                Ok(loaded) => assert_eq!(
                    loaded.tuple_count(),
                    v1_tuples,
                    "write #{nth}: loaded a half-saved store"
                ),
                Err(
                    StoreError::Corrupt { .. }
                    | StoreError::MissingManifest { .. }
                    | StoreError::Io { .. },
                ) => {}
                Err(other) => panic!("write #{nth}: unexpected error {other:?}"),
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}

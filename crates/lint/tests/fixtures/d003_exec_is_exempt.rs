//@ crate: exec
//@ path: crates/exec/src/pool_fixture.rs
//@ role: library

use std::sync::mpsc;
use std::thread;

/// The same spawning code inside crates/exec is the sanctioned home of
/// parallelism — D003 must not fire here. (No markers: zero findings.)
pub fn pool(n: usize) {
    let (tx, rx) = mpsc::channel();
    for i in 0..n {
        let tx = tx.clone();
        thread::spawn(move || {
            let _ = tx.send(i);
        });
    }
    drop(tx);
    while rx.recv().is_ok() {}
}

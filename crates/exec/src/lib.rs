//! # exec — deterministic parallel execution for the DISTINCT pipeline
//!
//! A small, dependency-free scoped thread pool (`std::thread` + channels)
//! for the pipeline's embarrassingly parallel stages: per-reference
//! probability propagation, the O(n²) pairwise similarity matrix, and
//! training-set feature extraction.
//!
//! The design constraint is **determinism**: clustering output must be
//! bit-identical regardless of thread count. Every primitive here follows
//! the same recipe:
//!
//! 1. the work is split into fixed index ranges (*chunks*) whose
//!    boundaries depend only on the input length — never on timing;
//! 2. workers claim chunks in any order from a shared atomic counter and
//!    compute results into chunk-local buffers;
//! 3. results are **committed in index order** by the caller's thread
//!    after all workers finish (*ordered reduction*).
//!
//! Because the per-item work functions are pure (they read shared
//! immutable state and write only their own output slot), step 3 makes the
//! result a pure function of the input: thread count and scheduling can
//! change wall-clock time, never the answer.
//!
//! Cooperative interruption composes with the same chunking: a `stop`
//! predicate is consulted once per chunk claim, so cancellation and
//! deadline trips propagate to every worker within one chunk of work.
//! Interrupted runs return `None` for unprocessed items — degraded but
//! well-formed results, with a [`ParStats`] recording how far the stage
//! got.
//!
//! A [`Executor::sequential`] executor runs everything inline on the
//! calling thread — with per-item (not per-chunk) stop checks, making
//! single-threaded runs behave exactly like the pre-parallel pipeline.

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment variable overriding the worker-thread count (`0` or unset
/// means "one worker per available core").
pub const THREADS_ENV: &str = "DISTINCT_THREADS";

/// How many chunks each worker should see on average: more chunks give
/// better load balancing for skewed per-item costs (a prolific author's
/// profile costs far more than a one-paper author's) at the price of more
/// atomic claims. 4 keeps the claim overhead invisible next to the work.
const CHUNKS_PER_WORKER: usize = 4;

/// Statistics of one parallel stage, for speedup reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParStats {
    /// Items the stage set out to process.
    pub tasks: usize,
    /// Items that produced a result (equals `tasks` for complete runs).
    pub completed: usize,
    /// Worker threads used (1 = inline on the calling thread).
    pub threads: usize,
    /// Wall-clock time of the stage.
    pub wall: Duration,
    /// Whether the `stop` predicate cut the stage short.
    pub stopped: bool,
}

impl ParStats {
    /// Merge two stage statistics (summing work, taking the max thread
    /// count, accumulating wall time).
    pub fn merge(self, other: ParStats) -> ParStats {
        ParStats {
            tasks: self.tasks + other.tasks,
            completed: self.completed + other.completed,
            threads: self.threads.max(other.threads),
            wall: self.wall + other.wall,
            stopped: self.stopped || other.stopped,
        }
    }
}

/// A deterministic parallel executor.
///
/// Cheap to copy; owns no threads between calls — each parallel primitive
/// spawns scoped workers for its own duration, so borrowed inputs need no
/// `'static` bound and a dropped executor leaks nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

impl Executor {
    /// An executor that runs everything inline on the calling thread.
    /// Behavior (including interruption granularity) is identical to the
    /// pre-parallel pipeline.
    pub fn sequential() -> Self {
        Executor { threads: 1 }
    }

    /// An executor with an explicit worker count. `0` means "auto": the
    /// [`THREADS_ENV`] override if set, else one worker per available core.
    pub fn with_threads(threads: usize) -> Self {
        Executor {
            threads: if threads == 0 {
                Self::auto_threads()
            } else {
                threads
            },
        }
    }

    /// An executor sized from the environment: [`THREADS_ENV`] if set to a
    /// positive integer, else one worker per available core.
    pub fn from_env() -> Self {
        Executor {
            threads: Self::auto_threads(),
        }
    }

    /// The "auto" worker count: [`THREADS_ENV`] if set and positive, else
    /// [`std::thread::available_parallelism`] (1 if unknown).
    pub fn auto_threads() -> usize {
        if let Ok(v) = std::env::var(THREADS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Worker threads this executor uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this executor runs inline (no worker threads).
    pub fn is_sequential(&self) -> bool {
        self.threads <= 1
    }

    /// Chunk length for `total` items: boundaries depend only on `total`
    /// and the thread count, never on timing.
    fn chunk_len(&self, total: usize) -> usize {
        total.div_ceil(self.threads * CHUNKS_PER_WORKER).max(1)
    }

    /// Map `f` over `items`, interruptibly, committing results in index
    /// order.
    ///
    /// `f(i, &items[i])` returns `None` when the item could not be
    /// processed (e.g. its own finer-grained guard tripped); `stop()` is
    /// consulted before each chunk claim (each item, when sequential) and
    /// `true` abandons all unclaimed work. Unprocessed items come back as
    /// `None`. For complete runs the output is a pure function of `items`
    /// — identical for every thread count.
    pub fn par_map_guarded<I, T>(
        &self,
        items: &[I],
        f: impl Fn(usize, &I) -> Option<T> + Sync,
        stop: impl Fn() -> bool + Sync,
    ) -> (Vec<Option<T>>, ParStats)
    where
        I: Sync,
        T: Send,
    {
        // distinct-lint: allow(D004, reason="wall time feeds ParStats.elapsed reporting only; interruption goes through the stop callback")
        let start = Instant::now();
        let n = items.len();
        let mut out: Vec<Option<T>> = Vec::with_capacity(n);
        let mut stopped = false;
        let threads = self.threads.min(n.max(1));
        if threads <= 1 {
            // Inline, with per-item stop checks: exactly the pre-parallel
            // pipeline's behavior (after a trip, nothing further runs).
            for (i, item) in items.iter().enumerate() {
                if stopped || stop() {
                    stopped = true;
                    out.push(None);
                } else {
                    out.push(f(i, item));
                }
            }
        } else {
            out.resize_with(n, || None);
            let chunk = self.chunk_len(n);
            let n_chunks = n.div_ceil(chunk);
            let next = AtomicUsize::new(0);
            let stop_flag = AtomicBool::new(false);
            let (tx, rx) = mpsc::channel::<(usize, Vec<Option<T>>)>();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let tx = tx.clone();
                    let (next, stop_flag, f, stop) = (&next, &stop_flag, &f, &stop);
                    scope.spawn(move || loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            return;
                        }
                        if stop_flag.load(Ordering::Relaxed) || stop() {
                            stop_flag.store(true, Ordering::Relaxed);
                            return;
                        }
                        let lo = c * chunk;
                        let hi = (lo + chunk).min(n);
                        let local: Vec<Option<T>> = (lo..hi).map(|i| f(i, &items[i])).collect();
                        // A send only fails if the receiver is gone, which
                        // cannot happen while the scope is open.
                        let _ = tx.send((lo, local));
                    });
                }
                drop(tx);
                // Ordered reduction: buffer chunk results as they arrive,
                // then commit below in ascending index order.
                let mut buffered: Vec<(usize, Vec<Option<T>>)> = rx.iter().collect();
                buffered.sort_unstable_by_key(|&(lo, _)| lo);
                for (lo, local) in buffered {
                    for (off, v) in local.into_iter().enumerate() {
                        out[lo + off] = v;
                    }
                }
            });
            stopped = stop_flag.load(Ordering::Relaxed);
        }
        let completed = out.iter().filter(|v| v.is_some()).count();
        let stats = ParStats {
            tasks: n,
            completed,
            threads,
            wall: start.elapsed(),
            stopped,
        };
        (out, stats)
    }

    /// Infallible, uninterruptible [`Executor::par_map_guarded`]: map `f`
    /// over `items` and return the results in index order.
    pub fn par_map_indexed<I, T>(&self, items: &[I], f: impl Fn(usize, &I) -> T + Sync) -> Vec<T>
    where
        I: Sync,
        T: Send,
    {
        let (out, _) = self.par_map_guarded(items, |i, item| Some(f(i, item)), || false);
        out.into_iter()
            // distinct-lint: allow(D002, reason="stop callback is the constant false closure above, so no item can be skipped")
            .map(|v| v.expect("infallible map never skips an item"))
            .collect()
    }

    /// Process the index space `0..total` in chunks, interruptibly,
    /// returning each processed chunk's result **in ascending index
    /// order**. Chunk boundaries depend only on `total` and the thread
    /// count. `stop()` is consulted before each chunk (both sequential and
    /// parallel); chunks abandoned after a stop are simply absent from the
    /// result, and `ParStats::completed` counts the indexes actually
    /// covered.
    pub fn par_chunks<T>(
        &self,
        total: usize,
        f: impl Fn(Range<usize>) -> T + Sync,
        stop: impl Fn() -> bool + Sync,
    ) -> (Vec<(Range<usize>, T)>, ParStats)
    where
        T: Send,
    {
        // distinct-lint: allow(D004, reason="wall time feeds ParStats.elapsed reporting only; interruption goes through the stop callback")
        let start = Instant::now();
        let chunk = self.chunk_len(total);
        let n_chunks = total.div_ceil(chunk);
        let threads = self.threads.min(n_chunks.max(1));
        let mut results: Vec<(Range<usize>, T)> = Vec::with_capacity(n_chunks);
        let mut stopped = false;
        if threads <= 1 {
            for c in 0..n_chunks {
                if stop() {
                    stopped = true;
                    break;
                }
                let range = c * chunk..((c + 1) * chunk).min(total);
                results.push((range.clone(), f(range)));
            }
        } else {
            let next = AtomicUsize::new(0);
            let stop_flag = AtomicBool::new(false);
            let (tx, rx) = mpsc::channel::<(Range<usize>, T)>();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let tx = tx.clone();
                    let (next, stop_flag, f, stop) = (&next, &stop_flag, &f, &stop);
                    scope.spawn(move || loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            return;
                        }
                        if stop_flag.load(Ordering::Relaxed) || stop() {
                            stop_flag.store(true, Ordering::Relaxed);
                            return;
                        }
                        let range = c * chunk..((c + 1) * chunk).min(total);
                        let value = f(range.clone());
                        let _ = tx.send((range, value));
                    });
                }
                drop(tx);
                results.extend(rx.iter());
            });
            results.sort_unstable_by_key(|(r, _)| r.start);
            stopped = stop_flag.load(Ordering::Relaxed);
        }
        let completed = results.iter().map(|(r, _)| r.len()).sum();
        let stats = ParStats {
            tasks: total,
            completed,
            threads,
            wall: start.elapsed(),
            stopped,
        };
        (results, stats)
    }
}

/// A monotonically increasing progress counter shared between a running
/// stage and its [`Watchdog`]. The stage beats it at natural progress
/// points (chunk commits, checkpoint writes) — one relaxed atomic add, so
/// beating from a hot loop is free; the watchdog thread polls it.
#[derive(Debug, Clone, Default)]
pub struct Heartbeat(Arc<AtomicU64>); // distinct-lint: shared(commutative counter: relaxed beats; the watchdog only compares successive reads)

impl Heartbeat {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one unit of observable progress.
    pub fn beat(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Total beats recorded so far.
    pub fn count(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A background thread that watches a [`Heartbeat`] and fires a callback
/// once when no beat lands for `stall_after` — converting a silently stuck
/// stage (livelocked worker, pathological input) into an explicit,
/// observable event. The run manager wires the callback to trip its
/// `RunControl` with a typed `Stalled` interruption, so a stall degrades
/// the run exactly like any other limit instead of hanging forever.
///
/// The watchdog never kills anything itself: the callback cooperatively
/// signals the watched computation, which unwinds through its ordinary
/// guard checks. Dropping the watchdog stops and joins the thread.
#[derive(Debug)]
pub struct Watchdog {
    // distinct-lint: shared(monotonic flag: set-once stop signal, joined on drop)
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<bool>>,
}

impl Watchdog {
    /// Start watching `heartbeat`. `on_stall` runs on the watchdog thread,
    /// at most once, when `stall_after` elapses with no beat; `poll` sets
    /// the check cadence (and thus the detection slack — a stall is
    /// noticed within `stall_after + poll`).
    pub fn spawn(
        heartbeat: Heartbeat,
        stall_after: Duration,
        poll: Duration,
        on_stall: impl FnOnce() + Send + 'static,
    ) -> Watchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut last_count = heartbeat.count();
            // distinct-lint: allow(D004, reason="the watchdog exists to observe wall-clock silence; it never influences the computed result, only raises a typed Stalled signal")
            let mut last_beat = Instant::now();
            loop {
                if stop_flag.load(Ordering::Relaxed) {
                    return false;
                }
                std::thread::sleep(poll);
                let count = heartbeat.count();
                if count != last_count {
                    last_count = count;
                    // distinct-lint: allow(D004, reason="stall timer restarts at each observed beat; reporting only, see above")
                    last_beat = Instant::now();
                    continue;
                }
                // distinct-lint: allow(D004, reason="stall detection compares wall-clock silence to the configured threshold; reporting only, see above")
                if Instant::now().duration_since(last_beat) >= stall_after {
                    if !stop_flag.load(Ordering::Relaxed) {
                        on_stall();
                        return true;
                    }
                    return false;
                }
            }
        });
        Watchdog {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop watching and join the thread. Returns whether the stall
    /// callback fired.
    pub fn stop(mut self) -> bool {
        self.shutdown()
    }

    fn shutdown(&mut self) -> bool {
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.take() {
            Some(handle) => handle.join().unwrap_or(false),
            None => false,
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// Number of unordered pairs `(i, j)` with `i < j < n` — the size of the
/// upper-triangle pair index space used by the similarity stages.
pub fn triangle_count(n: usize) -> usize {
    if n < 2 {
        0
    } else {
        n * (n - 1) / 2
    }
}

/// The `k`-th pair of the upper triangle of an `n × n` matrix, in row-major
/// order: `(0,1), (0,2), …, (0,n-1), (1,2), …`. Lets chunks of the flat
/// pair index space `0..triangle_count(n)` be mapped back to index pairs
/// without any shared iteration state.
///
/// # Panics
/// Panics (in debug builds) if `k >= triangle_count(n)`.
pub fn triangle_pair(n: usize, k: usize) -> (usize, usize) {
    debug_assert!(k < triangle_count(n), "pair index {k} out of range");
    // Pairs preceding row i: off(i) = i·(n−1) − i·(i−1)/2, increasing in i,
    // rearranged so no intermediate underflows at i = 0.
    let off = |i: usize| i * (2 * n - i - 1) / 2;
    let mut lo = 0usize;
    let mut hi = n;
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if off(mid) <= k {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo, lo + 1 + (k - off(lo)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn triangle_enumeration_is_row_major_and_complete() {
        assert_eq!(triangle_count(0), 0);
        assert_eq!(triangle_count(1), 0);
        assert_eq!(triangle_count(5), 10);
        for n in [2usize, 3, 7, 20] {
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(triangle_pair(n, k), (i, j), "n={n} k={k}");
                    k += 1;
                }
            }
            assert_eq!(k, triangle_count(n));
        }
    }

    #[test]
    fn sequential_and_parallel_maps_agree() {
        let items: Vec<u64> = (0..1000).collect();
        let f = |i: usize, &x: &u64| x * x + i as u64;
        let seq = Executor::sequential().par_map_indexed(&items, f);
        for threads in [2, 3, 8, 33] {
            let par = Executor::with_threads(threads).par_map_indexed(&items, f);
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_covers_the_index_space_in_order() {
        for total in [0usize, 1, 7, 64, 1000] {
            for threads in [1, 2, 8] {
                let exec = Executor::with_threads(threads);
                let (chunks, stats) = exec.par_chunks(total, |r| r.clone(), || false);
                assert!(!stats.stopped);
                assert_eq!(stats.tasks, total);
                assert_eq!(stats.completed, total);
                let mut expect = 0usize;
                for (range, echoed) in &chunks {
                    assert_eq!(range, echoed);
                    assert_eq!(range.start, expect, "gap before {range:?}");
                    expect = range.end;
                }
                assert_eq!(expect, total);
            }
        }
    }

    #[test]
    fn stop_predicate_cuts_work_short() {
        let items: Vec<u64> = (0..10_000).collect();
        for threads in [1, 4] {
            let exec = Executor::with_threads(threads);
            // Small enough to fire within the per-chunk stop checks of the
            // parallel path (not just the per-item checks of the
            // sequential one).
            let budget = AtomicU64::new(5);
            let (out, stats) = exec.par_map_guarded(
                &items,
                |_, &x| Some(x),
                || budget.fetch_sub(1, Ordering::Relaxed) == 0,
            );
            assert_eq!(out.len(), items.len());
            assert!(stats.stopped, "threads={threads}");
            assert!(stats.completed < items.len(), "threads={threads}");
            // Completed entries hold their own value; skipped ones None.
            for (i, v) in out.iter().enumerate() {
                if let Some(x) = v {
                    assert_eq!(*x, items[i]);
                }
            }
        }
    }

    #[test]
    fn item_level_failures_do_not_stop_the_stage() {
        let items: Vec<u64> = (0..100).collect();
        let exec = Executor::with_threads(4);
        let (out, stats) =
            exec.par_map_guarded(&items, |_, &x| (x % 3 != 0).then_some(x), || false);
        assert!(!stats.stopped);
        assert_eq!(
            stats.completed,
            items.iter().filter(|&&x| x % 3 != 0).count()
        );
        assert_eq!(out.iter().filter(|v| v.is_none()).count(), 34);
    }

    #[test]
    fn sequential_stop_is_per_item_and_prefix_shaped() {
        // After the stop predicate first fires, *no* later item runs —
        // matching the pre-parallel pipeline's degradation shape.
        let items: Vec<u64> = (0..100).collect();
        let calls = AtomicU64::new(0);
        let (out, stats) = Executor::sequential().par_map_guarded(
            &items,
            |_, &x| Some(x),
            || calls.fetch_add(1, Ordering::Relaxed) >= 10,
        );
        assert!(stats.stopped);
        assert_eq!(stats.completed, 10);
        assert!(out[..10].iter().all(Option::is_some));
        assert!(out[10..].iter().all(Option::is_none));
    }

    #[test]
    fn empty_input() {
        let exec = Executor::with_threads(8);
        let (out, stats) = exec.par_map_guarded(&[] as &[u64], |_, &x| Some(x), || false);
        assert!(out.is_empty());
        assert_eq!(stats.tasks, 0);
        assert!(!stats.stopped);
    }

    #[test]
    fn auto_threads_is_positive_and_zero_means_auto() {
        assert!(Executor::auto_threads() >= 1);
        assert_eq!(
            Executor::with_threads(0).threads(),
            Executor::auto_threads()
        );
        assert!(Executor::sequential().is_sequential());
        assert!(!Executor::with_threads(2).is_sequential());
    }

    #[test]
    fn watchdog_fires_on_silence_and_reports_it() {
        let hb = Heartbeat::new();
        let fired = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&fired);
        let dog = Watchdog::spawn(
            hb,
            Duration::from_millis(40),
            Duration::from_millis(5),
            move || flag.store(true, Ordering::Relaxed),
        );
        // Nobody beats: the stall must be noticed well within the margin.
        std::thread::sleep(Duration::from_millis(300));
        assert!(dog.stop());
        assert!(fired.load(Ordering::Relaxed));
    }

    #[test]
    fn watchdog_stays_quiet_while_beats_arrive() {
        let hb = Heartbeat::new();
        let fired = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&fired);
        let dog = Watchdog::spawn(
            hb.clone(),
            Duration::from_millis(500),
            Duration::from_millis(5),
            move || flag.store(true, Ordering::Relaxed),
        );
        for _ in 0..20 {
            hb.beat();
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!dog.stop());
        assert!(!fired.load(Ordering::Relaxed));
        assert_eq!(hb.count(), 20);
    }

    #[test]
    fn dropping_a_watchdog_joins_without_firing() {
        let fired = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&fired);
        let dog = Watchdog::spawn(
            Heartbeat::new(),
            Duration::from_secs(3600),
            Duration::from_millis(5),
            move || flag.store(true, Ordering::Relaxed),
        );
        drop(dog);
        assert!(!fired.load(Ordering::Relaxed));
    }

    #[test]
    fn stats_merge_accumulates() {
        let a = ParStats {
            tasks: 10,
            completed: 8,
            threads: 2,
            wall: Duration::from_millis(5),
            stopped: false,
        };
        let b = ParStats {
            tasks: 5,
            completed: 5,
            threads: 4,
            wall: Duration::from_millis(3),
            stopped: true,
        };
        let m = a.merge(b);
        assert_eq!(m.tasks, 15);
        assert_eq!(m.completed, 13);
        assert_eq!(m.threads, 4);
        assert_eq!(m.wall, Duration::from_millis(8));
        assert!(m.stopped);
    }
}

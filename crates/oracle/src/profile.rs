//! Oracle reference profiles: one naive propagation per join path.
//!
//! Mirrors the production profile semantics: the tuple identified by the
//! reference's own name (followed via the reference foreign key) is
//! blocked in every per-path propagation — linkage routed through the
//! shared name tuple is vacuous for distinguishing resembling references.

use crate::propagate::{enumerate_propagation, OraclePropagation};
use relstore::{Catalog, FkId, JoinPath, TupleRef};

/// Per-path propagation results for one reference, computed naively.
#[derive(Debug, Clone)]
pub struct OracleProfile {
    /// The reference this profile describes.
    pub reference: TupleRef,
    /// One propagation per path, in path order.
    pub props: Vec<OraclePropagation>,
}

/// Build the oracle profile of one reference: propagate along every path
/// with the reference's own name tuple blocked.
pub fn build_profile(
    catalog: &Catalog,
    paths: &[JoinPath],
    ref_fk: FkId,
    reference: TupleRef,
) -> OracleProfile {
    let blocked: Vec<TupleRef> = catalog
        .follow_forward(ref_fk, reference)
        .into_iter()
        .collect();
    let props = paths
        .iter()
        .map(|path| enumerate_propagation(catalog, path, reference, &blocked))
        .collect();
    OracleProfile { reference, props }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::select_paths;
    use datagen::{AmbiguousSpec, World, WorldConfig};

    #[test]
    fn own_name_tuple_never_appears_in_any_map() {
        let mut config = WorldConfig::tiny(4);
        config.n_authors = 80;
        config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![4, 3])];
        let d = datagen::to_catalog(&World::generate(config)).unwrap();
        let ex = relstore::expand_values(&d.catalog).unwrap();
        let (paths, ref_fk) = select_paths(&ex.catalog, "Publish", "author", 3).unwrap();
        let r = d.truths[0].refs[0];
        let own = ex.catalog.follow_forward(ref_fk, r).unwrap();
        let p = build_profile(&ex.catalog, &paths, ref_fk, r);
        assert_eq!(p.props.len(), paths.len());
        let mut reached_any = false;
        for prop in &p.props {
            assert!(!prop.forward.contains_key(&own));
            assert!(!prop.backward.contains_key(&own));
            reached_any |= !prop.forward.is_empty();
        }
        assert!(reached_any, "a real reference reaches some neighbors");
    }
}

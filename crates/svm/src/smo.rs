//! Sequential Minimal Optimization (Platt's SMO) for the dual soft-margin
//! SVM — the same algorithm family as LIBSVM, hand-rolled.
//!
//! Solves
//! `max_α Σα_i − ½ ΣΣ α_i α_j y_i y_j K(x_i, x_j)` subject to
//! `0 ≤ α_i ≤ C` and `Σ α_i y_i = 0`, by repeatedly optimizing one pair of
//! multipliers analytically (the "simplified SMO" variant with randomized
//! second choice, run to KKT convergence).

use crate::data::{Dataset, Result, SvmError};
use crate::kernel::Kernel;
use crate::model::KernelModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyperparameters for the SMO solver.
#[derive(Debug, Clone)]
pub struct SmoConfig {
    /// Soft-margin penalty (> 0). Larger C fits the training set harder.
    pub c: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Number of consecutive full passes without any update before
    /// declaring convergence.
    pub max_passes: usize,
    /// Hard cap on full passes (guards against cycling on noisy data).
    pub max_iters: usize,
    /// RNG seed for the randomized second-multiplier choice.
    pub seed: u64,
}

impl Default for SmoConfig {
    fn default() -> Self {
        SmoConfig {
            c: 1.0,
            tol: 1e-3,
            max_passes: 5,
            max_iters: 200,
            seed: 7,
        }
    }
}

/// Train a kernel SVM with SMO.
///
/// ```
/// use svm::{train_smo, Dataset, Kernel, SmoConfig};
/// let data = Dataset::from_parts(
///     vec![vec![2.0], vec![1.5], vec![-2.0], vec![-1.5]],
///     vec![1.0, 1.0, -1.0, -1.0],
/// ).unwrap();
/// let model = train_smo(&data, Kernel::Linear, &SmoConfig::default()).unwrap();
/// assert_eq!(model.accuracy(&data), 1.0);
/// ```
pub fn train_smo(data: &Dataset, kernel: Kernel, cfg: &SmoConfig) -> Result<KernelModel> {
    train_smo_guarded(data, kernel, cfg, &mut |_| true)
}

/// Like [`train_smo`], but cooperatively interruptible.
///
/// `guard` is called once per full pass over the multipliers with the
/// number of examples about to be scanned (each scan is `O(n)` kernel-row
/// work). Returning `false` aborts the optimization with
/// [`SvmError::Interrupted`] — a half-converged hyperplane is not returned,
/// because its weights can be arbitrarily far from the optimum and the
/// caller could not tell.
pub fn train_smo_guarded(
    data: &Dataset,
    kernel: Kernel,
    cfg: &SmoConfig,
    guard: &mut dyn FnMut(u64) -> bool,
) -> Result<KernelModel> {
    if cfg.c <= 0.0 {
        return Err(SvmError::BadParameter {
            name: "c",
            reason: "must be > 0".into(),
        });
    }
    data.require_both_classes()?;
    let n = data.len();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Cache the kernel matrix: the training sets here are small (the paper
    // uses 1000+1000 examples), so O(n²) memory is the right trade.
    let mut k = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i..n {
            let v = kernel.eval(data.x(i), data.x(j));
            k[i * n + j] = v;
            k[j * n + i] = v;
        }
    }
    let kij = |i: usize, j: usize| k[i * n + j];

    let mut alpha = vec![0.0f64; n];
    let mut b = 0.0f64;

    // f(x_m) − y_m under the current multipliers.
    let err = |alpha: &[f64], b: f64, m: usize| -> f64 {
        let mut f = b;
        for i in 0..n {
            if alpha[i] > 0.0 {
                f += alpha[i] * data.y(i) * kij(i, m);
            }
        }
        f - data.y(m)
    };

    let mut passes = 0usize;
    let mut iters = 0usize;
    while passes < cfg.max_passes && iters < cfg.max_iters {
        if !guard(n as u64) {
            return Err(SvmError::Interrupted { passes_done: iters });
        }
        let mut changed = 0usize;
        for i in 0..n {
            let ei = err(&alpha, b, i);
            let yi = data.y(i);
            let ri = yi * ei;
            if (ri < -cfg.tol && alpha[i] < cfg.c) || (ri > cfg.tol && alpha[i] > 0.0) {
                // Second multiplier: random j != i.
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = err(&alpha, b, j);
                let yj = data.y(j);
                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if yi != yj {
                    (
                        (aj_old - ai_old).max(0.0),
                        (cfg.c + aj_old - ai_old).min(cfg.c),
                    )
                } else {
                    (
                        (ai_old + aj_old - cfg.c).max(0.0),
                        (ai_old + aj_old).min(cfg.c),
                    )
                };
                // Degenerate (or floating-point-inverted) box: nothing to
                // optimize for this pair.
                if hi - lo < 1e-12 {
                    continue;
                }
                let eta = 2.0 * kij(i, j) - kij(i, i) - kij(j, j);
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - yj * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-5 {
                    continue;
                }
                let ai = ai_old + yi * yj * (aj_old - aj);
                alpha[i] = ai;
                alpha[j] = aj;
                let b1 = b - ei - yi * (ai - ai_old) * kij(i, i) - yj * (aj - aj_old) * kij(i, j);
                let b2 = b - ej - yi * (ai - ai_old) * kij(i, j) - yj * (aj - aj_old) * kij(j, j);
                b = if ai > 0.0 && ai < cfg.c {
                    b1
                } else if aj > 0.0 && aj < cfg.c {
                    b2
                } else {
                    0.5 * (b1 + b2)
                };
                changed += 1;
            }
        }
        if changed == 0 {
            passes += 1;
        } else {
            passes = 0;
        }
        iters += 1;
    }

    // Keep only support vectors.
    let kept = alpha.iter().filter(|&&a| a > 1e-12).count();
    let mut svs = Vec::with_capacity(kept);
    let mut coefs = Vec::with_capacity(kept);
    for i in 0..n {
        if alpha[i] > 1e-12 {
            // distinct-lint: allow(D110, reason="each support-vector row is copied exactly once into the returned model, which owns its vectors by contract")
            svs.push(data.x(i).to_vec());
            coefs.push(alpha[i] * data.y(i));
        }
    }
    if svs.is_empty() {
        return Err(SvmError::Degenerate(
            "SMO produced no support vectors".into(),
        ));
    }
    Ok(KernelModel {
        kernel,
        support_vectors: svs,
        coefficients: coefs,
        bias: b,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Linearly separable 2-D blobs.
    fn blobs(n_per: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n_per {
            d.push(
                vec![
                    2.0 + rng.gen_range(-0.5..0.5),
                    2.0 + rng.gen_range(-0.5..0.5),
                ],
                1.0,
            )
            .unwrap();
            d.push(
                vec![
                    -2.0 + rng.gen_range(-0.5..0.5),
                    -2.0 + rng.gen_range(-0.5..0.5),
                ],
                -1.0,
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn separable_blobs_reach_full_accuracy() {
        let d = blobs(40, 1);
        let m = train_smo(&d, Kernel::Linear, &SmoConfig::default()).unwrap();
        assert_eq!(m.accuracy(&d), 1.0);
        // Margin is large, so few support vectors.
        assert!(m.sv_count() < d.len() / 2, "sv_count = {}", m.sv_count());
    }

    #[test]
    fn linear_collapse_agrees_with_dual() {
        let d = blobs(30, 2);
        let m = train_smo(&d, Kernel::Linear, &SmoConfig::default()).unwrap();
        let lm = m.to_linear().unwrap();
        for (x, _) in d.iter() {
            assert!((m.decision(x) - lm.decision(x)).abs() < 1e-9);
        }
        assert_eq!(lm.accuracy(&d), 1.0);
    }

    #[test]
    fn xor_needs_nonlinear_kernel() {
        // XOR: not linearly separable.
        let d = Dataset::from_parts(
            vec![
                vec![0.0, 0.0],
                vec![1.0, 1.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
            ],
            vec![1.0, 1.0, -1.0, -1.0],
        )
        .unwrap();
        let rbf = train_smo(
            &d,
            Kernel::Rbf { gamma: 2.0 },
            &SmoConfig {
                c: 10.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(rbf.accuracy(&d), 1.0, "RBF kernel must solve XOR");
        let poly = train_smo(
            &d,
            Kernel::Polynomial {
                degree: 2,
                gamma: 1.0,
                coef0: 1.0,
            },
            &SmoConfig {
                c: 10.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(poly.accuracy(&d), 1.0, "quadratic kernel must solve XOR");
    }

    #[test]
    fn weight_direction_reflects_informative_feature() {
        // Feature 0 carries the class; feature 1 is noise.
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dataset::new();
        for _ in 0..60 {
            let noise = rng.gen_range(-1.0..1.0);
            d.push(vec![1.0 + rng.gen_range(-0.2..0.2), noise], 1.0)
                .unwrap();
            let noise = rng.gen_range(-1.0..1.0);
            d.push(vec![-1.0 + rng.gen_range(-0.2..0.2), noise], -1.0)
                .unwrap();
        }
        let m = train_smo(&d, Kernel::Linear, &SmoConfig::default()).unwrap();
        let lm = m.to_linear().unwrap();
        assert!(
            lm.weights[0] > 5.0 * lm.weights[1].abs(),
            "informative weight should dominate: {:?}",
            lm.weights
        );
    }

    #[test]
    fn noisy_overlap_still_trains() {
        // Overlapping classes: soft margin must tolerate misclassification.
        let mut rng = StdRng::seed_from_u64(4);
        let mut d = Dataset::new();
        for _ in 0..50 {
            d.push(vec![0.5 + rng.gen_range(-1.0..1.0)], 1.0).unwrap();
            d.push(vec![-0.5 + rng.gen_range(-1.0..1.0)], -1.0).unwrap();
        }
        let m = train_smo(
            &d,
            Kernel::Linear,
            &SmoConfig {
                c: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        let acc = m.accuracy(&d);
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn bad_c_rejected() {
        let d = blobs(5, 5);
        assert!(matches!(
            train_smo(
                &d,
                Kernel::Linear,
                &SmoConfig {
                    c: 0.0,
                    ..Default::default()
                }
            ),
            Err(SvmError::BadParameter { .. })
        ));
    }

    #[test]
    fn single_class_rejected() {
        let d = Dataset::from_parts(vec![vec![1.0], vec![2.0]], vec![1.0, 1.0]).unwrap();
        assert!(train_smo(&d, Kernel::Linear, &SmoConfig::default()).is_err());
    }

    #[test]
    fn guarded_training_matches_unguarded_and_interrupts_cleanly() {
        let d = blobs(20, 6);
        let full = train_smo(&d, Kernel::Linear, &SmoConfig::default()).unwrap();
        let mut charged = 0u64;
        let guarded = train_smo_guarded(&d, Kernel::Linear, &SmoConfig::default(), &mut |u| {
            charged += u;
            true
        })
        .unwrap();
        assert_eq!(
            full.to_linear().unwrap().weights,
            guarded.to_linear().unwrap().weights
        );
        assert!(charged >= d.len() as u64, "at least one pass charged");
        // Guard tripping on the second pass: typed error, pass count = 1.
        let mut passes = 0u32;
        let err = train_smo_guarded(&d, Kernel::Linear, &SmoConfig::default(), &mut |_| {
            passes += 1;
            passes <= 1
        })
        .unwrap_err();
        assert!(matches!(err, SvmError::Interrupted { passes_done: 1 }));
    }

    #[test]
    fn deterministic_given_seed() {
        let d = blobs(20, 6);
        let m1 = train_smo(&d, Kernel::Linear, &SmoConfig::default()).unwrap();
        let m2 = train_smo(&d, Kernel::Linear, &SmoConfig::default()).unwrap();
        assert_eq!(
            m1.to_linear().unwrap().weights,
            m2.to_linear().unwrap().weights
        );
    }

    #[test]
    fn dual_constraint_holds() {
        // Σ α_i y_i = 0 — equivalently Σ coefficients = 0.
        let d = blobs(25, 8);
        let m = train_smo(&d, Kernel::Linear, &SmoConfig::default()).unwrap();
        let s: f64 = m.coefficients.iter().sum();
        assert!(s.abs() < 1e-9, "Σ α y = {s}");
    }

    #[test]
    fn alphas_bounded_by_c() {
        let c = 0.7;
        let d = blobs(25, 9);
        let m = train_smo(
            &d,
            Kernel::Linear,
            &SmoConfig {
                c,
                ..Default::default()
            },
        )
        .unwrap();
        for (coef, sv) in m.coefficients.iter().zip(&m.support_vectors) {
            assert!(
                coef.abs() <= c + 1e-9,
                "|α y| = {} for sv {:?}",
                coef.abs(),
                sv
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random binary datasets: arbitrary points in a box, arbitrary
        /// labels (not necessarily separable).
        fn arbitrary_dataset() -> impl Strategy<Value = Dataset> {
            proptest::collection::vec(
                (
                    proptest::collection::vec(-5.0f64..5.0, 2),
                    proptest::bool::ANY,
                ),
                4..30,
            )
            .prop_filter_map("need both classes", |rows| {
                let mut d = Dataset::new();
                for (x, pos) in &rows {
                    d.push(x.clone(), if *pos { 1.0 } else { -1.0 }).ok()?;
                }
                d.require_both_classes().ok()?;
                Some(d)
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn smo_invariants_hold_on_arbitrary_data(
                d in arbitrary_dataset(),
                c in 0.1f64..5.0,
            ) {
                let cfg = SmoConfig { c, max_iters: 40, ..Default::default() };
                let Ok(m) = train_smo(&d, Kernel::Linear, &cfg) else {
                    // Degenerate optimizations (no support vectors) are a
                    // legal outcome on adversarial data.
                    return Ok(());
                };
                // Dual feasibility: 0 < α ≤ C and Σ α y = 0.
                for &coef in &m.coefficients {
                    prop_assert!(coef.is_finite());
                    prop_assert!(coef.abs() <= c + 1e-6, "|α y| = {}", coef.abs());
                    prop_assert!(coef != 0.0);
                }
                let balance: f64 = m.coefficients.iter().sum();
                prop_assert!(balance.abs() < 1e-6, "Σ α y = {balance}");
                // The model classifies at least as well as the majority class.
                let (pos, neg) = d.class_counts();
                let majority = pos.max(neg) as f64 / d.len() as f64;
                prop_assert!(m.accuracy(&d) >= majority - 0.35);
            }

            #[test]
            fn pegasos_never_produces_non_finite_models(
                d in arbitrary_dataset(),
                lambda in 1e-5f64..1.0,
            ) {
                let cfg = crate::pegasos::PegasosConfig {
                    lambda,
                    iterations: 2_000,
                    ..Default::default()
                };
                let m = crate::pegasos::train_pegasos(&d, &cfg).unwrap();
                prop_assert!(m.bias.is_finite());
                prop_assert!(m.weights.iter().all(|w| w.is_finite()));
            }
        }
    }
}

//! Aligned ASCII tables for experiment output.
//!
//! Every experiment binary prints its table/figure through this module so
//! the harness output visually matches the paper's tables.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (text).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple table builder.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Start a table with headers and per-column alignment.
    ///
    /// # Panics
    /// Panics if `headers` and `aligns` differ in length.
    pub fn new(headers: &[&str], aligns: &[Align]) -> Self {
        assert_eq!(headers.len(), aligns.len(), "one alignment per header");
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns: aligns.to_vec(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Attach a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Add a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push('|');
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.len();
                match aligns[i] {
                    Align::Left => {
                        line.push(' ');
                        line.push_str(cell);
                        line.push_str(&" ".repeat(pad + 1));
                    }
                    Align::Right => {
                        line.push_str(&" ".repeat(pad + 1));
                        line.push_str(cell);
                        line.push(' ');
                    }
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths, &vec![Align::Left; cols]));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths, &self.aligns));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 3 decimal places (the paper's table precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 4 decimal places.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["Name", "#refs"], &[Align::Left, Align::Right]);
        t.row(vec!["Wei Wang".into(), "141".into()]);
        t.row(vec!["Hui Fang".into(), "9".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Name"));
        assert!(lines[1].starts_with('-'));
        // Right alignment: "9" ends at the same column as "141".
        let col_141 = lines[2].rfind("141").unwrap() + 3;
        let col_9 = lines[3].rfind('9').unwrap() + 1;
        assert_eq!(col_141, col_9);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn title_is_printed_first() {
        let t = Table::new(&["a"], &[Align::Left]).with_title("Table 1.");
        assert!(t.render().starts_with("Table 1.\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new(&["a", "b"], &[Align::Left, Align::Left]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(0.83649), "0.836");
        assert_eq!(f4(0.0005), "0.0005");
        assert_eq!(f3(1.0), "1.000");
    }
}

//! # svm — from-scratch Support Vector Machine library
//!
//! DISTINCT learns one weight per join path with a linear-kernel SVM
//! (paper §3). Rust has no canonical SVM crate, so this one implements the
//! whole stack from scratch:
//!
//! * [`Dataset`] — binary-labeled dense feature vectors;
//! * [`Kernel`] — linear, polynomial, and RBF kernels;
//! * [`train_smo`] — Platt's Sequential Minimal Optimization for the dual
//!   soft-margin problem (the LIBSVM algorithm family);
//! * [`train_pegasos`] — primal stochastic sub-gradient descent, used both
//!   as a fast solver and as an independent cross-check of SMO;
//! * [`LinearModel`] / [`KernelModel`] — decision functions, with dual→
//!   primal collapse for the linear kernel;
//! * [`StandardScaler`] — feature standardization with weight unscaling;
//! * [`PlattScaler`] — probability calibration of decision values;
//! * [`cross_validate`] / [`select_c`] — deterministic k-fold evaluation
//!   and hyperparameter grid search.

#![warn(missing_docs)]

pub mod cv;
pub mod data;
pub mod grid;
pub mod kernel;
pub mod model;
pub mod pegasos;
pub mod platt;
pub mod scale;
pub mod smo;

pub use cv::{cross_validate, kfold_indices, mean};
pub use data::{dot, Dataset, Result, SvmError};
pub use grid::{default_c_grid, select_c, GridSearchResult};
pub use kernel::Kernel;
pub use model::{KernelModel, LinearModel};
pub use pegasos::{train_pegasos, PegasosConfig};
pub use platt::PlattScaler;
pub use scale::StandardScaler;
pub use smo::{train_smo, train_smo_guarded, SmoConfig};

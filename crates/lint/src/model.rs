//! Per-file analysis context: where a file sits in the workspace, which
//! token ranges are test code, and the function spans passes reason about.

use crate::lexer::{lex, Tok, TokKind};

/// What kind of code a file holds — passes scope themselves by role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Shipping library code (`crates/*/src/**`, root `src/**`).
    Library,
    /// Integration tests (`tests/**`) and anything under `#[cfg(test)]`.
    Test,
    /// Example programs (`examples/**`).
    Example,
    /// Benchmarks and experiment harnesses (`benches/**`, `crates/bench`).
    Bench,
    /// Binary entry points (`src/bin/**`, `src/main.rs`).
    Bin,
}

/// One function item: token span, header facts the passes need.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// Token index of the body's opening `{` (== `end` for bodiless fns).
    pub body_start: usize,
    /// Token index one past the body's closing `}`.
    pub end: usize,
    /// Whether any parameter or generic bound names `guard` (the
    /// budget-guard convention: `guard: &mut dyn FnMut(u64) -> bool`).
    pub has_guard_param: bool,
    /// Whether the span is test code (`#[test]` / inside `#[cfg(test)]`).
    pub is_test: bool,
}

/// A lexed file plus the structural facts every pass shares.
#[derive(Debug)]
pub struct FileCtx {
    /// Workspace-relative path with `/` separators (`crates/core/src/x.rs`).
    pub path: String,
    /// Owning crate's directory name (`core`, `exec`, ...; `.` for the
    /// root package).
    pub crate_name: String,
    /// File role.
    pub role: Role,
    /// The token stream (comments included).
    pub toks: Vec<Tok>,
    /// `test[i]` — token `i` lies in test code (`#[cfg(test)]` region or a
    /// `#[test]` function) or the whole file is test-roled.
    pub test_mask: Vec<bool>,
    /// All function items, in source order.
    pub fns: Vec<FnSpan>,
}

/// Classify a workspace-relative path into (crate name, role).
/// `None` means the file is out of scope (vendor, target, lint fixtures).
pub fn classify(path: &str) -> Option<(String, Role)> {
    let parts: Vec<&str> = path.split('/').collect();
    if parts.iter().any(|p| p.starts_with('.')) {
        return None;
    }
    match parts.as_slice() {
        ["vendor", ..] | ["target", ..] => None,
        // The lint crate's known-bad fixtures must not lint the workspace.
        ["crates", "lint", "tests", "fixtures", ..] => None,
        ["crates", "bench", ..] => Some(("bench".into(), Role::Bench)),
        ["crates", krate, "src", "bin", ..] => Some(((*krate).into(), Role::Bin)),
        ["crates", krate, "src", ..] => Some(((*krate).into(), Role::Library)),
        ["crates", krate, "tests", ..] => Some(((*krate).into(), Role::Test)),
        ["crates", krate, "examples", ..] => Some(((*krate).into(), Role::Example)),
        ["crates", krate, "benches", ..] => Some(((*krate).into(), Role::Bench)),
        ["src", "bin", ..] | ["src", "main.rs"] => Some((".".into(), Role::Bin)),
        ["src", ..] => Some((".".into(), Role::Library)),
        ["tests", ..] => Some((".".into(), Role::Test)),
        ["examples", ..] => Some((".".into(), Role::Example)),
        ["benches", ..] => Some((".".into(), Role::Bench)),
        _ => None,
    }
}

impl FileCtx {
    /// Lex and structure one file.
    pub fn new(path: &str, crate_name: &str, role: Role, src: &str) -> FileCtx {
        let toks = lex(src);
        let test_mask = build_test_mask(&toks, role);
        let fns = find_fns(&toks, &test_mask);
        FileCtx {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            role,
            toks,
            test_mask,
            fns,
        }
    }

    /// Non-comment token at index, if any.
    pub fn tok(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    /// Index of the next token after `i` skipping comments; `toks.len()`
    /// when exhausted.
    pub fn next_code(&self, mut i: usize) -> usize {
        i += 1;
        while i < self.toks.len()
            && matches!(self.toks[i].kind, TokKind::Comment | TokKind::DocComment)
        {
            i += 1;
        }
        i
    }

    /// Index of the previous code token before `i`, if any.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        let mut j = i;
        while j > 0 {
            j -= 1;
            if !matches!(self.toks[j].kind, TokKind::Comment | TokKind::DocComment) {
                return Some(j);
            }
        }
        None
    }

    /// Whether token `i` is inside test code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// Whether the file as a whole is library-shipping code.
    pub fn is_library(&self) -> bool {
        self.role == Role::Library
    }
}

/// Mark the token ranges under `#[cfg(test)]` items and `#[test]` fns.
fn build_test_mask(toks: &[Tok], role: Role) -> Vec<bool> {
    let mut mask = vec![role != Role::Library && role != Role::Bin; toks.len()];
    let n = toks.len();
    let mut i = 0usize;
    while i < n {
        // An attribute: `#` `[` ... `]`.
        if toks[i].is_punct('#') && i + 1 < n && toks[i + 1].is_punct('[') {
            let attr_start = i;
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut is_test_attr = false;
            let mut saw_cfg = false;
            let mut saw_test_ident = false;
            while j < n {
                let t = &toks[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.is_ident("cfg") {
                    saw_cfg = true;
                } else if t.is_ident("test") {
                    saw_test_ident = true;
                    // Bare `#[test]` (or `#[tokio::test]`-style endings).
                    if !saw_cfg {
                        is_test_attr = true;
                    }
                }
                j += 1;
            }
            if saw_cfg && saw_test_ident {
                is_test_attr = true;
            }
            if is_test_attr && j < n {
                // Mark from the attribute through the end of the next item:
                // either a braced body or a `;`-terminated declaration.
                let mut k = j + 1;
                // Skip further attributes on the same item.
                while k + 1 < n && toks[k].is_punct('#') && toks[k + 1].is_punct('[') {
                    let mut d = 0usize;
                    while k < n {
                        if toks[k].is_punct('[') {
                            d += 1;
                        } else if toks[k].is_punct(']') {
                            d -= 1;
                            if d == 0 {
                                k += 1;
                                break;
                            }
                        }
                        k += 1;
                    }
                }
                let mut brace_depth = 0usize;
                let mut entered = false;
                while k < n {
                    if toks[k].is_punct('{') {
                        brace_depth += 1;
                        entered = true;
                    } else if toks[k].is_punct('}') {
                        brace_depth = brace_depth.saturating_sub(1);
                        if entered && brace_depth == 0 {
                            break;
                        }
                    } else if !entered && toks[k].is_punct(';') {
                        break;
                    }
                    k += 1;
                }
                let end = (k + 1).min(n);
                for m in mask.iter_mut().take(end).skip(attr_start) {
                    *m = true;
                }
                i = end;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Locate every `fn` item: name, header facts, body token span.
fn find_fns(toks: &[Tok], test_mask: &[bool]) -> Vec<FnSpan> {
    let n = toks.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        if toks[i].is_ident("fn") {
            // `fn` inside a type position (`FnMut(u64)`) is an Ident of
            // different text, so a bare `fn` keyword is reliable.
            let start = i;
            let line = toks[i].line;
            let mut j = i + 1;
            while j < n && matches!(toks[j].kind, TokKind::Comment | TokKind::DocComment) {
                j += 1;
            }
            let name = if j < n && toks[j].kind == TokKind::Ident {
                toks[j].text.clone()
            } else {
                // `fn(` type syntax — not an item.
                i += 1;
                continue;
            };
            // Scan the header to the body `{` or a terminating `;`,
            // tracking paren/bracket/angle nesting loosely and looking for
            // a `guard` identifier in the parameter list.
            let mut has_guard_param = false;
            let mut k = j + 1;
            let mut paren_depth = 0usize;
            let mut body_start = None;
            while k < n {
                let t = &toks[k];
                if t.is_punct('(') {
                    paren_depth += 1;
                } else if t.is_punct(')') {
                    paren_depth = paren_depth.saturating_sub(1);
                } else if paren_depth > 0 && t.is_ident("guard") {
                    has_guard_param = true;
                } else if paren_depth == 0 && t.is_punct('{') {
                    body_start = Some(k);
                    break;
                } else if paren_depth == 0 && t.is_punct(';') {
                    break;
                }
                k += 1;
            }
            let (body_start, end) = match body_start {
                Some(b) => {
                    // Match braces to the body's end.
                    let mut depth = 0usize;
                    let mut e = b;
                    while e < n {
                        if toks[e].is_punct('{') {
                            depth += 1;
                        } else if toks[e].is_punct('}') {
                            depth -= 1;
                            if depth == 0 {
                                e += 1;
                                break;
                            }
                        }
                        e += 1;
                    }
                    (b, e)
                }
                None => (k, k),
            };
            out.push(FnSpan {
                name,
                line,
                start,
                body_start,
                end,
                has_guard_param,
                is_test: test_mask.get(start).copied().unwrap_or(false),
            });
            // Do not skip the body: nested fns should be found too.
            i = j + 1;
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/core/src/pipeline.rs"),
            Some(("core".into(), Role::Library))
        );
        assert_eq!(
            classify("crates/exec/tests/t.rs"),
            Some(("exec".into(), Role::Test))
        );
        assert_eq!(
            classify("crates/bench/src/bin/exp.rs"),
            Some(("bench".into(), Role::Bench))
        );
        assert_eq!(classify("src/lib.rs"), Some((".".into(), Role::Library)));
        assert_eq!(classify("tests/smoke.rs"), Some((".".into(), Role::Test)));
        assert_eq!(classify("examples/q.rs"), Some((".".into(), Role::Example)));
        assert_eq!(classify("vendor/rand/src/lib.rs"), None);
        assert_eq!(classify("crates/lint/tests/fixtures/bad.rs"), None);
        assert_eq!(
            classify("crates/oracle/src/bin/regen_golden.rs"),
            Some(("oracle".into(), Role::Bin))
        );
    }

    #[test]
    fn cfg_test_region_is_masked() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn lib2() {}";
        let ctx = FileCtx::new("crates/c/src/a.rs", "c", Role::Library, src);
        let unwraps: Vec<bool> = ctx
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| ctx.in_test(i))
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        let lib2 = ctx.fns.iter().find(|f| f.name == "lib2").unwrap();
        assert!(!lib2.is_test);
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let src = "#[test]\nfn t() { z.unwrap(); }\nfn real() { w.unwrap(); }";
        let ctx = FileCtx::new("crates/c/src/a.rs", "c", Role::Library, src);
        let t = ctx.fns.iter().find(|f| f.name == "t").unwrap();
        let real = ctx.fns.iter().find(|f| f.name == "real").unwrap();
        assert!(t.is_test);
        assert!(!real.is_test);
    }

    #[test]
    fn fn_spans_and_guard_params() {
        let src = "pub fn a(guard: &mut dyn FnMut(u64) -> bool) { loop {} }\nfn b() -> usize { 1 }";
        let ctx = FileCtx::new("crates/c/src/a.rs", "c", Role::Library, src);
        assert_eq!(ctx.fns.len(), 2);
        assert!(ctx.fns[0].has_guard_param);
        assert!(!ctx.fns[1].has_guard_param);
        assert!(ctx.fns[0].end > ctx.fns[0].body_start);
    }

    #[test]
    fn whole_file_test_role_masks_everything() {
        let ctx = FileCtx::new("tests/x.rs", ".", Role::Test, "fn f() { a.unwrap(); }");
        assert!(ctx.test_mask.iter().all(|&b| b));
    }
}

//@ crate: relgraph
//@ path: crates/relgraph/src/bad_d006.rs
//@ role: library

/// Narrows the pipeline to f32 "to save memory" — resemblances and walk
/// probabilities lose the bits the golden corpus pins.
pub fn narrow(x: f64) -> f64 {
    let small = x as f32; //~ D006
    f64::from(small)
}

/// Reduces in f32 precision.
pub fn reduce(xs: &[f32]) -> f32 {
    xs.iter().copied().sum::<f32>() //~ D006
}

/// Seeds an accumulator with an f32 literal.
pub fn seed() -> f32 {
    0.5f32 //~ D006
}

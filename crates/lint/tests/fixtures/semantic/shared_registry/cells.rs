//@ path: crates/core/src/cells.rs
//@ crate: core
//! Fixture: D108 shared-state registry. Every interior-mutability cell
//! reachable from the resolve spine must declare its merge discipline
//! with `// distinct-lint: shared(...)`. `Cache.pending` is reachable
//! through `resolve_cached` and undeclared; `Cache.hits` is declared;
//! `Scratch.local` is undeclared but unreachable from the spine, so it
//! is registered without firing. The stray declaration at the bottom
//! matches no cell and is flagged as registry hygiene (D000).

/// Shared profile cache: one undeclared and one declared cell.
pub struct Cache {
    pending: Mutex<u32>, //~ D108
    // distinct-lint: shared(commutative counter: relaxed increments, read only for diagnostics)
    hits: AtomicU64,
}

impl Cache {
    fn touch(&self) -> u32 {
        self.hits.fetch_add(1, Relaxed)
    }
}

/// Never reached from the resolve/train spine.
pub struct Scratch {
    local: RefCell<u32>,
}

impl Scratch {
    fn bump(&self) {
        self.local.replace(1);
    }
}

/// Entry point: the resolve spine touches the cache.
pub fn resolve_cached(c: &Cache) -> u32 {
    c.touch()
}

// distinct-lint: shared(matches no cell on the next line) //~ D000
fn not_a_cell() {}

//! Integration: the full DISTINCT pipeline over generated data — world
//! generation, catalog emission, training, resolution, evaluation, and
//! model persistence — exercised across crate boundaries.

use datagen::{to_catalog, AmbiguousSpec, World, WorldConfig};
use distinct::{
    CalibrationConfig, Distinct, DistinctConfig, PathWeights, ResolveRequest, TrainingConfig,
};
use eval::{bcubed_scores, pairwise_scores, Confusion};

fn dataset() -> datagen::DblpDataset {
    let mut config = WorldConfig::tiny(42);
    config.ambiguous = vec![
        AmbiguousSpec::new("Wei Wang", vec![10, 8, 5]),
        AmbiguousSpec::new("Hui Fang", vec![5, 4]),
    ];
    to_catalog(&World::generate(config)).expect("valid world")
}

fn engine_config() -> DistinctConfig {
    DistinctConfig {
        training: TrainingConfig {
            positives: 250,
            negatives: 250,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Train and auto-calibrate the clustering threshold (the extension that
/// replaces the paper's hand-tuned min-sim; see distinct::calibrate).
fn trained_engine(d: &datagen::DblpDataset) -> Distinct {
    let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", engine_config()).unwrap();
    engine.train().unwrap();
    engine
        .calibrate_threshold(&CalibrationConfig::default())
        .unwrap();
    engine
}

#[test]
fn trained_pipeline_beats_chance_on_every_planted_name() {
    let d = dataset();
    let engine = trained_engine(&d);

    for truth in &d.truths {
        let clustering = engine.resolve(&ResolveRequest::new(&truth.refs)).clustering;
        let s = pairwise_scores(&truth.labels, &clustering.labels);
        // Baseline comparison: all-singletons has f=0; all-merged has
        // f = f(one cluster). The pipeline must beat the better of the two.
        let merged = vec![0usize; truth.labels.len()];
        let merged_f = pairwise_scores(&truth.labels, &merged).f_measure;
        assert!(
            s.f_measure > merged_f,
            "{}: f {} not better than trivial merge {}",
            truth.name,
            s.f_measure,
            merged_f
        );
        assert!(s.f_measure > 0.5, "{}: f {}", truth.name, s.f_measure);
        // B³ agrees directionally.
        let b3 = bcubed_scores(&truth.labels, &clustering.labels);
        assert!(b3.f_measure > 0.5, "{}: b3 {}", truth.name, b3.f_measure);
    }
}

#[test]
fn hardest_name_resolves_with_high_purity() {
    let d = dataset();
    let engine = trained_engine(&d);
    let truth = &d.truths[0];
    let clustering = engine.resolve(&ResolveRequest::new(&truth.refs)).clustering;
    let confusion = Confusion::from_labels(&truth.labels, &clustering.labels);
    assert!(confusion.purity() > 0.8, "purity {}", confusion.purity());
}

#[test]
fn learned_weights_transfer_between_engines() {
    let d = dataset();
    let mut trained = Distinct::prepare(&d.catalog, "Publish", "author", engine_config()).unwrap();
    trained.train().unwrap();
    let json = serde_json::to_string(trained.weights()).unwrap();

    // A fresh engine (no training) with restored weights must produce the
    // same clusterings as the trained engine.
    let mut fresh = Distinct::prepare(&d.catalog, "Publish", "author", engine_config()).unwrap();
    let weights: PathWeights = serde_json::from_str(&json).unwrap();
    fresh.set_weights(weights).unwrap();

    for truth in &d.truths {
        let a = trained
            .resolve(&ResolveRequest::new(&truth.refs))
            .clustering;
        let b = fresh.resolve(&ResolveRequest::new(&truth.refs)).clustering;
        assert_eq!(a.labels, b.labels, "{}", truth.name);
    }
}

#[test]
fn supervised_weights_beat_uniform_on_average() {
    let d = dataset();
    let supervised = trained_engine(&d);
    let uniform = Distinct::prepare(&d.catalog, "Publish", "author", engine_config()).unwrap();

    let avg_f = |engine: &Distinct| -> f64 {
        d.truths
            .iter()
            .map(|t| {
                let c = engine.resolve(&ResolveRequest::new(&t.refs)).clustering;
                pairwise_scores(&t.labels, &c.labels).f_measure
            })
            .sum::<f64>()
            / d.truths.len() as f64
    };
    let s = avg_f(&supervised);
    let u = avg_f(&uniform);
    assert!(s > u - 0.02, "supervised {s} should not trail uniform {u}");
}

#[test]
fn resolution_is_deterministic() {
    let d = dataset();
    let run = || {
        let engine = trained_engine(&d);
        let truth = &d.truths[0];
        engine
            .resolve(&ResolveRequest::new(&truth.refs))
            .clustering
            .labels
    };
    assert_eq!(run(), run());
}

#[test]
fn references_outside_planted_names_also_resolve() {
    // Pick an arbitrary frequent ordinary name and check resolution does
    // not crash and yields a sane clustering.
    let d = dataset();
    let engine = Distinct::prepare(&d.catalog, "Publish", "author", engine_config()).unwrap();
    let publish = d.catalog.relation(d.publish);
    // The most frequent author value.
    let counts = publish.value_counts(0);
    let (name, n) = counts
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(v, &c)| (v.as_str().unwrap().to_string(), c))
        .unwrap();
    let refs = engine.references_of(&name);
    let clustering = engine.resolve(&ResolveRequest::new(&refs)).clustering;
    assert_eq!(refs.len(), n);
    assert_eq!(clustering.labels.len(), n);
    assert!(clustering.cluster_count() >= 1);
}

//! Durable, resumable resolution: the run manager.
//!
//! [`Distinct::resolve`] computes everything in memory; a crash at 95% of
//! a paper-scale run loses all of it. [`Distinct::resolve_durable`] runs
//! the same three stages — profile fan-out, pairwise similarity matrix,
//! agglomerative clustering — but commits an atomic, checksummed
//! checkpoint into a **run directory** as each unit of work completes:
//!
//! ```text
//! <run_dir>/
//!   run.json           run manifest: format version + request fingerprint
//!   profiles-<k>.ck    profiles of refs[k..k+len], one file per chunk
//!   similarity.ck      the full pairwise leaf tables (stage 2 output)
//!   clustering.ck      labels + merge history (the final answer)
//! ```
//!
//! Every file is written with [`relstore::write_atomic`] (temp + rename,
//! the sanctioned persistence primitive of lint D105) and framed like the
//! engine checkpoint: magic line with a format version, FNV-1a-64
//! checksum, JSON payload. A killed run therefore leaves only complete,
//! verifiable artifacts plus at most one `.tmp` orphan.
//!
//! **Resume** is the same call on the same directory: the manifest
//! fingerprint proves the directory belongs to this exact request (same
//! references, threshold, constraints, weights, catalog), then completed
//! stages are skipped — a committed `clustering.ck` returns immediately,
//! a committed `similarity.ck` skips profiling entirely, and otherwise
//! profiling restarts from the first chunk without a committed file.
//! Because each stage's persisted output round-trips `f64`s exactly, a
//! resumed run's partition is bit-identical to an uninterrupted one (the
//! chaos sweep in `tests/resume_chaos.rs` proves this at every kill
//! point).
//!
//! Three robustness seams ride along:
//!
//! * **retry with backoff** — transient I/O failures are retried up to
//!   [`RunOptions::max_retries`] times with exponential backoff and
//!   deterministic, seeded jitter (the same splitmix64 recipe as the
//!   fault injector, so schedules reproduce per seed);
//! * **watchdog** — when [`RunOptions::stall_after`] is set, a
//!   [`exec::Watchdog`] observes a heartbeat beaten at every chunk and
//!   stage commit; silence trips the run with the typed
//!   [`InterruptKind::Stalled`], degrading it like any other limit
//!   instead of hanging forever;
//! * **memory budget** — when [`RunOptions::memory_budget_bytes`] is set
//!   and resident memory exceeds it, the shared profile cache is evicted
//!   (profiles are pure caches — always safe) and the chunk size shrinks,
//!   trading commit frequency for peak footprint.

use crate::checkpoint::{decode_profile, encode_profile, ProfileEntry};
use crate::control::{InterruptKind, RunControl, Stage};
use crate::features::{empty_profile, Profile};
use crate::pipeline::{stage_stats, Degraded, Distinct, DistinctError, ResolveOutcome};
use crate::refcluster::DistinctMerger;
use crate::request::{ExecReport, ResolveRequest};
use crate::update::{UpdateReport, UpdateTuple};
use cluster::{Clustering, Dendrogram};
use relstore::{fnv1a64, write_atomic, StdVfs, Vfs};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run-directory format version. Bumped whenever any persisted layout or
/// payload schema changes shape; resuming a directory written by any
/// other version fails with [`DistinctError::VersionMismatch`].
pub const RUN_FORMAT_VERSION: u32 = 1;

/// Magic prefix of every run-directory file's header line; the numeric
/// suffix is the format version.
const RUN_MAGIC_PREFIX: &str = "DISTINCTRUN";

/// Magic header line (prefix + format version).
const RUN_MAGIC: &str = "DISTINCTRUN1";

const MANIFEST_FILE: &str = "run.json";
const SIMILARITY_FILE: &str = "similarity.ck";
const CLUSTERING_FILE: &str = "clustering.ck";
const STREAM_MANIFEST_FILE: &str = "stream.json";

/// Tuning knobs of a durable run. The defaults suit test- to mid-scale
/// runs; the benchmark ladder overrides `chunk_size` per rung.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// References profiled (and committed) per chunk checkpoint.
    pub chunk_size: usize,
    /// Floor the memory guard never shrinks the chunk size below.
    pub min_chunk_size: usize,
    /// Transient I/O retries per operation (0 = fail fast, which the
    /// chaos kill sweeps use to make every injected fault fatal).
    pub max_retries: u32,
    /// First retry delay; doubles on each subsequent attempt.
    pub backoff_base: Duration,
    /// Seed of the deterministic backoff jitter stream.
    pub retry_seed: u64,
    /// Trip the run with [`InterruptKind::Stalled`] after this much
    /// heartbeat silence; `None` disables the watchdog.
    pub stall_after: Option<Duration>,
    /// Watchdog poll cadence (stall detection slack is one poll).
    pub watchdog_poll: Duration,
    /// Evict the profile cache and shrink chunks when resident memory
    /// exceeds this; `None` disables the guard.
    pub memory_budget_bytes: Option<u64>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            chunk_size: 256,
            min_chunk_size: 16,
            max_retries: 3,
            backoff_base: Duration::from_millis(2),
            retry_seed: 2007,
            stall_after: None,
            watchdog_poll: Duration::from_millis(25),
            memory_budget_bytes: None,
        }
    }
}

/// What the run manager did, alongside the resolution outcome: which
/// stages were restored instead of recomputed, how hard the durability
/// machinery had to work.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// References whose profiles were restored from chunk checkpoints.
    pub profiles_restored: usize,
    /// Profile chunk checkpoints committed by this run.
    pub chunks_committed: usize,
    /// Stage 2 was restored from `similarity.ck` (profiling skipped).
    pub similarity_restored: bool,
    /// The final `clustering.ck` was restored (nothing recomputed).
    pub clustering_restored: bool,
    /// Transient I/O retries performed across the whole run.
    pub io_retries: u64,
    /// Times the memory guard evicted the profile cache.
    pub memory_evictions: u32,
    /// The watchdog fired (the outcome will be degraded as `Stalled`).
    pub stalled: bool,
}

/// A durable run's result: the ordinary [`ResolveOutcome`] plus the
/// [`RunReport`] of the durability machinery.
#[derive(Debug, Clone)]
pub struct DurableOutcome {
    /// The resolution result, exactly as [`Distinct::resolve`] shapes it.
    pub outcome: ResolveOutcome,
    /// What the run manager restored, committed, and retried.
    pub run: RunReport,
}

/// On-disk manifest claiming a run directory for one exact request.
#[derive(Debug, Serialize, Deserialize)]
struct RunManifest {
    format: u32,
    /// FNV-1a-64 over the request identity: references, threshold,
    /// constraints, weights, measure/composite, catalog size, paths.
    fingerprint: String,
    refs: usize,
    chunk: usize,
}

/// Profiles of `refs[start..start + entries.len()]`, one file per chunk.
/// Keyed by range start, so resuming walks the chain of committed chunks
/// from zero regardless of the chunk size they were written with.
#[derive(Debug, Serialize, Deserialize)]
struct ProfileChunk {
    format: u32,
    start: usize,
    entries: Vec<ProfileEntry>,
}

/// Stage 2 output: the full pairwise leaf tables. JSON round-trips `f64`
/// exactly, so a merger rebuilt from these clusters bit-identically.
#[derive(Debug, Serialize, Deserialize)]
struct SimilarityCk {
    format: u32,
    n: usize,
    resem: Vec<Vec<f64>>,
    dwalk: Vec<Vec<f64>>,
}

#[derive(Debug, Serialize, Deserialize)]
struct MergeEntry {
    a: usize,
    b: usize,
    similarity: f64,
    size: usize,
}

/// The final answer: labels plus the merge history that produced them.
#[derive(Debug, Serialize, Deserialize)]
struct ClusteringCk {
    format: u32,
    labels: Vec<usize>,
    merges: Vec<MergeEntry>,
}

/// On-disk manifest claiming a run directory for one exact update stream
/// (base catalog + full update log + chunking).
#[derive(Debug, Serialize, Deserialize)]
struct StreamManifest {
    format: u32,
    /// FNV-1a-64 over the stream identity: base tuple count, the whole
    /// update log, weights, measure/composite, threshold, paths.
    fingerprint: String,
    updates: usize,
    /// Chunk size fixed at claim time — a resume honors the committed
    /// chunk chain regardless of the options it was called with.
    chunk: usize,
}

/// One committed update chunk: what applying `updates[start..start+len]`
/// did, plus the incremental partition of every name the chunk affected.
#[derive(Debug, Serialize, Deserialize)]
struct UpdateChunkCk {
    format: u32,
    start: usize,
    len: usize,
    report: UpdateReport,
    partitions: Vec<(String, Vec<usize>)>,
}

/// A durable update stream's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateStreamOutcome {
    /// Accumulated [`UpdateReport`] across every chunk (committed and
    /// replayed).
    pub report: UpdateReport,
    /// Final partition per affected name, sorted by name: each name's
    /// labels from the last chunk that touched it (untouched thereafter,
    /// so still current at stream end).
    pub partitions: Vec<(String, Vec<usize>)>,
    /// Chunks this call applied, resolved, and committed.
    pub chunks_committed: usize,
    /// Chunks restored from checkpoints (updates re-applied to rebuild
    /// engine state, partitions taken from disk without re-resolving).
    pub chunks_replayed: usize,
    /// Transient I/O retries across the stream.
    pub io_retries: u64,
}

fn corrupt(path: &Path, reason: impl Into<String>) -> DistinctError {
    DistinctError::CorruptCheckpoint {
        path: path.display().to_string(),
        reason: reason.into(),
    }
}

/// Frame a JSON payload exactly like the engine checkpoint: magic line,
/// checksum line, payload.
fn frame(json: &str) -> String {
    format!("{RUN_MAGIC}\n{:016x}\n{json}", fnv1a64(json.as_bytes()))
}

/// Verify and strip the frame. A well-formed magic with a different
/// version suffix is a foreign-build artifact ([`DistinctError::VersionMismatch`]);
/// anything else that fails is corruption.
fn unframe<'a>(path: &Path, bytes: &'a [u8]) -> Result<&'a str, DistinctError> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| corrupt(path, "run file is not valid UTF-8"))?;
    let mut lines = text.splitn(3, '\n');
    let magic = lines.next().unwrap_or("");
    if magic != RUN_MAGIC {
        if let Some(found) = magic
            .strip_prefix(RUN_MAGIC_PREFIX)
            .and_then(|v| v.parse::<u32>().ok())
        {
            return Err(DistinctError::VersionMismatch {
                path: path.display().to_string(),
                found,
                expected: RUN_FORMAT_VERSION,
            });
        }
        return Err(corrupt(
            path,
            format!("bad magic `{magic}` (expected {RUN_MAGIC})"),
        ));
    }
    let declared = lines
        .next()
        .ok_or_else(|| corrupt(path, "missing checksum line"))?;
    let json = lines
        .next()
        .ok_or_else(|| corrupt(path, "missing payload"))?;
    let actual = format!("{:016x}", fnv1a64(json.as_bytes()));
    if declared != actual {
        return Err(corrupt(
            path,
            format!("checksum mismatch: header {declared}, payload {actual}"),
        ));
    }
    Ok(json)
}

/// Parse an unframed payload, mapping parse failures to corruption and a
/// foreign `format` field to the typed version mismatch.
fn parse_payload<T: Deserialize>(
    path: &Path,
    json: &str,
    format_of: impl Fn(&T) -> u32,
) -> Result<T, DistinctError> {
    let value: T = serde_json::from_str(json)
        .map_err(|e| corrupt(path, format!("unparseable payload: {e}")))?;
    let found = format_of(&value);
    if found != RUN_FORMAT_VERSION {
        return Err(DistinctError::VersionMismatch {
            path: path.display().to_string(),
            found,
            expected: RUN_FORMAT_VERSION,
        });
    }
    Ok(value)
}

/// Retry-with-backoff state shared across every I/O operation of a run.
/// Jitter is a deterministic splitmix64 stream over (seed, attempt
/// index) — the same finalizer the fault injector uses — so a given seed
/// always produces the same backoff schedule.
struct Retry {
    max: u32,
    base: Duration,
    seed: u64,
    attempts: u64,
}

impl Retry {
    fn new(opts: &RunOptions) -> Self {
        Retry {
            max: opts.max_retries,
            base: opts.backoff_base,
            seed: opts.retry_seed,
            attempts: 0,
        }
    }

    fn jitter(&mut self) -> Duration {
        self.attempts += 1;
        let mut z = self
            .seed
            .wrapping_add(self.attempts.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let bound = (self.base.as_micros() as u64).max(1);
        Duration::from_micros(z % bound)
    }

    /// Run `op`, retrying transient failures with exponential backoff and
    /// seeded jitter. The final failure surfaces as a store I/O error
    /// naming `what`.
    fn run<T, E: std::fmt::Display>(
        &mut self,
        what: &str,
        mut op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, DistinctError> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if attempt >= self.max {
                        return Err(DistinctError::Store(relstore::StoreError::Io {
                            context: what.to_string(),
                            reason: e.to_string(),
                        }));
                    }
                    attempt += 1;
                    let backoff = self
                        .base
                        .saturating_mul(1u32 << (attempt - 1).min(10))
                        .saturating_add(self.jitter());
                    std::thread::sleep(backoff);
                }
            }
        }
    }
}

/// Read a run file, treating "not there yet" as a normal resume state.
fn read_optional(
    vfs: &mut dyn Vfs,
    path: &Path,
    retry: &mut Retry,
) -> Result<Option<Vec<u8>>, DistinctError> {
    retry.run(&format!("read {}", path.display()), || {
        match vfs.read(path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    })
}

/// Serialize, frame, and atomically commit one run file.
fn write_framed<T: Serialize>(
    vfs: &mut dyn Vfs,
    dir: &Path,
    name: &str,
    value: &T,
    retry: &mut Retry,
) -> Result<(), DistinctError> {
    let json = serde_json::to_string(value).map_err(|e| {
        DistinctError::Store(relstore::StoreError::Io {
            context: format!("serialize {name}"),
            reason: e.to_string(),
        })
    })?;
    let blob = frame(&json);
    retry.run(&format!("write {name}"), || {
        write_atomic(vfs, dir, name, blob.as_bytes())
    })
}

impl Distinct {
    /// The identity of one durable request, as a fingerprint hex string.
    /// Everything that changes the answer participates: the references
    /// and their order, the threshold, constraints, installed weights,
    /// measure/composite modes, the join-path set, and the catalog size.
    fn run_fingerprint(&self, req: &ResolveRequest<'_>, min_sim: f64) -> String {
        use std::fmt::Write as _;
        let mut key = String::new();
        let _ = write!(
            key,
            "run-v{RUN_FORMAT_VERSION};min_sim={:016x};measure={:?};composite={:?};tuples={};",
            min_sim.to_bits(),
            self.config().measure,
            self.config().composite,
            self.catalog().tuple_count(),
        );
        for d in &self.paths().descriptions {
            key.push_str(d);
            key.push(';');
        }
        for w in self
            .weights()
            .resem
            .iter()
            .chain(self.weights().walk.iter())
        {
            let _ = write!(key, "{:016x},", w.to_bits());
        }
        for r in req.refs {
            let _ = write!(key, "r{}:{};", r.rel.0, r.tid.0);
        }
        for &(a, b) in &req.must_link {
            let _ = write!(key, "m{a}-{b};");
        }
        for &(a, b) in &req.cannot_link {
            let _ = write!(key, "c{a}-{b};");
        }
        format!("{:016x}", fnv1a64(key.as_bytes()))
    }

    /// Durable [`Distinct::resolve`]: same stages, same answer, but every
    /// completed unit of work is committed into the request's run
    /// directory ([`ResolveRequest::resume`]), so a crashed or degraded
    /// run restarts from its last committed chunk instead of from zero.
    /// Uses the real filesystem and default [`RunOptions`].
    pub fn resolve_durable(
        &self,
        req: &ResolveRequest<'_>,
    ) -> Result<DurableOutcome, DistinctError> {
        self.resolve_durable_with(req, &mut StdVfs, &RunOptions::default())
    }

    /// [`Distinct::resolve_durable`] through an explicit [`Vfs`] (the
    /// fault-injectable entry point) with explicit [`RunOptions`].
    pub fn resolve_durable_with(
        &self,
        req: &ResolveRequest<'_>,
        vfs: &mut dyn Vfs,
        opts: &RunOptions,
    ) -> Result<DurableOutcome, DistinctError> {
        let run_dir = req.run_dir.ok_or_else(|| {
            DistinctError::Config(
                "resolve_durable needs a run directory (ResolveRequest::resume)".into(),
            )
        })?;
        let refs = req.refs;
        let n = refs.len();
        let min_sim = req.min_sim.unwrap_or(self.config().min_sim);
        let unlimited = RunControl::new();
        let ctl = req.control.unwrap_or(&unlimited);
        let executor = self.executor_for(req.threads);
        let mut retry = Retry::new(opts);
        let mut report = RunReport::default();

        retry.run("create run directory", || vfs.create_dir_all(run_dir))?;

        // Claim the directory, or verify an existing claim: a fingerprint
        // mismatch means the directory belongs to a different resolution
        // and must not be mixed into this one.
        let fingerprint = self.run_fingerprint(req, min_sim);
        let manifest_path = run_dir.join(MANIFEST_FILE);
        match read_optional(vfs, &manifest_path, &mut retry)? {
            Some(bytes) => {
                let json = unframe(&manifest_path, &bytes)?;
                let manifest: RunManifest =
                    parse_payload(&manifest_path, json, |m: &RunManifest| m.format)?;
                if manifest.fingerprint != fingerprint || manifest.refs != n {
                    return Err(corrupt(
                        &manifest_path,
                        "run directory belongs to a different resolution (fingerprint mismatch)",
                    ));
                }
            }
            None => {
                let manifest = RunManifest {
                    format: RUN_FORMAT_VERSION,
                    fingerprint: fingerprint.clone(),
                    refs: n,
                    chunk: opts.chunk_size.max(1),
                };
                write_framed(vfs, run_dir, MANIFEST_FILE, &manifest, &mut retry)?;
            }
        }

        // Fast path: the run already finished — return its committed
        // answer without touching a single profile.
        let clustering_path = run_dir.join(CLUSTERING_FILE);
        if let Some(bytes) = read_optional(vfs, &clustering_path, &mut retry)? {
            let json = unframe(&clustering_path, &bytes)?;
            let ck: ClusteringCk =
                parse_payload(&clustering_path, json, |c: &ClusteringCk| c.format)?;
            if ck.labels.len() != n {
                return Err(corrupt(
                    &clustering_path,
                    format!(
                        "labels cover {} references, request has {n}",
                        ck.labels.len()
                    ),
                ));
            }
            let mut dendrogram = Dendrogram::new(n);
            for m in &ck.merges {
                dendrogram.record(m.a, m.b, m.similarity, m.size);
            }
            report.clustering_restored = true;
            report.io_retries = retry.attempts;
            return Ok(DurableOutcome {
                outcome: ResolveOutcome {
                    clustering: Clustering {
                        labels: ck.labels,
                        dendrogram,
                    },
                    degraded: None,
                    exec: ExecReport {
                        peak_rss_bytes: crate::control::peak_rss_bytes().unwrap_or(0),
                        ..Default::default()
                    },
                },
                run: report,
            });
        }

        // From here real work can run long: arm the watchdog. Every chunk
        // or stage commit beats the heartbeat; silence trips the control
        // with the typed Stalled cause, which the stages observe through
        // their ordinary guards.
        let heartbeat = exec::Heartbeat::new();
        let watchdog = opts.stall_after.map(|stall| {
            let handle = ctl.trip_handle();
            exec::Watchdog::spawn(heartbeat.clone(), stall, opts.watchdog_poll, move || {
                handle.interrupt(InterruptKind::Stalled);
            })
        });

        let mut trip: Option<(Stage, InterruptKind)> = None;
        let mut profile_stats = exec::ParStats::default();
        let mut profile_logical = 0u64;
        let mut profiles_computed = n;
        let guard = ctl.shared_guard();

        // Stage 2 restored? Then stage 1 is unnecessary: clustering only
        // needs the similarity tables.
        let similarity_path = run_dir.join(SIMILARITY_FILE);
        let mut matrix_stats = exec::ParStats::default();
        let mut similarity_logical = 0u64;
        // A similarity stage restored from its checkpoint never ran the
        // kernel engine here, so its counters stay zero.
        let mut pair_counters = crate::refcluster::PairCounters::default();
        let merger: Option<DistinctMerger> = match read_optional(vfs, &similarity_path, &mut retry)?
        {
            Some(bytes) => {
                let json = unframe(&similarity_path, &bytes)?;
                let ck: SimilarityCk =
                    parse_payload(&similarity_path, json, |c: &SimilarityCk| c.format)?;
                if ck.n != n {
                    return Err(corrupt(
                        &similarity_path,
                        format!("tables cover {} references, request has {n}", ck.n),
                    ));
                }
                let restored = DistinctMerger::from_tables(
                    ck.resem,
                    ck.dwalk,
                    self.config().measure,
                    self.config().composite,
                )
                .ok_or_else(|| corrupt(&similarity_path, "similarity tables are not square"))?;
                report.similarity_restored = true;
                heartbeat.beat();
                Some(restored)
            }
            None => {
                // Stage 1: profiles, chunk by chunk. Committed chunks
                // are restored; missing ones are computed and
                // committed before moving on, so a kill at any point
                // loses at most one chunk of work.
                let n_paths = self.paths().len();
                let mut profiles: Vec<Arc<Profile>> = Vec::with_capacity(n);
                let mut chunk = opts.chunk_size.max(1);
                let logical0 = ctl.spent();
                // Hoisted label buffer, rewritten per chunk instead of
                // reallocated (lint D110).
                use std::fmt::Write as _;
                let mut name = String::new();
                while profiles.len() < n {
                    let pos = profiles.len();
                    if let Some(budget) = opts.memory_budget_bytes {
                        let over = crate::control::current_rss_bytes()
                            .map(|rss| rss > budget)
                            .unwrap_or(false);
                        if over {
                            self.evict_profiles();
                            chunk = (chunk / 2).max(opts.min_chunk_size.max(1)).min(chunk);
                            report.memory_evictions += 1;
                        }
                    }
                    name.clear();
                    let _ = write!(name, "profiles-{pos}.ck");
                    let chunk_path = run_dir.join(&name);
                    if let Some(bytes) = read_optional(vfs, &chunk_path, &mut retry)? {
                        let json = unframe(&chunk_path, &bytes)?;
                        let ck: ProfileChunk =
                            parse_payload(&chunk_path, json, |c: &ProfileChunk| c.format)?;
                        if ck.start != pos || ck.entries.is_empty() || pos + ck.entries.len() > n {
                            return Err(corrupt(
                                &chunk_path,
                                format!(
                                    "chunk claims refs {}..{} of {n}, expected to start at {pos}",
                                    ck.start,
                                    ck.start + ck.entries.len()
                                ),
                            ));
                        }
                        for (i, entry) in ck.entries.iter().enumerate() {
                            let profile = decode_profile(entry, n_paths).ok_or_else(|| {
                                corrupt(&chunk_path, "profile does not match the engine's path set")
                            })?;
                            if profile.reference != refs[pos + i] {
                                return Err(corrupt(
                                    &chunk_path,
                                    format!("profile {i} is for a different reference"),
                                ));
                            }
                            let profile = Arc::new(profile);
                            self.cache_insert(refs[pos + i], Arc::clone(&profile));
                            profiles.push(profile);
                        }
                        report.profiles_restored += ck.entries.len();
                        heartbeat.beat();
                        continue;
                    }
                    // Compute and commit this chunk.
                    let end = (pos + chunk).min(n);
                    let (chunk_profiles, stats) =
                        self.profile_fanout(&refs[pos..end], &executor, ctl);
                    profile_stats = profile_stats.merge(stats);
                    let real = chunk_profiles.iter().filter(|p| !p.placeholder).count();
                    if real < end - pos {
                        // A limit tripped mid-chunk: commit nothing
                        // from it (a committed chunk must be fully
                        // real), keep what we have, degrade.
                        let kind = ctl.status().unwrap_or(InterruptKind::Cancelled);
                        trip = Some((Stage::Profiles, kind));
                        profiles.extend(chunk_profiles);
                        break;
                    }
                    // distinct-lint: allow(D110, reason="entries are moved into the committed chunk frame below; the buffer is exact-sized by the iterator and cannot be reused across commits")
                    let entries = chunk_profiles.iter().map(|p| encode_profile(p)).collect();
                    let ck = ProfileChunk {
                        format: RUN_FORMAT_VERSION,
                        start: pos,
                        entries,
                    };
                    write_framed(vfs, run_dir, &name, &ck, &mut retry)?;
                    report.chunks_committed += 1;
                    profiles.extend(chunk_profiles);
                    heartbeat.beat();
                }
                // A degraded run still resolves every reference:
                // whatever was cut off stays a zero-mass placeholder
                // (and therefore a singleton), exactly like resolve().
                for &r in &refs[profiles.len()..] {
                    profiles.push(Arc::new(empty_profile(self.paths(), r)));
                }
                profile_logical = ctl.spent().saturating_sub(logical0);
                profiles_computed = profiles.iter().filter(|p| !p.placeholder).count();

                // Stage 2: the pairwise similarity matrix.
                let logical1 = ctl.spent();
                let (built, stats, counters) =
                    self.similarity_stage(&profiles, &req.resemblance, &executor, &guard);
                matrix_stats = stats;
                pair_counters = counters;
                similarity_logical = ctl.spent().saturating_sub(logical1);
                if let Some(inner) = &built {
                    if trip.is_none() {
                        let (resem, dwalk) = inner.to_tables();
                        let ck = SimilarityCk {
                            format: RUN_FORMAT_VERSION,
                            n,
                            resem: resem.to_vec(),
                            dwalk: dwalk.to_vec(),
                        };
                        write_framed(vfs, run_dir, SIMILARITY_FILE, &ck, &mut retry)?;
                        heartbeat.beat();
                    }
                }
                built
            }
        };

        // Stage 3: agglomerative clustering, committed only when fully
        // complete — a partial merge sequence is recomputable for free
        // from the committed similarity tables.
        // distinct-lint: allow(D004, reason="wall time feeds ExecReport stage timings only; control flow stays with RunControl")
        let clock = Instant::now();
        let logical2 = ctl.spent();
        let (partial, mut cluster_stats) = match merger {
            Some(inner) => self.clustering_stage(
                inner,
                n,
                min_sim,
                &req.must_link,
                &req.cannot_link,
                &executor,
                &guard,
            ),
            None => {
                if trip.is_none() {
                    let kind = ctl.status().unwrap_or(InterruptKind::Cancelled);
                    trip = Some((Stage::SimilarityMatrix, kind));
                }
                Self::singleton_partition(n)
            }
        };
        cluster_stats.wall = clock.elapsed();
        let clustering_logical = ctl.spent().saturating_sub(logical2);
        if !partial.completed && trip.is_none() {
            let kind = ctl.status().unwrap_or(InterruptKind::Cancelled);
            trip = Some((Stage::Clustering, kind));
        }
        if trip.is_none() && partial.completed {
            let merges: Vec<MergeEntry> = partial
                .clustering
                .dendrogram
                .merges()
                .iter()
                .map(|m| MergeEntry {
                    a: m.a,
                    b: m.b,
                    similarity: m.similarity,
                    size: m.size,
                })
                .collect();
            let ck = ClusteringCk {
                format: RUN_FORMAT_VERSION,
                labels: partial.clustering.labels.clone(),
                merges,
            };
            write_framed(vfs, run_dir, CLUSTERING_FILE, &ck, &mut retry)?;
            heartbeat.beat();
        }

        report.stalled = match watchdog {
            Some(dog) => dog.stop(),
            None => false,
        };
        report.io_retries = retry.attempts;
        let degraded = trip.map(|(stage, kind)| Degraded {
            stage,
            kind,
            profiles_computed,
            refs_total: n,
            clustering_completed: partial.completed,
        });
        Ok(DurableOutcome {
            outcome: ResolveOutcome {
                clustering: partial.clustering,
                degraded,
                exec: ExecReport {
                    profiles: stage_stats(profile_stats, profile_logical),
                    similarity: stage_stats(matrix_stats, similarity_logical),
                    clustering: stage_stats(cluster_stats, clustering_logical),
                    peak_rss_bytes: crate::control::peak_rss_bytes().unwrap_or(0),
                    pairs_total: pair_counters.total,
                    pairs_pruned: pair_counters.pruned,
                    pairs_exact: pair_counters.exact,
                    pairs_cached: pair_counters.cached,
                    pairs_dirty: 0,
                    names_affected: 0,
                    arena_rows_interned: pair_counters.interned,
                },
            },
            run: report,
        })
    }

    /// The identity of one durable update stream: the base catalog state,
    /// the entire update log, and everything that shapes the incremental
    /// answers (weights, modes, threshold, paths).
    fn stream_fingerprint(&self, updates: &[UpdateTuple]) -> Result<String, DistinctError> {
        use std::fmt::Write as _;
        let log = serde_json::to_string(updates).map_err(|e| {
            DistinctError::Store(relstore::StoreError::Io {
                context: "serialize update log".to_string(),
                reason: e.to_string(),
            })
        })?;
        let mut key = String::new();
        let _ = write!(
            key,
            "stream-v{RUN_FORMAT_VERSION};tuples={};min_sim={:016x};measure={:?};composite={:?};log={:016x};",
            self.catalog().tuple_count(),
            self.config().min_sim.to_bits(),
            self.config().measure,
            self.config().composite,
            fnv1a64(log.as_bytes()),
        );
        for d in &self.paths().descriptions {
            key.push_str(d);
            key.push(';');
        }
        for w in self
            .weights()
            .resem
            .iter()
            .chain(self.weights().walk.iter())
        {
            let _ = write!(key, "{:016x},", w.to_bits());
        }
        Ok(format!("{:016x}", fnv1a64(key.as_bytes())))
    }

    /// Durable [`Distinct::apply_updates`] over a whole update log: the
    /// log is applied in chunks, and after each chunk every affected name
    /// is re-resolved incrementally and the chunk — report plus the
    /// affected names' partitions — is committed into the run directory.
    /// Uses the real filesystem and default [`RunOptions`].
    ///
    /// **Resume** is the same call, same directory, on an engine prepared
    /// on the same *base* catalog (the state before any of the log was
    /// applied): committed chunks re-apply their updates to rebuild the
    /// engine's catalog and graph but take their partitions from disk
    /// without re-resolving, then the stream continues live. Because a
    /// cold incremental resolve is bit-identical to a warm one, the
    /// resumed stream's committed `(name, labels)` sequence is
    /// bit-identical to an uninterrupted run's (the chaos sweep in
    /// `tests/resume_chaos.rs` proves this at every kill point).
    pub fn apply_update_stream(
        &mut self,
        updates: &[UpdateTuple],
        run_dir: &Path,
    ) -> Result<UpdateStreamOutcome, DistinctError> {
        self.apply_update_stream_with(updates, run_dir, &mut StdVfs, &RunOptions::default())
    }

    /// [`Distinct::apply_update_stream`] through an explicit [`Vfs`] (the
    /// fault-injectable entry point) with explicit [`RunOptions`].
    pub fn apply_update_stream_with(
        &mut self,
        updates: &[UpdateTuple],
        run_dir: &Path,
        vfs: &mut dyn Vfs,
        opts: &RunOptions,
    ) -> Result<UpdateStreamOutcome, DistinctError> {
        let mut retry = Retry::new(opts);
        retry.run("create run directory", || vfs.create_dir_all(run_dir))?;

        // Claim the directory, or verify an existing claim. The chunk
        // size is fixed at claim time so a resume walks the committed
        // chunk chain regardless of the options it was resumed with.
        let fingerprint = self.stream_fingerprint(updates)?;
        let manifest_path = run_dir.join(STREAM_MANIFEST_FILE);
        let chunk = match read_optional(vfs, &manifest_path, &mut retry)? {
            Some(bytes) => {
                let json = unframe(&manifest_path, &bytes)?;
                let manifest: StreamManifest =
                    parse_payload(&manifest_path, json, |m: &StreamManifest| m.format)?;
                if manifest.fingerprint != fingerprint || manifest.updates != updates.len() {
                    return Err(corrupt(
                        &manifest_path,
                        "run directory belongs to a different update stream (fingerprint mismatch)",
                    ));
                }
                manifest.chunk.max(1)
            }
            None => {
                let chunk = opts.chunk_size.max(1);
                let manifest = StreamManifest {
                    format: RUN_FORMAT_VERSION,
                    fingerprint: fingerprint.clone(),
                    updates: updates.len(),
                    chunk,
                };
                write_framed(vfs, run_dir, STREAM_MANIFEST_FILE, &manifest, &mut retry)?;
                chunk
            }
        };

        let mut report = UpdateReport::default();
        let mut final_parts: std::collections::BTreeMap<String, Vec<usize>> = Default::default();
        let mut chunks_committed = 0usize;
        let mut chunks_replayed = 0usize;
        let mut start = 0usize;
        while start < updates.len() {
            let end = (start + chunk).min(updates.len());
            let name = format!("updates-{start}.ck");
            let path = run_dir.join(&name);
            if let Some(bytes) = read_optional(vfs, &path, &mut retry)? {
                let json = unframe(&path, &bytes)?;
                let ck: UpdateChunkCk = parse_payload(&path, json, |c: &UpdateChunkCk| c.format)?;
                if ck.start != start || ck.len != end - start {
                    return Err(corrupt(
                        &path,
                        format!(
                            "chunk covers updates {}..{}, expected {start}..{end}",
                            ck.start,
                            ck.start + ck.len
                        ),
                    ));
                }
                // Replay the appends to rebuild engine state; resolve
                // nothing — the committed partitions are the answer. On a
                // fresh base engine the replay reproduces the committed
                // report bit-for-bit; on an engine that already applied
                // the chunk it is a pure no-op.
                let live = self.apply_updates(&updates[start..end])?;
                let noop = live.applied == 0 && live.refs_added == 0 && live.refs_dirtied == 0;
                if live != ck.report && !noop {
                    return Err(corrupt(
                        &path,
                        "replayed chunk diverged from its committed report",
                    ));
                }
                report.absorb(&ck.report);
                for (n, labels) in ck.partitions {
                    final_parts.insert(n, labels);
                }
                chunks_replayed += 1;
                start = end;
                continue;
            }
            // Live: apply, incrementally re-resolve every affected name,
            // commit the chunk, move on. A kill at any point loses at
            // most this one chunk of resolution work.
            let chunk_report = self.apply_updates(&updates[start..end])?;
            let mut partitions: Vec<(String, Vec<usize>)> =
                Vec::with_capacity(chunk_report.names.len());
            for n in &chunk_report.names {
                let refs = self.references_of(n);
                let resolved = self.resolve(&ResolveRequest::incremental(&refs));
                partitions.push((n.clone(), resolved.clustering.labels));
            }
            let ck = UpdateChunkCk {
                format: RUN_FORMAT_VERSION,
                start,
                len: end - start,
                report: chunk_report.clone(),
                partitions: partitions.clone(),
            };
            write_framed(vfs, run_dir, &name, &ck, &mut retry)?;
            chunks_committed += 1;
            report.absorb(&chunk_report);
            for (n, labels) in partitions {
                final_parts.insert(n, labels);
            }
            start = end;
        }
        Ok(UpdateStreamOutcome {
            report,
            partitions: final_parts.into_iter().collect(),
            chunks_committed,
            chunks_replayed,
            io_retries: retry.attempts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistinctConfig;
    use crate::request::ResolveRequest;
    use datagen::{AmbiguousSpec, World, WorldConfig};
    use relstore::{FaultPlan, FaultyVfs};
    use std::path::PathBuf;

    fn dataset() -> datagen::DblpDataset {
        let mut config = WorldConfig::tiny(21);
        config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![10, 8, 5])];
        datagen::to_catalog(&World::generate(config)).unwrap()
    }

    fn engine(d: &datagen::DblpDataset) -> Distinct {
        Distinct::prepare(&d.catalog, "Publish", "author", DistinctConfig::default()).unwrap()
    }

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("distinct_runmgr_{tag}_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn fast_opts() -> RunOptions {
        RunOptions {
            chunk_size: 8,
            backoff_base: Duration::from_micros(100),
            ..Default::default()
        }
    }

    fn assert_same(a: &Clustering, b: &Clustering) {
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.dendrogram.merges(), b.dendrogram.merges());
    }

    #[test]
    fn durable_run_matches_plain_resolve_and_each_resume_level_is_bit_identical() {
        let d = dataset();
        let e = engine(&d);
        let refs = e.references_of("Wei Wang");
        assert_eq!(refs.len(), 23);
        let plain = e.resolve(&ResolveRequest::new(&refs)).clustering;

        let dir = TempDir::new("levels");
        let req = ResolveRequest::new(&refs).resume(dir.path());
        let first = e
            .resolve_durable_with(&req, &mut StdVfs, &fast_opts())
            .unwrap();
        assert!(first.outcome.is_complete());
        assert_same(&first.outcome.clustering, &plain);
        assert_eq!(first.run.chunks_committed, 3, "23 refs / chunks of 8");
        assert!(!first.run.similarity_restored);
        for f in [
            "run.json",
            "profiles-0.ck",
            "profiles-8.ck",
            "profiles-16.ck",
            "similarity.ck",
            "clustering.ck",
        ] {
            assert!(dir.path().join(f).exists(), "missing {f}");
        }

        // Resume level 0: the committed answer comes straight back.
        let again = e
            .resolve_durable_with(&req, &mut StdVfs, &fast_opts())
            .unwrap();
        assert!(again.run.clustering_restored);
        assert_same(&again.outcome.clustering, &plain);

        // Resume level 1: clustering recomputes from committed tables —
        // profiling is skipped entirely.
        std::fs::remove_file(dir.path().join("clustering.ck")).unwrap();
        let from_tables = e
            .resolve_durable_with(&req, &mut StdVfs, &fast_opts())
            .unwrap();
        assert!(from_tables.run.similarity_restored);
        assert_eq!(from_tables.run.profiles_restored, 0);
        assert_same(&from_tables.outcome.clustering, &plain);
        assert!(dir.path().join("clustering.ck").exists(), "recommitted");

        // Resume level 2: profiles restore from chunks, stages 2 and 3
        // recompute — still bit-identical.
        std::fs::remove_file(dir.path().join("clustering.ck")).unwrap();
        std::fs::remove_file(dir.path().join("similarity.ck")).unwrap();
        let from_chunks = e
            .resolve_durable_with(&req, &mut StdVfs, &fast_opts())
            .unwrap();
        assert!(!from_chunks.run.similarity_restored);
        assert_eq!(from_chunks.run.profiles_restored, refs.len());
        assert_eq!(from_chunks.run.chunks_committed, 0);
        assert_same(&from_chunks.outcome.clustering, &plain);
    }

    #[test]
    fn killed_run_resumes_on_a_cold_engine_to_the_identical_partition() {
        let d = dataset();
        let e = engine(&d);
        let refs = e.references_of("Wei Wang");
        let expected = engine(&d).resolve(&ResolveRequest::new(&refs)).clustering;

        let dir = TempDir::new("kill");
        let req = ResolveRequest::new(&refs).resume(dir.path());
        // Kill the run at its third write, with retries disabled so the
        // injected fault is fatal.
        let mut vfs = FaultyVfs::new(FaultPlan::fail_nth_write(3));
        let opts = RunOptions {
            max_retries: 0,
            ..fast_opts()
        };
        let err = e
            .resolve_durable_with(&req, &mut vfs, &opts)
            .expect_err("injected write failure must surface");
        assert!(matches!(err, DistinctError::Store(_)), "got {err}");

        // A brand-new engine (cold cache) resumes the directory and lands
        // on the identical partition.
        let cold = engine(&d);
        let resumed = cold
            .resolve_durable_with(&req, &mut StdVfs, &fast_opts())
            .unwrap();
        assert!(resumed.outcome.is_complete());
        assert!(resumed.run.profiles_restored > 0, "committed chunk reused");
        assert_same(&resumed.outcome.clustering, &expected);
    }

    #[test]
    fn transient_write_failures_are_absorbed_by_retry() {
        let d = dataset();
        let e = engine(&d);
        let refs = e.references_of("Wei Wang");
        let plain = e.resolve(&ResolveRequest::new(&refs)).clustering;

        let dir = TempDir::new("retry");
        let req = ResolveRequest::new(&refs).resume(dir.path());
        let mut vfs = FaultyVfs::new(FaultPlan::fail_nth_write(2));
        let out = e
            .resolve_durable_with(&req, &mut vfs, &fast_opts())
            .unwrap();
        assert!(out.outcome.is_complete());
        assert!(out.run.io_retries >= 1, "the fault must have cost a retry");
        assert_same(&out.outcome.clustering, &plain);
    }

    #[test]
    fn degraded_run_commits_its_progress_and_an_unlimited_resume_completes() {
        let d = dataset();
        let refs = {
            let e = engine(&d);
            e.references_of("Wei Wang")
        };
        let expected = engine(&d).resolve(&ResolveRequest::new(&refs)).clustering;

        // Measure the full profiling cost in logical units, then budget
        // half of it: the limit is guaranteed to trip mid-profiling while
        // leaving room for the first chunks to commit.
        let profile_cost = {
            let probe = engine(&d);
            let ctl = RunControl::new();
            let _ = probe.resolve(&ResolveRequest::new(&refs).control(&ctl));
            ctl.spent()
        };

        let dir = TempDir::new("degraded");
        // A fresh engine under a small budget: some chunks complete and
        // commit, then the limit trips and the run degrades (gracefully,
        // like resolve()).
        let e = engine(&d);
        let ctl = RunControl::new().with_budget(profile_cost / 3);
        let req = ResolveRequest::new(&refs).control(&ctl).resume(dir.path());
        let opts = RunOptions {
            chunk_size: 4,
            ..fast_opts()
        };
        let limited = e.resolve_durable_with(&req, &mut StdVfs, &opts).unwrap();
        let deg = limited.outcome.degraded.expect("small budget must degrade");
        assert_eq!(deg.kind, InterruptKind::BudgetExhausted);
        assert_eq!(deg.stage, Stage::Profiles, "{deg:?}");
        assert!(
            limited.run.chunks_committed >= 1,
            "budget must allow at least one committed chunk: {:?}",
            limited.run
        );

        // An unlimited resume on a cold engine finishes from the
        // committed chunks and matches the uninterrupted answer.
        let cold = engine(&d);
        let resume_req = ResolveRequest::new(&refs).resume(dir.path());
        let resumed = cold
            .resolve_durable_with(&resume_req, &mut StdVfs, &opts)
            .unwrap();
        assert!(resumed.outcome.is_complete());
        assert_eq!(
            resumed.run.profiles_restored,
            limited.run.chunks_committed * 4
        );
        assert_same(&resumed.outcome.clustering, &expected);
    }

    #[test]
    fn run_directory_of_a_different_request_is_refused() {
        let d = dataset();
        let e = engine(&d);
        let refs = e.references_of("Wei Wang");
        let dir = TempDir::new("mismatch");
        let req = ResolveRequest::new(&refs).resume(dir.path());
        e.resolve_durable_with(&req, &mut StdVfs, &fast_opts())
            .unwrap();

        // Same directory, different threshold: a different resolution.
        let other = ResolveRequest::new(&refs).min_sim(0.5).resume(dir.path());
        let err = e
            .resolve_durable_with(&other, &mut StdVfs, &fast_opts())
            .unwrap_err();
        match err {
            DistinctError::CorruptCheckpoint { reason, .. } => {
                assert!(reason.contains("fingerprint"), "{reason}");
            }
            other => panic!("expected CorruptCheckpoint, got {other}"),
        }
    }

    #[test]
    fn foreign_run_format_version_is_a_typed_mismatch() {
        let d = dataset();
        let e = engine(&d);
        let refs = e.references_of("Wei Wang");
        let dir = TempDir::new("version");
        let req = ResolveRequest::new(&refs).resume(dir.path());
        e.resolve_durable_with(&req, &mut StdVfs, &fast_opts())
            .unwrap();

        let manifest = dir.path().join("run.json");
        let blob = std::fs::read_to_string(&manifest).unwrap();
        std::fs::write(&manifest, blob.replacen(RUN_MAGIC, "DISTINCTRUN9", 1)).unwrap();
        match e
            .resolve_durable_with(&req, &mut StdVfs, &fast_opts())
            .unwrap_err()
        {
            DistinctError::VersionMismatch {
                found, expected, ..
            } => {
                assert_eq!(found, 9);
                assert_eq!(expected, RUN_FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other}"),
        }
    }

    #[test]
    fn memory_budget_guard_evicts_and_shrinks_without_changing_the_answer() {
        let d = dataset();
        let e = engine(&d);
        let refs = e.references_of("Wei Wang");
        let plain = e.resolve(&ResolveRequest::new(&refs)).clustering;

        let dir = TempDir::new("memory");
        // One byte of budget: every chunk boundary sees an over-budget
        // process, evicts, and shrinks down to the floor.
        let opts = RunOptions {
            chunk_size: 8,
            min_chunk_size: 2,
            memory_budget_bytes: Some(1),
            ..fast_opts()
        };
        let cold = engine(&d);
        let req = ResolveRequest::new(&refs).resume(dir.path());
        let out = cold.resolve_durable_with(&req, &mut StdVfs, &opts).unwrap();
        assert!(out.outcome.is_complete());
        assert!(out.run.memory_evictions > 0, "guard must have fired");
        // Shrunk chunks mean more, smaller commits than 23/8 would give.
        assert!(out.run.chunks_committed > 3, "{:?}", out.run);
        assert_same(&out.outcome.clustering, &plain);
    }

    #[test]
    fn watchdog_on_a_healthy_run_stays_quiet() {
        let d = dataset();
        let e = engine(&d);
        let refs = e.references_of("Wei Wang");
        let dir = TempDir::new("watchdog");
        let opts = RunOptions {
            stall_after: Some(Duration::from_secs(600)),
            watchdog_poll: Duration::from_millis(1),
            ..fast_opts()
        };
        let req = ResolveRequest::new(&refs).resume(dir.path());
        let out = e.resolve_durable_with(&req, &mut StdVfs, &opts).unwrap();
        assert!(out.outcome.is_complete());
        assert!(!out.run.stalled);
    }

    #[test]
    fn missing_run_dir_is_a_config_error() {
        let d = dataset();
        let e = engine(&d);
        let refs = e.references_of("Wei Wang");
        assert!(matches!(
            e.resolve_durable(&ResolveRequest::new(&refs)),
            Err(DistinctError::Config(_))
        ));
    }

    fn stream_updates() -> (datagen::UpdateStream, Vec<UpdateTuple>) {
        let mut config = WorldConfig::tiny(21);
        config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![10, 8, 5])];
        let stream = datagen::update_stream(&config, 0.15, 42).unwrap();
        let updates: Vec<UpdateTuple> = stream
            .log
            .iter()
            .map(|(rel, values)| UpdateTuple::new(rel.clone(), values.clone()))
            .collect();
        (stream, updates)
    }

    #[test]
    fn update_stream_commits_chunks_and_matches_batch_resolution() {
        let (stream, updates) = stream_updates();
        assert!(!updates.is_empty());
        let mut e = engine(&stream.base);
        let dir = TempDir::new("stream");
        let opts = RunOptions {
            chunk_size: 5,
            ..fast_opts()
        };
        let out = e
            .apply_update_stream_with(&updates, dir.path(), &mut StdVfs, &opts)
            .unwrap();
        assert_eq!(out.report.applied, updates.len());
        assert_eq!(out.chunks_replayed, 0);
        assert_eq!(out.chunks_committed, updates.len().div_ceil(5));
        assert!(dir.path().join("stream.json").exists());
        assert!(dir.path().join("updates-0.ck").exists());
        assert!(out.partitions.iter().any(|(n, _)| n == "Wei Wang"));

        // The streamed partition equals a cold batch resolve on the
        // engine's own final catalog — the convergence the oracle pins.
        let cold =
            Distinct::prepare(e.catalog(), "Publish", "author", DistinctConfig::default()).unwrap();
        for (name, labels) in &out.partitions {
            let refs = cold.references_of(name);
            let batch = cold.resolve(&ResolveRequest::new(&refs));
            assert_eq!(labels, &batch.clustering.labels, "name {name}");
        }
        // And the final ground-truth references are exactly the streamed
        // name's references.
        let refs = e.references_of("Wei Wang");
        assert_eq!(refs, stream.truths[0].refs);
    }

    #[test]
    fn killed_update_stream_resumes_bit_identically_on_a_fresh_base_engine() {
        let (stream, updates) = stream_updates();
        let opts = RunOptions {
            chunk_size: 4,
            ..fast_opts()
        };

        // Uninterrupted reference run.
        let expected = {
            let mut e = engine(&stream.base);
            let dir = TempDir::new("stream_ref");
            e.apply_update_stream_with(&updates, dir.path(), &mut StdVfs, &opts)
                .unwrap()
        };

        // Killed at the third write, retries disabled → fatal.
        let dir = TempDir::new("stream_kill");
        let mut e = engine(&stream.base);
        let mut vfs = FaultyVfs::new(FaultPlan::fail_nth_write(3));
        let kill_opts = RunOptions {
            max_retries: 0,
            ..opts.clone()
        };
        let err = e
            .apply_update_stream_with(&updates, dir.path(), &mut vfs, &kill_opts)
            .expect_err("injected write failure must surface");
        assert!(matches!(err, DistinctError::Store(_)), "got {err}");

        // Resume on a fresh engine prepared on the same base.
        let mut fresh = engine(&stream.base);
        let resumed = fresh
            .apply_update_stream_with(&updates, dir.path(), &mut StdVfs, &opts)
            .unwrap();
        assert!(resumed.chunks_replayed >= 1, "{resumed:?}");
        assert_eq!(resumed.report, expected.report);
        assert_eq!(resumed.partitions, expected.partitions);
    }

    #[test]
    fn finished_update_stream_replays_as_a_no_op_on_a_fresh_engine() {
        let (stream, updates) = stream_updates();
        let dir = TempDir::new("stream_replay");
        let opts = RunOptions {
            chunk_size: 6,
            ..fast_opts()
        };
        let first = {
            let mut e = engine(&stream.base);
            e.apply_update_stream_with(&updates, dir.path(), &mut StdVfs, &opts)
                .unwrap()
        };
        let mut fresh = engine(&stream.base);
        let again = fresh
            .apply_update_stream_with(&updates, dir.path(), &mut StdVfs, &opts)
            .unwrap();
        assert_eq!(again.chunks_committed, 0);
        assert_eq!(again.chunks_replayed, first.chunks_committed);
        assert_eq!(again.report, first.report);
        assert_eq!(again.partitions, first.partitions);
    }

    #[test]
    fn update_stream_directory_of_a_different_log_is_refused() {
        let (stream, updates) = stream_updates();
        let dir = TempDir::new("stream_mismatch");
        {
            let mut e = engine(&stream.base);
            e.apply_update_stream_with(&updates, dir.path(), &mut StdVfs, &fast_opts())
                .unwrap();
        }
        // Same directory, truncated log: a different stream.
        let mut e = engine(&stream.base);
        let err = e
            .apply_update_stream_with(
                &updates[..updates.len() - 1],
                dir.path(),
                &mut StdVfs,
                &fast_opts(),
            )
            .unwrap_err();
        match err {
            DistinctError::CorruptCheckpoint { reason, .. } => {
                assert!(reason.contains("fingerprint"), "{reason}");
            }
            other => panic!("expected CorruptCheckpoint, got {other}"),
        }
    }
}

//! Experiment S3 — incremental update vs. cold recompute.
//!
//! The update benchmark behind DESIGN.md §16: an engine resolves the
//! paper's hardest name ("Wei Wang") once, then a *single new paper* by
//! that author arrives as an update — one `Publications` row plus one
//! `Publish` row. The incremental path applies the tuples, dirties the
//! touched neighborhood, and re-scores only the dirty pairs against the
//! warm pair cache; the baseline recomputes everything from scratch
//! (`Distinct::prepare` on the union catalog plus a batch resolve).
//!
//! The rung reports both wall times, their ratio, and the kernel-unit
//! accounting of the incremental resolve (`pairs_dirty` out of
//! `pairs_total`, the rest served from cache), and cross-checks that the
//! incremental partition is bit-identical to the cold one.
//!
//! Run: `cargo run --release -p distinct-bench --bin bench_incremental -- \
//!       [laptop|paper]` (default: `paper`, the checked-in reference
//! point; `laptop` is the CI smoke scale). Writes
//! `benchmarks/BENCH_incremental.json`.

use datagen::{stream_to_catalog, DblpDataset, WorldConfig};
use distinct::{Distinct, DistinctConfig, ResolveRequest, UpdateTuple};
use distinct_bench::{BenchError, StageContext};
use relstore::Value;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Stage context for this binary.
const BIN: &str = "bench_incremental";

/// The name the update touches: the largest Table 1 group.
const NAME: &str = "Wei Wang";

fn config(scale: &str) -> WorldConfig {
    match scale {
        "laptop" => WorldConfig {
            seed: 7,
            ambiguous: WorldConfig::table1_ambiguous(),
            ..Default::default()
        },
        "paper" => WorldConfig::paper_scale(2007),
        other => {
            eprintln!("unknown scale `{other}` (want laptop|paper)");
            std::process::exit(2);
        }
    }
}

fn out_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks")
}

fn ms(d: std::time::Duration) -> u64 {
    d.as_millis() as u64
}

fn ms_frac(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// One new paper by `NAME` at an existing venue: the `Publications` row
/// and its `Publish` byline, the smallest update that moves the answer.
fn single_paper_update(dataset: &DblpDataset) -> Result<Vec<UpdateTuple>, BenchError> {
    let pubs = dataset
        .catalog
        .relation_id("Publications")
        .stage(BIN, "locate the Publications relation")?;
    let rel = dataset.catalog.relation(pubs);
    let paper_key = rel.len() as i64 + 1;
    let proc_key = rel.tuple(relstore::TupleId(0)).values()[2].clone();
    Ok(vec![
        UpdateTuple::new(
            "Publications",
            vec![
                Value::Int(paper_key),
                Value::str("Incremental Resolution of Identical Names"),
                proc_key,
            ],
        ),
        UpdateTuple::new("Publish", vec![Value::str(NAME), Value::Int(paper_key)]),
    ])
}

fn main() -> Result<(), BenchError> {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "paper".into());
    let config = config(&scale);

    eprintln!(
        "[{scale}] generating world ({} authors)...",
        config.n_authors
    );
    let t0 = Instant::now();
    let dataset = stream_to_catalog(&config).stage(BIN, "generate the streamed world")?;
    let generate_ms = ms(t0.elapsed());
    let papers = dataset
        .catalog
        .relation(
            dataset
                .catalog
                .relation_id("Publications")
                .stage(BIN, "locate the Publications relation")?,
        )
        .len();
    let references = dataset.catalog.relation(dataset.publish).len();
    eprintln!(
        "[{scale}] {papers} papers / {references} references in {generate_ms} ms; preparing engine..."
    );

    let t1 = Instant::now();
    let mut engine = Distinct::prepare(
        &dataset.catalog,
        "Publish",
        "author",
        DistinctConfig::default(),
    )
    .stage(BIN, "prepare the engine")?;
    let prepare_ms = ms(t1.elapsed());

    // Warm resolve: the steady state an update arrives into. Issued as an
    // incremental request so the name's pair tables land in the cache.
    let refs_before = engine.references_of(NAME);
    let t2 = Instant::now();
    let warm = engine.resolve(&ResolveRequest::incremental(&refs_before));
    let warm_resolve_ms = ms_frac(t2.elapsed());
    assert!(warm.is_complete(), "warm resolve degraded");

    // The measured path: apply one paper's tuples, re-resolve incrementally.
    let updates = single_paper_update(&dataset)?;
    let t3 = Instant::now();
    let report = engine
        .apply_updates(&updates)
        .stage(BIN, "apply the one-paper update")?;
    let apply_ms = ms_frac(t3.elapsed());
    let refs_after = engine.references_of(NAME);
    let incremental = engine.resolve(&ResolveRequest::incremental(&refs_after));
    let update_ms = ms_frac(t3.elapsed());
    assert_eq!(report.applied, updates.len(), "update rows must be new");
    assert_eq!(refs_after.len(), refs_before.len() + 1);
    assert!(incremental.is_complete(), "incremental resolve degraded");

    // The baseline: recompute the union catalog from scratch.
    let t4 = Instant::now();
    let cold_engine = Distinct::prepare(
        engine.catalog(),
        "Publish",
        "author",
        DistinctConfig::default(),
    )
    .stage(BIN, "prepare the cold union engine")?;
    let cold = cold_engine.resolve(&ResolveRequest::new(&refs_after));
    let cold_ms = ms_frac(t4.elapsed());
    assert_eq!(
        incremental.clustering.labels, cold.clustering.labels,
        "incremental partition diverged from the cold recompute"
    );

    let exec = &incremental.exec;
    assert_eq!(
        exec.pairs_pruned + exec.pairs_exact + exec.pairs_cached,
        exec.pairs_total,
        "kernel-unit accounting must balance"
    );
    assert!(
        exec.pairs_dirty * 10 <= exec.pairs_total,
        "a one-paper update should dirty a small fraction of the pairs \
         ({} of {})",
        exec.pairs_dirty,
        exec.pairs_total
    );
    let speedup = cold_ms / update_ms.max(1e-6);

    let json = format!(
        "{{\n  \"scenario\": \"incremental\",\n  \"format\": 1,\n  \"scale\": \"{scale}\",\n  \
         \"resolved_name\": \"{NAME}\",\n  \"weights\": \"uniform\",\n  \"world\": {{\n    \
         \"authors\": {},\n    \"papers\": {papers},\n    \"references\": {references},\n    \
         \"name_references\": {}\n  }},\n  \"threads\": {},\n  \"generate_ms\": {generate_ms},\n  \
         \"prepare_ms\": {prepare_ms},\n  \"warm_resolve_ms\": {warm_resolve_ms:.3},\n  \
         \"update\": {{\n    \"tuples\": {},\n    \"refs_added\": {},\n    \"refs_dirtied\": {},\n    \
         \"names_affected\": {},\n    \"apply_ms\": {apply_ms:.3},\n    \"update_ms\": {update_ms:.3},\n    \"cold_ms\": {cold_ms:.3},\n    \
         \"speedup\": {speedup:.1},\n    \"pairs_total\": {},\n    \"pairs_dirty\": {},\n    \
         \"pairs_cached\": {},\n    \"pairs_exact\": {},\n    \"pairs_pruned\": {},\n    \
         \"arena_rows_interned\": {}\n  }}\n}}\n",
        config.n_authors,
        refs_after.len(),
        exec.max_threads(),
        updates.len(),
        report.refs_added,
        report.refs_dirtied,
        report.names_affected,
        exec.pairs_total,
        exec.pairs_dirty,
        exec.pairs_cached,
        exec.pairs_exact,
        exec.pairs_pruned,
        exec.arena_rows_interned,
    );

    let dir = out_dir();
    std::fs::create_dir_all(&dir).stage(BIN, "create the benchmarks/ directory")?;
    let path = dir.join("BENCH_incremental.json");
    std::fs::write(&path, &json).stage(BIN, "write the rung JSON")?;
    eprintln!(
        "[{scale}] update {update_ms:.1} ms vs cold {cold_ms:.1} ms \
         ({speedup:.0}x, {} of {} pair-units dirty) -> {}",
        exec.pairs_dirty,
        exec.pairs_total,
        path.display()
    );
    Ok(())
}

//! Weighted neighbor-tuple sets and the weighted Jaccard resemblance.
//!
//! The forward probabilities of a [`Propagation`](crate::Propagation) form
//! a weighted set of neighbor tuples; Definition 2 of the paper compares
//! two such sets with a connection-strength-weighted Jaccard coefficient:
//!
//! ```text
//!                Σ_{t ∈ A ∩ B} min(w_A(t), w_B(t))
//! Resem(A, B) = -----------------------------------
//!                Σ_{t ∈ A ∪ B} max(w_A(t), w_B(t))
//! ```

use crate::graph::NodeId;
use crate::sketch::{ConfigError, Sketch, SketchConfig};
use relstore::FxHashMap;

/// The resemblance kernel selector: one dispatch point for every
/// weighted-Jaccard evaluation in the engine.
///
/// Both variants compute the *same function* — Definition 2, bit for bit.
/// They differ only in how the similarity stage schedules the work:
///
/// * [`Resemblance::Exact`] evaluates the merge-join kernel for every
///   pair directly (the canonical reference, one call away for
///   differential tests);
/// * [`Resemblance::Pruned`] builds per-stage [`Sketch`]es and a columnar
///   [`SetArena`](crate::SetArena), skips kernels whose value is
///   *provably exactly zero* (sketch bound or exact support-overlap
///   certificate), and deduplicates content-identical rows. Because only
///   provably-zero evaluations are skipped, the produced values — and
///   hence every downstream merge decision — are bit-identical to
///   `Exact` at any threshold. That is the losslessness contract, and
///   the oracle differential suite enforces it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resemblance {
    /// Evaluate the exact kernel for every pair.
    Exact,
    /// Prune provably-zero kernels via sketches + interned arenas.
    Pruned {
        /// Sketch-tier parameters (validated at request build time).
        sketch: SketchConfig,
    },
}

impl Resemblance {
    /// The weighted Jaccard resemblance of Definition 2 under this
    /// kernel. Pair-at-a-time entry point: `Pruned` consults the two
    /// sets' sketches before falling back to the exact merge-join, and
    /// returns the same bits either way.
    pub fn weighted(&self, a: &WeightedSet, b: &WeightedSet) -> f64 {
        match self {
            Resemblance::Exact => exact_resemblance(a, b),
            Resemblance::Pruned { sketch } => {
                let sa = Sketch::of_set(a, sketch);
                let sb = Sketch::of_set(b, sketch);
                if sa.upper_bound(&sb) == 0.0 {
                    0.0
                } else {
                    exact_resemblance(a, b)
                }
            }
        }
    }

    /// The unweighted Jaccard (ablation baseline) under this kernel.
    /// A zero sketch bound proves the supports are disjoint, which
    /// zeroes the unweighted coefficient too.
    pub fn unweighted(&self, a: &WeightedSet, b: &WeightedSet) -> f64 {
        match self {
            Resemblance::Exact => exact_jaccard(a, b),
            Resemblance::Pruned { sketch } => {
                let sa = Sketch::of_set(a, sketch);
                let sb = Sketch::of_set(b, sketch);
                if sa.upper_bound(&sb) == 0.0 {
                    0.0
                } else {
                    exact_jaccard(a, b)
                }
            }
        }
    }

    /// Validate the kernel's parameters (always `Ok` for `Exact`).
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            Resemblance::Exact => Ok(()),
            Resemblance::Pruned { sketch } => sketch.validate(),
        }
    }
}

impl Default for Resemblance {
    /// Pruned with the lossless defaults — the fast path is the default
    /// path, and it is exact by construction.
    fn default() -> Self {
        Resemblance::Pruned {
            sketch: SketchConfig::lossless(),
        }
    }
}

/// A weighted set of nodes (neighbor tuples with connection strengths).
///
/// Stored as `(node, weight)` pairs sorted by node id with strictly
/// positive weights. The sorted representation makes every float
/// accumulation over the set (totals, resemblance numerators) run in a
/// fixed node order regardless of how the set was built — hash-map
/// insertion history can never perturb low-order bits (lint D001) — and
/// turns intersection into a cache-friendly merge-join.
#[derive(Debug, Clone, Default)]
pub struct WeightedSet {
    weights: Vec<(NodeId, f64)>,
}

/// Debug check for the representation invariant: strictly ascending node
/// ids (which also rules out duplicates).
fn is_sorted(w: &[(NodeId, f64)]) -> bool {
    w.iter().zip(w.iter().skip(1)).all(|(x, y)| x.0 < y.0)
}

impl WeightedSet {
    /// An empty set.
    pub fn new() -> Self {
        WeightedSet::default()
    }

    /// Build from a map of node weights; non-positive weights are dropped.
    pub fn from_map(map: FxHashMap<NodeId, f64>) -> Self {
        let mut w: Vec<(NodeId, f64)> = map.into_iter().filter(|&(_, v)| v > 0.0).collect();
        w.sort_unstable_by_key(|&(n, _)| n);
        WeightedSet { weights: w }
    }

    /// Build from `(node, weight)` pairs, summing duplicates (in input
    /// order, so the result is a pure function of the input sequence).
    // distinct-lint: allow(D005, reason="bounded per-set construction; callers charge the budget per profile/pair")
    pub fn from_pairs(pairs: impl IntoIterator<Item = (NodeId, f64)>) -> Self {
        let mut w: Vec<(NodeId, f64)> = pairs.into_iter().collect();
        w.sort_by_key(|&(n, _)| n); // stable: duplicate runs keep input order
        let mut out: Vec<(NodeId, f64)> = Vec::with_capacity(w.len());
        for (n, v) in w {
            match out.last_mut() {
                Some((m, acc)) if *m == n => *acc += v,
                _ => out.push((n, v)),
            }
        }
        out.retain(|&(_, v)| v > 0.0);
        WeightedSet { weights: out }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Weight of a node (0 when absent).
    pub fn weight(&self, n: NodeId) -> f64 {
        self.weights
            .binary_search_by_key(&n, |&(m, _)| m)
            .map(|i| self.weights[i].1)
            .unwrap_or(0.0)
    }

    /// Iterate `(node, weight)` pairs in ascending node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.weights.iter().copied()
    }

    /// Sum of all weights, accumulated in node order.
    pub fn total(&self) -> f64 {
        self.weights.iter().map(|&(_, w)| w).sum()
    }

    /// Scale every weight by `factor` (used when averaging cluster members).
    // distinct-lint: allow(D005, reason="O(len) leaf over one set; callers charge the budget per merge")
    pub fn scale(&mut self, factor: f64) {
        for w in &mut self.weights {
            w.1 *= factor;
        }
    }

    /// Merge another set into this one, summing weights (merge-join of the
    /// two sorted pair lists, so the result is order-independent).
    // distinct-lint: allow(D005, reason="O(len) leaf over two sets; callers charge the budget per merge")
    pub fn merge(&mut self, other: &WeightedSet) {
        // The merge-join below is only correct on sorted inputs; every
        // constructor sorts, so a violation here means a corrupted set.
        debug_assert!(is_sorted(&self.weights), "merge target not sorted");
        debug_assert!(is_sorted(&other.weights), "merge source not sorted");
        if other.is_empty() {
            return;
        }
        let a = std::mem::take(&mut self.weights);
        let b = &other.weights;
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((a[i].0, a[i].1 + b[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        self.weights = out;
    }

    /// Weighted Jaccard resemblance of Definition 2.
    ///
    /// Returns 0 when either set is empty (no shared context — the paper's
    /// convention for references with no neighbors along a path).
    ///
    /// ```
    /// use relgraph::{NodeId, WeightedSet};
    /// let a: WeightedSet = [(NodeId(1), 0.5), (NodeId(2), 0.5)].into_iter().collect();
    /// let b: WeightedSet = [(NodeId(2), 0.25), (NodeId(3), 0.75)].into_iter().collect();
    /// // Σ min over ∩ = 0.25; Σ max over ∪ = 0.5 + 0.5 + 0.75 = 1.75.
    /// assert!((a.resemblance(&b) - 0.25 / 1.75).abs() < 1e-12);
    /// ```
    ///
    /// Thin wrapper over [`Resemblance::Exact`], kept for the many
    /// pair-at-a-time call sites; the similarity stage dispatches through
    /// [`Resemblance`] instead.
    pub fn resemblance(&self, other: &WeightedSet) -> f64 {
        exact_resemblance(self, other)
    }

    /// Unweighted Jaccard (|A ∩ B| / |A ∪ B|) — the ablation baseline that
    /// ignores connection strengths. Thin wrapper over the exact kernel
    /// (see [`Resemblance`]).
    pub fn jaccard_unweighted(&self, other: &WeightedSet) -> f64 {
        exact_jaccard(self, other)
    }
}

/// The exact merge-join resemblance kernel behind both
/// [`WeightedSet::resemblance`] and [`Resemblance::weighted`].
// distinct-lint: allow(D005, reason="O(|A|+|B|) per-pair leaf; DistinctMerger charges the budget per pair")
fn exact_resemblance(a: &WeightedSet, b: &WeightedSet) -> f64 {
    debug_assert!(is_sorted(&a.weights), "resemblance lhs not sorted");
    debug_assert!(is_sorted(&b.weights), "resemblance rhs not sorted");
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    // Merge-join of the two sorted pair lists: Σ min accumulates in
    // ascending node order, bit-identical however the sets were built.
    let (aw, bw) = (&a.weights, &b.weights);
    let mut num = 0.0; // Σ min over intersection
    let (mut i, mut j) = (0, 0);
    while i < aw.len() && j < bw.len() {
        match aw[i].0.cmp(&bw[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                num += aw[i].1.min(bw[j].1);
                i += 1;
                j += 1;
            }
        }
    }
    // Σ max over the union = total_A + total_B − Σ min over the
    // intersection (min + max = w_A + w_B pointwise on the intersection).
    let den = a.total() + b.total() - num;
    debug_assert!(den >= num - 1e-12);
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// The exact unweighted Jaccard kernel behind
/// [`WeightedSet::jaccard_unweighted`] and [`Resemblance::unweighted`].
// distinct-lint: allow(D005, reason="O(|A|+|B|) per-pair leaf; DistinctMerger charges the budget per pair")
fn exact_jaccard(a: &WeightedSet, b: &WeightedSet) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (aw, bw) = (&a.weights, &b.weights);
    let mut inter = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < aw.len() && j < bw.len() {
        match aw[i].0.cmp(&bw[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    let j = inter as f64 / union as f64;
    debug_assert!((0.0..=1.0).contains(&j), "jaccard out of range: {j}");
    j
}

impl FromIterator<(NodeId, f64)> for WeightedSet {
    fn from_iter<T: IntoIterator<Item = (NodeId, f64)>>(iter: T) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(pairs: &[(u32, f64)]) -> WeightedSet {
        pairs.iter().map(|&(n, w)| (NodeId(n), w)).collect()
    }

    #[test]
    fn construction_drops_nonpositive_and_sums_duplicates() {
        let s = set(&[(1, 0.5), (1, 0.25), (2, 0.0), (3, -1.0)]);
        assert_eq!(s.len(), 1);
        assert!((s.weight(NodeId(1)) - 0.75).abs() < 1e-12);
        assert_eq!(s.weight(NodeId(2)), 0.0);
    }

    #[test]
    fn identical_sets_have_resemblance_one() {
        let s = set(&[(1, 0.3), (2, 0.7)]);
        assert!((s.resemblance(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sets_have_resemblance_zero() {
        let a = set(&[(1, 0.5)]);
        let b = set(&[(2, 0.5)]);
        assert_eq!(a.resemblance(&b), 0.0);
    }

    #[test]
    fn empty_set_convention() {
        let a = WeightedSet::new();
        let b = set(&[(1, 1.0)]);
        assert_eq!(a.resemblance(&b), 0.0);
        assert_eq!(b.resemblance(&a), 0.0);
        assert_eq!(a.resemblance(&a), 0.0);
        assert_eq!(a.jaccard_unweighted(&b), 0.0);
        assert!(a.is_empty());
    }

    #[test]
    fn hand_computed_resemblance() {
        // A = {1: .5, 2: .5}, B = {2: .25, 3: .75}
        // Σ min over ∩ = min(.5,.25) = .25
        // Σ max over ∪ = .5 (1) + max(.5,.25)=.5 (2) + .75 (3) = 1.75
        let a = set(&[(1, 0.5), (2, 0.5)]);
        let b = set(&[(2, 0.25), (3, 0.75)]);
        let r = a.resemblance(&b);
        assert!((r - 0.25 / 1.75).abs() < 1e-12, "{r}");
        // Symmetric.
        assert!((b.resemblance(&a) - r).abs() < 1e-12);
    }

    #[test]
    fn unweighted_jaccard_hand_computed() {
        let a = set(&[(1, 0.9), (2, 0.1)]);
        let b = set(&[(2, 0.5), (3, 0.5)]);
        assert!((a.jaccard_unweighted(&b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = set(&[(1, 0.5)]);
        let b = set(&[(1, 0.5), (2, 1.0)]);
        a.merge(&b);
        assert!((a.weight(NodeId(1)) - 1.0).abs() < 1e-12);
        assert!((a.total() - 2.0).abs() < 1e-12);
        a.scale(0.5);
        assert!((a.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_dispatch_agrees_with_wrappers() {
        let a = set(&[(1, 0.5), (2, 0.5)]);
        let b = set(&[(2, 0.25), (3, 0.75)]);
        let exact = Resemblance::Exact;
        let pruned = Resemblance::default();
        assert!(matches!(pruned, Resemblance::Pruned { .. }));
        assert_eq!(
            exact.weighted(&a, &b).to_bits(),
            a.resemblance(&b).to_bits()
        );
        assert_eq!(
            pruned.weighted(&a, &b).to_bits(),
            a.resemblance(&b).to_bits()
        );
        assert_eq!(
            pruned.unweighted(&a, &b).to_bits(),
            a.jaccard_unweighted(&b).to_bits()
        );
        exact.validate().unwrap();
        pruned.validate().unwrap();
        let bad = Resemblance::Pruned {
            sketch: SketchConfig {
                prefix_len: 0,
                minhash_bits: 9,
            },
        };
        assert!(bad.validate().is_err());
    }

    proptest! {
        // The losslessness contract at the pair level: `Pruned` returns
        // the same bits as `Exact` for arbitrary sets.
        #[test]
        fn pruned_kernel_bit_identical_to_exact(
            xs in proptest::collection::vec((0u32..24, 0.01f64..1.0), 0..15),
            ys in proptest::collection::vec((0u32..24, 0.01f64..1.0), 0..15),
        ) {
            let a = set(&xs);
            let b = set(&ys);
            let pruned = Resemblance::default();
            prop_assert_eq!(
                pruned.weighted(&a, &b).to_bits(),
                Resemblance::Exact.weighted(&a, &b).to_bits()
            );
            prop_assert_eq!(
                pruned.unweighted(&a, &b).to_bits(),
                Resemblance::Exact.unweighted(&a, &b).to_bits()
            );
        }

        #[test]
        fn resemblance_is_symmetric_and_bounded(
            xs in proptest::collection::vec((0u32..20, 0.01f64..1.0), 0..15),
            ys in proptest::collection::vec((0u32..20, 0.01f64..1.0), 0..15),
        ) {
            let a = set(&xs);
            let b = set(&ys);
            let r1 = a.resemblance(&b);
            let r2 = b.resemblance(&a);
            prop_assert!((r1 - r2).abs() < 1e-9);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r1));
        }

        #[test]
        fn self_resemblance_is_one_for_nonempty(
            xs in proptest::collection::vec((0u32..20, 0.01f64..1.0), 1..15),
        ) {
            let a = set(&xs);
            prop_assert!((a.resemblance(&a) - 1.0).abs() < 1e-9);
        }

        #[test]
        fn resemblance_bounded_for_arbitrary_weights(
            xs in proptest::collection::vec((0u32..64, 1e-12f64..1e12), 0..40),
            ys in proptest::collection::vec((0u32..64, 1e-12f64..1e12), 0..40),
        ) {
            // Wildly mixed magnitudes (12 orders apart) must still land in
            // [0,1]: the D102 contract the clustering thresholds rely on.
            let a = set(&xs);
            let b = set(&ys);
            let r = a.resemblance(&b);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r), "{r}");
            prop_assert!(r.is_finite());
        }

        #[test]
        fn unweighted_bounded_and_symmetric(
            xs in proptest::collection::vec((0u32..20, 0.01f64..1.0), 0..15),
            ys in proptest::collection::vec((0u32..20, 0.01f64..1.0), 0..15),
        ) {
            let a = set(&xs);
            let b = set(&ys);
            let j = a.jaccard_unweighted(&b);
            prop_assert!((j - b.jaccard_unweighted(&a)).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&j));
        }
    }
}

//! The analyzer turned on itself: the real workspace must be exactly as
//! clean as `lint.toml` says it is, the crate graph must stay acyclic,
//! and the shipped binary must fail loudly on seeded violations.

use lint::graph::CrateGraph;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    lint::workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace")
}

/// The CI gate in library form: no new findings, no stale baseline
/// entries, no suppression-hygiene (D000) debt. An exact match — if a
/// finding was fixed, the baseline must be ratcheted down too.
#[test]
fn workspace_is_exactly_as_clean_as_the_baseline() {
    let outcome = lint::check(&workspace_root()).expect("check runs");
    assert!(
        outcome.diff.is_clean(),
        "workspace drifted from lint.toml\n  new debt: {:#?}\n  stale: {:?}",
        outcome.diff.new_debt,
        outcome.diff.stale
    );
}

/// The same gate in semantic mode: the interprocedural lints D101–D113
/// (plus the shared per-file passes) must also match the baseline exactly
/// against the live workspace.
#[test]
fn workspace_is_semantically_clean() {
    let outcome =
        lint::check_mode(&workspace_root(), lint::Mode::Semantic).expect("semantic check runs");
    assert!(
        outcome.diff.is_clean(),
        "workspace drifted from lint.toml under --semantic\n  new debt: {:#?}\n  stale: {:?}",
        outcome.diff.new_debt,
        outcome.diff.stale
    );
}

#[test]
fn crate_graph_is_acyclic_with_exec_below_core() {
    let g = CrateGraph::load(&workspace_root()).expect("graph loads");
    let order = g.topo_order().expect("workspace crate graph is acyclic");
    let pos = |dir: &str| {
        order
            .iter()
            .position(|c| c == dir)
            .unwrap_or_else(|| panic!("crate `{dir}` missing from topo order"))
    };
    // The layering D003 enforces textually, structurally: the exec pool
    // underlies core, which underlies nothing below it.
    assert!(pos("exec") < pos("core"));
    assert!(pos("relstore") < pos("relgraph"));
}

/// Drive the real `lint` binary over a scratch workspace seeded with
/// D001/D002/D003/D105 violations: check fails with each ID reported, the
/// baseline ratchet accepts the debt, new debt fails again, and removing
/// a baselined finding without ratcheting down is itself an error.
#[test]
fn binary_fails_on_seeded_violations_and_ratchets() {
    let scratch =
        std::env::temp_dir().join(format!("distinct-lint-selfcheck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let src_dir = scratch.join("crates/app/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir scratch workspace");
    std::fs::write(scratch.join("Cargo.toml"), "[workspace]\n").expect("write manifest");

    let seeded = "\
use rustc_hash::FxHashMap;

pub fn total(weights: &FxHashMap<u32, f64>) -> f64 {
    weights.values().sum()
}

pub fn head(xs: &[f64]) -> f64 {
    xs.first().unwrap()
}

pub fn go() {
    std::thread::spawn(|| {});
}

pub fn persist(p: &std::path::Path) {
    let _ = std::fs::write(p, b\"state\");
}
";
    let lib = src_dir.join("lib.rs");
    std::fs::write(&lib, seeded).expect("write seeded lib");

    let run = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_lint"))
            .args(args)
            .arg("--root")
            .arg(&scratch)
            .output()
            .expect("spawn lint binary");
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        (out.status.code(), text)
    };

    // 1. No baseline: every seeded violation is new debt, exit 1.
    let (code, text) = run(&["check"]);
    assert_eq!(code, Some(1), "seeded workspace must fail check:\n{text}");
    for id in ["D001", "D002", "D003", "D105"] {
        assert!(text.contains(id), "missing {id} in:\n{text}");
    }

    // 2. Ratchet the debt in, then check is clean.
    let (code, text) = run(&["check", "--fix-baseline"]);
    assert_eq!(code, Some(0), "fix-baseline failed:\n{text}");
    let (code, text) = run(&["check"]);
    assert_eq!(code, Some(0), "baselined workspace must pass:\n{text}");

    // 3. New debt on top of the baseline still fails.
    std::fs::write(
        &lib,
        format!("{seeded}\npub fn more(xs: &[f64]) -> f64 {{\n    xs.last().unwrap()\n}}\n"),
    )
    .expect("append new debt");
    let (code, text) = run(&["check"]);
    assert_eq!(code, Some(1), "new debt must fail:\n{text}");
    assert!(text.contains("D002"), "new unwrap not reported:\n{text}");

    // 4. Fixing a finding without ratcheting the baseline down is stale.
    std::fs::write(&lib, seeded.replace("xs.first().unwrap()", "42.0")).expect("fix a finding");
    let (code, text) = run(&["check"]);
    assert_eq!(code, Some(1), "stale baseline must fail:\n{text}");
    assert!(
        text.contains("[stale]"),
        "stale entry not reported:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&scratch);
}

/// Recursively copy the source parts of a workspace: every file under
/// `crates/` and `src/` plus the root `Cargo.toml` and `lint.toml`.
fn copy_workspace(from: &Path, to: &Path) {
    fn copy_tree(from: &Path, to: &Path) {
        std::fs::create_dir_all(to).expect("mkdir copy target");
        for entry in std::fs::read_dir(from).expect("read copy source") {
            let entry = entry.expect("dir entry");
            let (src, dst) = (entry.path(), to.join(entry.file_name()));
            if src.is_dir() {
                copy_tree(&src, &dst);
            } else {
                std::fs::copy(&src, &dst).expect("copy file");
            }
        }
    }
    std::fs::create_dir_all(to).expect("mkdir scratch root");
    for top in ["Cargo.toml", "lint.toml"] {
        if from.join(top).exists() {
            std::fs::copy(from.join(top), to.join(top)).expect("copy root file");
        }
    }
    for dir in ["crates", "src"] {
        if from.join(dir).is_dir() {
            copy_tree(&from.join(dir), &to.join(dir));
        }
    }
}

fn run_lint(args: &[&str], root: &Path) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(args)
        .arg("--root")
        .arg(root)
        .output()
        .expect("spawn lint binary");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code(), text)
}

/// The PR's acceptance scenario, end to end: copy the real workspace,
/// confirm `check --semantic` passes on the copy, then seed a panic site
/// into crates/cluster reachable from a new `resolve*` entry point and
/// assert the binary fails with a D101 finding naming the call chain.
#[test]
fn binary_reports_seeded_panic_reachable_from_resolve() {
    let scratch =
        std::env::temp_dir().join(format!("distinct-lint-semcheck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_workspace(&workspace_root(), &scratch);

    // The pristine copy is exactly as clean as the real workspace.
    let (code, text) = run_lint(&["check", "--semantic"], &scratch);
    assert_eq!(code, Some(0), "pristine copy must pass --semantic:\n{text}");

    // Seed: an unwrap in crates/cluster plus a core entry point that
    // reaches it. Lexing does not require the files to be `mod`-declared.
    std::fs::write(
        scratch.join("crates/cluster/src/seeded.rs"),
        "pub fn seeded_stage(x: Option<f64>) -> f64 {\n    x.unwrap()\n}\n",
    )
    .expect("seed cluster panic site");
    std::fs::write(
        scratch.join("crates/core/src/seeded_entry.rs"),
        "/// Seeded entry point for the self-check.\n\
         pub fn resolve_seeded() -> f64 {\n    cluster::seeded::seeded_stage(None)\n}\n",
    )
    .expect("seed core entry point");

    let (code, text) = run_lint(&["check", "--semantic"], &scratch);
    assert_eq!(code, Some(1), "seeded copy must fail --semantic:\n{text}");
    assert!(text.contains("D101"), "no D101 reported:\n{text}");
    assert!(
        text.contains("crates/cluster/src/seeded.rs"),
        "finding not at the seeded site:\n{text}"
    );
    assert!(
        text.contains("resolve_seeded") && text.contains(" → "),
        "finding does not name the call chain from the entry point:\n{text}"
    );

    // Syntactic mode is indifferent to reachability: the same workspace
    // fails there too, but as a plain per-file D002.
    let (code, text) = run_lint(&["check"], &scratch);
    assert_eq!(
        code,
        Some(1),
        "seeded copy must fail syntactic check:\n{text}"
    );
    assert!(text.contains("D002"), "no D002 reported:\n{text}");

    let _ = std::fs::remove_dir_all(&scratch);
}

/// Seed a guard held across an exec pool submit into crates/core and
/// assert `check --semantic` fails with a D106 finding that names the
/// guard binding and the blocking call.
#[test]
fn binary_reports_seeded_guard_across_pool_boundary() {
    let scratch = std::env::temp_dir().join(format!("distinct-lint-d106-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_workspace(&workspace_root(), &scratch);

    std::fs::write(
        scratch.join("crates/core/src/seeded_guard.rs"),
        "struct SeededGuard;\n\n\
         impl SeededGuard {\n    fn fan(&self) {\n        let g = self.names.lock();\n        \
         self.pool.par_map_guarded(g.len());\n    }\n}\n",
    )
    .expect("seed guard-liveness violation");

    let (code, text) = run_lint(&["check", "--semantic"], &scratch);
    assert_eq!(code, Some(1), "seeded copy must fail --semantic:\n{text}");
    assert!(text.contains("D106"), "no D106 reported:\n{text}");
    assert!(
        text.contains("`g`") && text.contains("par_map_guarded"),
        "finding does not name the guard and the blocking call:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&scratch);
}

/// Seed an unordered hash fold into crates/core and assert semantic mode
/// reports it as D107 (the flow-sensitive subsumption of syntactic D001).
#[test]
fn binary_reports_seeded_hash_fold_as_determinism_taint() {
    let scratch = std::env::temp_dir().join(format!("distinct-lint-d107-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_workspace(&workspace_root(), &scratch);

    std::fs::write(
        scratch.join("crates/core/src/seeded_fold.rs"),
        "use rustc_hash::FxHashMap;\n\n\
         fn seeded_total(weights: &FxHashMap<u32, f64>) -> f64 {\n    \
         weights.values().sum()\n}\n",
    )
    .expect("seed determinism-taint violation");

    let (code, text) = run_lint(&["check", "--semantic"], &scratch);
    assert_eq!(code, Some(1), "seeded copy must fail --semantic:\n{text}");
    assert!(text.contains("D107"), "no D107 reported:\n{text}");
    assert!(
        text.contains("seeded_total"),
        "finding does not name the folding function:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&scratch);
}

/// Strip the `shared(...)` declaration off a real registered cell
/// (ProfileCache's shard array) and assert semantic mode fails with D108
/// — and that `--fix-baseline` refuses to absorb it as debt.
#[test]
fn binary_reports_stripped_shared_declaration_and_refuses_to_baseline_it() {
    let scratch = std::env::temp_dir().join(format!("distinct-lint-d108-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_workspace(&workspace_root(), &scratch);

    let cache = scratch.join("crates/core/src/cache.rs");
    let src = std::fs::read_to_string(&cache).expect("read cache.rs");
    let stripped: String = src
        .lines()
        .filter(|l| !l.contains("distinct-lint: shared("))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_ne!(src, stripped, "cache.rs must carry a shared() declaration");
    std::fs::write(&cache, stripped).expect("strip declaration");

    let (code, text) = run_lint(&["check", "--semantic"], &scratch);
    assert_eq!(code, Some(1), "stripped copy must fail --semantic:\n{text}");
    assert!(text.contains("D108"), "no D108 reported:\n{text}");
    assert!(
        text.contains("ProfileCache") && text.contains("crates/core/src/cache.rs"),
        "finding does not name the owner and file:\n{text}"
    );

    let (code, text) = run_lint(&["check", "--semantic", "--fix-baseline"], &scratch);
    assert_eq!(code, Some(2), "fix-baseline must refuse D108 debt:\n{text}");
    assert!(
        text.contains("shared(") && text.contains("declaration"),
        "refusal does not point at the fix:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&scratch);
}

/// Seed a pool closure that mutates a captured buffer and assert
/// semantic mode reports it as D109 with the return-per-task guidance.
#[test]
fn binary_reports_seeded_closure_capture_mutation() {
    let scratch = std::env::temp_dir().join(format!("distinct-lint-d109-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_workspace(&workspace_root(), &scratch);

    std::fs::write(
        scratch.join("crates/core/src/seeded_commit.rs"),
        "struct SeededCommit;\n\n\
         impl SeededCommit {\n    fn collect(&self, items: &[u32]) {\n        \
         let mut out = Vec::new();\n        \
         self.pool.par_map_indexed(items, |i, item| {\n            \
         out.push(item + i);\n        });\n    }\n}\n",
    )
    .expect("seed commit-mutation violation");

    let (code, text) = run_lint(&["check", "--semantic"], &scratch);
    assert_eq!(code, Some(1), "seeded copy must fail --semantic:\n{text}");
    assert!(text.contains("D109"), "no D109 reported:\n{text}");
    assert!(
        text.contains("`out`") && text.contains("ordered-commit"),
        "finding does not name the capture and the protocol:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&scratch);
}

/// Seed a charge-guarded function that allocates on every loop iteration
/// into crates/core and assert semantic mode reports it as D110.
#[test]
fn binary_reports_seeded_hot_loop_allocation() {
    let scratch = std::env::temp_dir().join(format!("distinct-lint-d110-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_workspace(&workspace_root(), &scratch);

    std::fs::write(
        scratch.join("crates/core/src/seeded_churn.rs"),
        "fn seeded_features(ctl: &Ctl, rows: &[Vec<u32>]) -> usize {\n    \
         ctl.charge(rows.len() as u64);\n    let mut n = 0;\n    \
         for row in rows {\n        \
         let owned: Vec<u32> = row.iter().copied().collect();\n        \
         n += owned.len();\n    }\n    n\n}\n",
    )
    .expect("seed hot-loop allocation violation");

    let (code, text) = run_lint(&["check", "--semantic"], &scratch);
    assert_eq!(code, Some(1), "seeded copy must fail --semantic:\n{text}");
    assert!(text.contains("D110"), "no D110 reported:\n{text}");
    assert!(
        text.contains("seeded_features"),
        "finding does not name the charged function:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&scratch);
}

/// Seed a clone that is only ever read afterwards into crates/core and
/// assert semantic mode reports it as D111 with the borrow guidance.
#[test]
fn binary_reports_seeded_read_only_clone() {
    let scratch = std::env::temp_dir().join(format!("distinct-lint-d111-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_workspace(&workspace_root(), &scratch);

    std::fs::write(
        scratch.join("crates/core/src/seeded_copy.rs"),
        "struct SeededCfg;\n\n\
         impl SeededCfg {\n    fn label_len(&self) -> usize {\n        \
         let copy = self.name.clone();\n        copy.len()\n    }\n}\n",
    )
    .expect("seed read-only clone violation");

    let (code, text) = run_lint(&["check", "--semantic"], &scratch);
    assert_eq!(code, Some(1), "seeded copy must fail --semantic:\n{text}");
    assert!(text.contains("D111"), "no D111 reported:\n{text}");
    assert!(
        text.contains("`copy`") && text.contains("borrow"),
        "finding does not name the binding and the fix:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&scratch);
}

/// Strip the `scratch(...)` declaration off a real registered scratch
/// structure (the pooled `SetArena` minted in `ArenaPool::take`) and
/// assert semantic mode fails with D112 — and that `--fix-baseline`
/// refuses to absorb it as debt, mirroring the D108 refusal.
#[test]
fn binary_reports_stripped_scratch_declaration_and_refuses_to_baseline_it() {
    let scratch = std::env::temp_dir().join(format!("distinct-lint-d112-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_workspace(&workspace_root(), &scratch);

    let arena = scratch.join("crates/relgraph/src/arena.rs");
    let src = std::fs::read_to_string(&arena).expect("read arena.rs");
    let stripped: String = src
        .lines()
        .filter(|l| !l.contains("distinct-lint: scratch("))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_ne!(src, stripped, "arena.rs must carry a scratch() declaration");
    std::fs::write(&arena, stripped).expect("strip declaration");

    let (code, text) = run_lint(&["check", "--semantic"], &scratch);
    assert_eq!(code, Some(1), "stripped copy must fail --semantic:\n{text}");
    assert!(text.contains("D112"), "no D112 reported:\n{text}");
    assert!(
        text.contains("SetArena") && text.contains("crates/relgraph/src/arena.rs"),
        "finding does not name the scratch type and file:\n{text}"
    );

    let (code, text) = run_lint(&["check", "--semantic", "--fix-baseline"], &scratch);
    assert_eq!(code, Some(2), "fix-baseline must refuse D112 debt:\n{text}");
    assert!(
        text.contains("scratch(") && text.contains("declaration"),
        "refusal does not point at the fix:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&scratch);
}

/// Seed a spine-reachable struct field that only ever grows into
/// crates/core and assert semantic mode reports it as D113.
#[test]
fn binary_reports_seeded_unbounded_growth() {
    let scratch = std::env::temp_dir().join(format!("distinct-lint-d113-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_workspace(&workspace_root(), &scratch);

    std::fs::write(
        scratch.join("crates/core/src/seeded_growth.rs"),
        "struct SeededLog;\n\n\
         impl SeededLog {\n    \
         /// Seeded spine entry point for the self-check.\n    \
         pub fn resolve_seeded_log(&mut self, key: u64) -> usize {\n        \
         self.events.push(key);\n        self.events.len()\n    }\n}\n",
    )
    .expect("seed unbounded-growth violation");

    let (code, text) = run_lint(&["check", "--semantic"], &scratch);
    assert_eq!(code, Some(1), "seeded copy must fail --semantic:\n{text}");
    assert!(text.contains("D113"), "no D113 reported:\n{text}");
    assert!(
        text.contains("SeededLog") && text.contains("events"),
        "finding does not name the owner and field:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&scratch);
}

/// `facts --emit json` over the real workspace: the registry must list
/// the production cells CI greps for, and every emitted cell must carry
/// a declaration (the D108 gate keeps the two in lockstep).
#[test]
fn facts_export_lists_the_production_cells() {
    let (code, text) = run_lint(&["facts", "--emit", "json"], &workspace_root());
    assert_eq!(code, Some(0), "facts export failed:\n{text}");
    for marker in ["\"cells\"", "\"guards\"", "ProfileCache", "\"names\""] {
        assert!(text.contains(marker), "missing {marker} in:\n{text}");
    }
    // D108 keeps the registry and the declarations in lockstep, so no
    // emitted cell may be missing its merge discipline.
    assert!(
        !text.contains("\"discipline\": null"),
        "a registered cell is missing its merge discipline:\n{text}"
    );
}

/// Doc-drift gate: every lint in the catalog must have a working
/// `--explain` (a real rationale, not a stub) and a LINTS.md section —
/// both the index-table row and the full `## Dxxx — ...` entry. A new
/// pass cannot ship half-documented.
#[test]
fn every_catalog_id_has_explain_and_a_lints_md_section() {
    let lints_md = std::fs::read_to_string(workspace_root().join("LINTS.md"))
        .expect("LINTS.md at the workspace root");
    for id in lint::catalog::LintId::ALL {
        assert!(
            id.rationale().len() >= 80,
            "{id}: rationale is missing or a stub; `explain {id}` would be useless"
        );
        // `explain` takes exactly one argument, so it cannot go through
        // run_lint (which appends `--root`).
        let out = Command::new(env!("CARGO_BIN_EXE_lint"))
            .args(["explain", id.name()])
            .output()
            .expect("spawn lint binary");
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        assert_eq!(out.status.code(), Some(0), "`explain {id}` failed:\n{text}");
        assert!(
            text.contains(id.rationale()),
            "`explain {id}` does not print the catalog rationale:\n{text}"
        );
        assert!(
            lints_md.contains(&format!("## {id} — ")),
            "LINTS.md has no `## {id} — ...` section"
        );
        assert!(
            lints_md.contains(&format!("[{id}](#")),
            "LINTS.md index table has no row linking to {id}"
        );
    }
}

/// A directory under `crates/` without a manifest must be a loud, typed
/// error from `graph` (it used to exit 0 with partial output).
#[test]
fn graph_fails_loudly_on_missing_manifest() {
    let scratch =
        std::env::temp_dir().join(format!("distinct-lint-graphcheck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(scratch.join("crates/ghost/src")).expect("mkdir scratch");
    std::fs::write(scratch.join("Cargo.toml"), "[workspace]\n").expect("write root manifest");
    std::fs::write(scratch.join("crates/ghost/src/lib.rs"), "").expect("write stray lib");

    let (code, text) = run_lint(&["graph"], &scratch);
    assert_eq!(
        code,
        Some(2),
        "graph must fail on a stray crate dir:\n{text}"
    );
    assert!(
        text.contains("ghost") && text.contains("no Cargo.toml"),
        "error does not name the stray directory:\n{text}"
    );

    // The semantic check depends on the same crate topology, so it fails
    // with the same typed error instead of silently under-resolving.
    let (code, text) = run_lint(&["check", "--semantic"], &scratch);
    assert_eq!(code, Some(2), "semantic check must fail too:\n{text}");
    assert!(text.contains("no Cargo.toml"), "{text}");

    let _ = std::fs::remove_dir_all(&scratch);
}

/// `call-graph --reach` over the real workspace: the production resolve
/// spine (core → cluster → relgraph) must stay reachable, and a query
/// matching nothing must fail. CI runs the same smoke via the binary.
#[test]
fn reach_query_covers_the_resolve_spine() {
    let root = workspace_root();
    let (code, text) = run_lint(&["call-graph", "--reach", "distinct::resolve"], &root);
    assert_eq!(code, Some(0), "reach query failed:\n{text}");
    for marker in ["[core]", "[cluster]", "[relgraph]"] {
        assert!(
            text.contains(marker),
            "resolve no longer reaches {marker}:\n{text}"
        );
    }
    let (code, text) = run_lint(&["call-graph", "--reach", "zzz_no_such_fn"], &root);
    assert_eq!(code, Some(1), "vanished root must exit 1:\n{text}");
    assert!(text.contains("no function matches"), "{text}");
}

//! Experiment D1 (extension) — whole-database object distinction: resolve
//! every author name in the standard world in one pass and score the
//! global entity assignment against the generator's complete ground
//! truth. The paper evaluates per-name; this is the deployment-shaped
//! closure of that evaluation.
//!
//! Run: `cargo run --release -p distinct-bench --bin exp_dedupe`

use distinct::{DedupeOptions, Distinct, DistinctConfig};
use distinct_bench::{build_dataset, STANDARD_SEED};
use eval::{bcubed_scores, f3, Align, PhaseTimer, Table};
use relstore::{TupleId, TupleRef};

fn main() {
    let mut timer = PhaseTimer::new();
    let dataset = timer.time("generate world", || build_dataset(STANDARD_SEED));
    let mut engine = timer.time("prepare", || {
        Distinct::prepare(
            &dataset.catalog,
            "Publish",
            "author",
            DistinctConfig::default(),
        )
        .expect("prepare")
    });
    timer.time("train", || engine.train().expect("train"));
    let assignment = timer.time("resolve all names (4 threads)", || {
        engine.resolve_all(&DedupeOptions {
            threads: 4,
            ..Default::default()
        })
    });

    let publish = dataset.publish;
    let mut gold = Vec::new();
    let mut pred = Vec::new();
    for (i, &entity) in dataset.publish_entities.iter().enumerate() {
        let r = TupleRef::new(publish, TupleId(i as u32));
        if let Some(e) = assignment.entity(r) {
            gold.push(entity);
            pred.push(e);
        }
    }
    let b3 = bcubed_scores(&gold, &pred);

    let true_entities = {
        let mut set: Vec<usize> = gold.clone();
        set.sort_unstable();
        set.dedup();
        set.len()
    };

    let mut table = Table::new(&["metric", "value"], &[Align::Left, Align::Right])
        .with_title("D1. Whole-database resolution (standard world)");
    table.row(vec![
        "references assigned".into(),
        assignment.assigned_refs().to_string(),
    ]);
    table.row(vec![
        "names processed".into(),
        assignment.resolutions.len().to_string(),
    ]);
    table.row(vec![
        "names split into >1 entity".into(),
        assignment.split_names().len().to_string(),
    ]);
    table.row(vec![
        "predicted entities".into(),
        assignment.entity_count().to_string(),
    ]);
    table.row(vec![
        "true entities (with refs)".into(),
        true_entities.to_string(),
    ]);
    table.row(vec!["global B3 precision".into(), f3(b3.precision)]);
    table.row(vec!["global B3 recall".into(), f3(b3.recall)]);
    table.row(vec!["global B3 f-measure".into(), f3(b3.f_measure)]);
    println!("{}", table.render());
    println!("{}", timer.report());
}

//! Criterion bench: the agglomerative clustering engine with lazy-heap
//! candidate management and incremental pair-similarity aggregation (§4.2).

use cluster::{agglomerate, Linkage, MatrixMerger};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A deterministic pseudo-random similarity matrix with planted block
/// structure (k blocks of high within-similarity).
fn blocked_matrix(n: usize, k: usize) -> Vec<Vec<f64>> {
    let mut m = vec![vec![0.0; n]; n];
    let mut v = 0.37f64;
    for i in 0..n {
        for j in (i + 1)..n {
            v = (v * 9.13 + 0.17).fract();
            let same_block = (i * k / n) == (j * k / n);
            let s = if same_block { 0.5 + 0.5 * v } else { 0.1 * v };
            m[i][j] = s;
            m[j][i] = s;
        }
    }
    m
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("agglomerate");
    for &n in &[50usize, 150, 300] {
        let matrix = blocked_matrix(n, 5);
        for (label, linkage) in [
            ("average", Linkage::Average),
            ("single", Linkage::Single),
            ("complete", Linkage::Complete),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &matrix, |b, matrix| {
                b.iter(|| {
                    let mut merger = MatrixMerger::new(matrix.clone(), linkage);
                    let clustering = agglomerate(n, &mut merger, 0.3);
                    black_box(clustering.cluster_count())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);

//! Per-set similarity sketches: cheap, sound upper bounds on the
//! weighted Jaccard resemblance of Definition 2.
//!
//! A [`Sketch`] summarizes one [`WeightedSet`](crate::WeightedSet) with
//! O([`SketchConfig::prefix_len`]) state computed once per resolve:
//!
//! * the member count and total mass (accumulated in node order, so the
//!   total is bit-identical to [`crate::WeightedSet::total`]);
//! * a **top-weight prefix** — the `prefix_len` heaviest members, stored
//!   sorted by key for merge-joining against another prefix;
//! * the **tail** mass and maximum tail weight (everything outside the
//!   prefix);
//! * a hashed **support mask** of `2^minhash_bits` bits — one bit per
//!   member. Two sets whose masks share no bit provably have disjoint
//!   supports (an element common to both would set the same bit in each),
//!   so a zero mask intersection proves resemblance *and* walk
//!   probability are exactly zero. The converse does not hold: saturated
//!   masks simply fail to prune.
//!
//! [`Sketch::upper_bound`] combines these into a bound `B(a, b)` with
//! `B(a, b) >= Resem(a, b)` for every pair (property-tested in this
//! module). The engine's *lossless* pruning rule only ever uses the
//! certificate `B(a, b) == 0.0`: the bound then proves the exact kernel
//! would return `0.0`, so skipping it cannot perturb a single bit of the
//! similarity tables, whatever the clustering threshold. The full bound
//! is still exposed (and tested sound) for threshold-based candidate
//! generation in workloads whose aggregation tolerates it.

use crate::graph::NodeId;
use crate::WeightedSet;
use std::fmt;

/// Relative inflation applied to the accumulated numerator bound so that
/// float rounding in the bound's own sums can never push it below the
/// exactly-computed resemblance. Orders of magnitude above the worst-case
/// relative error of summing `2^17` terms, orders below any useful
/// threshold.
const BOUND_SLACK: f64 = 1e-9;

/// Validated parameters of the sketch tier.
///
/// Constructed via struct literal and checked with
/// [`SketchConfig::validate`]; the `ResolveRequest` builder surfaces
/// invalid values as typed [`ConfigError`]s at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchConfig {
    /// How many of the heaviest members the prefix keeps. Sets no longer
    /// than this are represented exactly, making the zero-bound test
    /// exact for them. Must be in `1..=65536`.
    pub prefix_len: usize,
    /// Log2 of the support-mask width in bits (`9` → a 512-bit mask).
    /// Must be in `3..=24`.
    pub minhash_bits: u32,
}

impl SketchConfig {
    /// The default lossless configuration: a 16-entry prefix and a
    /// 512-bit support mask. "Lossless" is a property of the pruning
    /// rule (only provably-zero kernels are skipped), so *every* valid
    /// configuration is lossless; this one just balances sketch size
    /// against pruning power for the per-name group sizes the paper's
    /// workload produces.
    pub fn lossless() -> Self {
        SketchConfig {
            prefix_len: 16,
            minhash_bits: 9,
        }
    }

    /// Check parameter ranges, returning the first violation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.prefix_len == 0 || self.prefix_len > 65536 {
            return Err(ConfigError::PrefixLen {
                got: self.prefix_len,
            });
        }
        if !(3..=24).contains(&self.minhash_bits) {
            return Err(ConfigError::MinHashBits {
                got: self.minhash_bits,
            });
        }
        Ok(())
    }

    /// Support-mask width in bits.
    fn mask_bits(&self) -> u64 {
        1u64 << self.minhash_bits
    }
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig::lossless()
    }
}

/// An invalid [`SketchConfig`], reported at request build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `prefix_len` outside `1..=65536`.
    PrefixLen {
        /// The rejected value.
        got: usize,
    },
    /// `minhash_bits` outside `3..=24`.
    MinHashBits {
        /// The rejected value.
        got: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::PrefixLen { got } => {
                write!(f, "sketch prefix_len must be in 1..=65536, got {got}")
            }
            ConfigError::MinHashBits { got } => {
                write!(f, "sketch minhash_bits must be in 3..=24, got {got}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// SplitMix64: a cheap, statistically strong keyed bit mixer for the
/// support mask. Deterministic across platforms and runs.
fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The sketch of one weighted set (see the module docs).
#[derive(Debug, Clone)]
pub struct Sketch {
    /// Member count of the sketched set.
    len: usize,
    /// Total mass, bit-identical to the set's own `total()`.
    total: f64,
    /// The `prefix_len` heaviest `(key, weight)` members, sorted by key.
    prefix: Vec<(u64, f64)>,
    /// Sum of the weights outside the prefix (0 when fully covered).
    tail_mass: f64,
    /// Largest weight outside the prefix (0 when fully covered).
    tail_max: f64,
    /// Hashed support mask, `2^minhash_bits` bits.
    mask: Vec<u64>,
    /// Mask width exponent, to reject cross-config comparisons.
    minhash_bits: u32,
}

impl Sketch {
    /// Sketch a weighted set under `config` (assumed validated).
    pub fn of_set(set: &WeightedSet, config: &SketchConfig) -> Sketch {
        Sketch::build(set.iter().map(|(NodeId(n), w)| (n as u64, w)), config)
    }

    /// Sketch an arbitrary `(key, weight)` sequence sorted by key with
    /// strictly positive weights — the shared entry point for
    /// [`WeightedSet`]s and interned arena rows.
    pub(crate) fn build(pairs: impl Iterator<Item = (u64, f64)>, config: &SketchConfig) -> Sketch {
        let items: Vec<(u64, f64)> = pairs.collect();
        let len = items.len();
        // Total in key order: the input is key-sorted, so this matches
        // `WeightedSet::total()` bit for bit.
        let total: f64 = items.iter().map(|&(_, w)| w).sum();
        let mask_bits = config.mask_bits();
        let words = (mask_bits as usize).div_ceil(64);
        let mut mask = vec![0u64; words];
        for &(k, _) in &items {
            let bit = mix(k) & (mask_bits - 1);
            mask[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
        // Top-`prefix_len` by weight, ties broken by key so the split is
        // a pure function of the set.
        let mut by_weight = items;
        by_weight.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let cut = config.prefix_len.min(by_weight.len());
        let tail = by_weight.split_off(cut);
        let mut prefix = by_weight;
        prefix.sort_unstable_by_key(|&(k, _)| k);
        let tail_max = tail.iter().map(|&(_, w)| w).fold(0.0f64, f64::max);
        // Tail mass in key order for determinism (any order is sound:
        // the slack in `upper_bound` absorbs rounding differences).
        let mut tail_sorted = tail;
        tail_sorted.sort_unstable_by_key(|&(k, _)| k);
        let tail_mass: f64 = tail_sorted.iter().map(|&(_, w)| w).sum();
        Sketch {
            len,
            total,
            prefix,
            tail_mass,
            tail_max,
            mask,
            minhash_bits: config.minhash_bits,
        }
    }

    /// Member count of the sketched set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the sketched set was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total mass of the sketched set.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// True when the hashed support masks prove the two sets disjoint.
    /// No false positives: a shared member sets the same bit in both.
    pub fn provably_disjoint(&self, other: &Sketch) -> bool {
        debug_assert_eq!(self.minhash_bits, other.minhash_bits);
        self.mask.iter().zip(&other.mask).all(|(a, b)| a & b == 0)
    }

    /// A sound upper bound on `Resem(A, B)`:
    /// `upper_bound(a, b) >= WeightedSet::resemblance(a, b)` always, and
    /// `upper_bound(a, b) == 0.0` proves the resemblance **and** every
    /// support-intersection quantity (hence the walk probability) is
    /// exactly zero.
    ///
    /// Soundness: split the intersection by prefix membership. Shared
    /// prefix keys contribute their exact `Σ min`; a key in one prefix
    /// but the other's tail contributes at most `min(w, tail_max)` each
    /// and at most the whole tail mass in sum; tail∩tail contributes at
    /// most `min(tail_mass_A, tail_mass_B)`. The numerator bound is
    /// inflated by a relative slack to absorb its own rounding, clamped
    /// to `min(total_A, total_B)` (which dominates any `Σ min`), and
    /// pushed through the monotone map `x ↦ x / (T_A + T_B − x)`.
    pub fn upper_bound(&self, other: &Sketch) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        if self.provably_disjoint(other) {
            return 0.0;
        }
        let (pa, pb) = (&self.prefix, &other.prefix);
        // Exact Σ min over shared prefix keys, plus each side's
        // prefix-only keys bounded against the other side's tail.
        let mut shared = 0.0f64;
        let mut a_only = 0.0f64; // Σ min(w_A, tail_max_B) over P_A \ P_B
        let mut b_only = 0.0f64; // Σ min(w_B, tail_max_A) over P_B \ P_A
        let (mut i, mut j) = (0, 0);
        while i < pa.len() && j < pb.len() {
            match pa[i].0.cmp(&pb[j].0) {
                std::cmp::Ordering::Less => {
                    a_only += pa[i].1.min(other.tail_max);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    b_only += pb[j].1.min(self.tail_max);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    shared += pa[i].1.min(pb[j].1);
                    i += 1;
                    j += 1;
                }
            }
        }
        for &(_, w) in &pa[i..] {
            a_only += w.min(other.tail_max);
        }
        for &(_, w) in &pb[j..] {
            b_only += w.min(self.tail_max);
        }
        let t2 = a_only.min(other.tail_mass);
        let t3 = b_only.min(self.tail_mass);
        let t4 = self.tail_mass.min(other.tail_mass);
        let num_ub = ((shared + t2 + t3 + t4) * (1.0 + BOUND_SLACK))
            .min(self.total)
            .min(other.total);
        if num_ub <= 0.0 {
            return 0.0;
        }
        let den = self.total + other.total - num_ub;
        if den <= 0.0 {
            1.0
        } else {
            (num_ub / den).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(pairs: &[(u32, f64)]) -> WeightedSet {
        pairs.iter().map(|&(n, w)| (NodeId(n), w)).collect()
    }

    /// Shared soundness check: panics with a paste-ready description when
    /// the bound undercuts the exact kernel. Proptest shrinks failures
    /// through it, and the regression table below replays previously
    /// shrunk cases verbatim.
    fn check_sound(xs: &[(u32, f64)], ys: &[(u32, f64)], config: &SketchConfig) {
        config.validate().expect("test configs are valid");
        let (a, b) = (set(xs), set(ys));
        let (sa, sb) = (Sketch::of_set(&a, config), Sketch::of_set(&b, config));
        let bound = sa.upper_bound(&sb);
        let exact = a.resemblance(&b);
        assert!(
            bound >= exact,
            "bound {bound} < exact {exact} for xs={xs:?} ys={ys:?} config={config:?}"
        );
        assert!((0.0..=1.0).contains(&bound), "bound out of range: {bound}");
        // The zero certificate is what the engine prunes on: it must
        // imply a zero support intersection, not merely a zero value.
        if bound == 0.0 {
            assert_eq!(exact, 0.0);
            assert_eq!(a.jaccard_unweighted(&b), 0.0);
        }
        // Symmetric within the slack's reach (the bound formula is
        // symmetric term by term).
        let rev = sb.upper_bound(&sa);
        assert!(
            (bound - rev).abs() < 1e-12,
            "asymmetric bound {bound} vs {rev}"
        );
    }

    #[test]
    fn empty_and_disjoint_sets_bound_to_zero() {
        let cfg = SketchConfig::lossless();
        check_sound(&[], &[(1, 0.5)], &cfg);
        check_sound(&[(1, 0.5)], &[(2, 0.5), (3, 0.25)], &cfg);
        let a = Sketch::of_set(&set(&[(1, 0.5)]), &cfg);
        let b = Sketch::of_set(&set(&[(2, 0.5)]), &cfg);
        assert_eq!(a.upper_bound(&b), 0.0);
        assert!(a.provably_disjoint(&b));
    }

    #[test]
    fn identical_sets_bound_to_at_least_one() {
        let cfg = SketchConfig::lossless();
        let s = set(&[(1, 0.3), (2, 0.7)]);
        let sk = Sketch::of_set(&s, &cfg);
        assert!(sk.upper_bound(&sk) >= 1.0 - 1e-12);
        assert!((sk.total() - s.total()).abs() == 0.0);
    }

    #[test]
    fn fully_prefixed_sets_get_an_exact_zero_test() {
        // Both sets fit in the prefix, so the zero certificate must fire
        // exactly when the supports are disjoint.
        let cfg = SketchConfig {
            prefix_len: 8,
            minhash_bits: 3, // tiny mask: saturates, forcing the prefix test
        };
        let a = Sketch::of_set(&set(&[(1, 0.9), (3, 0.1)]), &cfg);
        let b = Sketch::of_set(&set(&[(2, 0.5), (4, 0.5)]), &cfg);
        let c = Sketch::of_set(&set(&[(3, 1.0)]), &cfg);
        assert_eq!(a.upper_bound(&b), 0.0);
        assert!(a.upper_bound(&c) > 0.0);
    }

    #[test]
    fn regression_cases_stay_sound() {
        // Previously interesting shapes, replayed through the shared
        // checker. Shrunk proptest counterexamples get appended here.
        type Case = (&'static [(u32, f64)], &'static [(u32, f64)], SketchConfig);
        let cases: &[Case] = &[
            // Prefix boundary: one element falls into the tail.
            (
                &[(0, 0.5), (1, 0.4), (2, 0.3)],
                &[(2, 0.3), (3, 0.2)],
                SketchConfig {
                    prefix_len: 2,
                    minhash_bits: 3,
                },
            ),
            // Tail-dominated overlap: the shared key is in both tails.
            (
                &[(0, 1.0), (9, 0.01)],
                &[(5, 1.0), (9, 0.01)],
                SketchConfig {
                    prefix_len: 1,
                    minhash_bits: 3,
                },
            ),
            // Equal weights everywhere: ties broken by key.
            (
                &[(0, 0.2), (1, 0.2), (2, 0.2)],
                &[(1, 0.2), (2, 0.2), (3, 0.2)],
                SketchConfig {
                    prefix_len: 2,
                    minhash_bits: 4,
                },
            ),
            // One singleton against a wide set.
            (
                &[(7, 0.125)],
                &[(0, 0.1), (3, 0.1), (7, 0.1), (11, 0.1), (13, 0.1)],
                SketchConfig {
                    prefix_len: 3,
                    minhash_bits: 5,
                },
            ),
        ];
        for (xs, ys, cfg) in cases {
            check_sound(xs, ys, cfg);
        }
    }

    #[test]
    fn config_validation() {
        SketchConfig::lossless().validate().unwrap();
        assert_eq!(
            SketchConfig {
                prefix_len: 0,
                minhash_bits: 9
            }
            .validate(),
            Err(ConfigError::PrefixLen { got: 0 })
        );
        assert_eq!(
            SketchConfig {
                prefix_len: 16,
                minhash_bits: 2
            }
            .validate(),
            Err(ConfigError::MinHashBits { got: 2 })
        );
        assert_eq!(
            SketchConfig {
                prefix_len: 16,
                minhash_bits: 25
            }
            .validate(),
            Err(ConfigError::MinHashBits { got: 25 })
        );
        let msg = format!("{}", ConfigError::PrefixLen { got: 0 });
        assert!(msg.contains("prefix_len"));
    }

    proptest! {
        // The tentpole soundness property: for arbitrary [0,1]-weight
        // sets and any valid sketch shape, the bound dominates the
        // exactly computed resemblance.
        #[test]
        fn bound_dominates_resemblance(
            xs in proptest::collection::vec((0u32..48, 1e-6f64..1.0), 0..40),
            ys in proptest::collection::vec((0u32..48, 1e-6f64..1.0), 0..40),
            prefix_len in 1usize..12,
            minhash_bits in 3u32..10,
        ) {
            let cfg = SketchConfig { prefix_len, minhash_bits };
            check_sound(&xs, &ys, &cfg);
        }

        // Mixed magnitudes must not break soundness either (the same
        // 12-orders spread the resemblance kernel is tested under).
        #[test]
        fn bound_dominates_for_wild_weights(
            xs in proptest::collection::vec((0u32..64, 1e-12f64..1e12), 0..30),
            ys in proptest::collection::vec((0u32..64, 1e-12f64..1e12), 0..30),
        ) {
            check_sound(&xs, &ys, &SketchConfig::lossless());
        }

        // The zero certificate is complete for fully-prefixed sets:
        // disjoint supports always produce a zero bound when both sets
        // fit in their prefixes (so the engine prunes every truly-zero
        // small-set kernel, not just some).
        #[test]
        fn zero_certificate_complete_when_fully_prefixed(
            xs in proptest::collection::vec((0u32..24, 1e-3f64..1.0), 1..8),
            ys in proptest::collection::vec((24u32..48, 1e-3f64..1.0), 1..8),
        ) {
            let cfg = SketchConfig { prefix_len: 16, minhash_bits: 9 };
            let (a, b) = (set(&xs), set(&ys));
            let sa = Sketch::of_set(&a, &cfg);
            let sb = Sketch::of_set(&b, &cfg);
            // Key ranges are disjoint by construction.
            prop_assert_eq!(sa.upper_bound(&sb), 0.0);
        }
    }
}

//! Experiment R1 (extension) — robustness to linkage noise: sweep the
//! generator's cross-community coauthorship probability (the knob behind
//! the paper's Fig. 5 mistakes) and measure how DISTINCT degrades. The
//! paper observes its errors come from "linkages between references to
//! different authors"; this quantifies that sensitivity.
//!
//! Run: `cargo run --release -p distinct-bench --bin exp_noise`

use datagen::{to_catalog, World, WorldConfig};
use distinct::{Distinct, DistinctConfig};
use distinct_bench::{evaluate_name, standard_world_config};
use eval::{f3, Align, Table};

fn main() {
    let mut table = Table::new(
        &[
            "cross-community prob",
            "avg precision",
            "avg recall",
            "avg f-measure",
        ],
        &[Align::Right, Align::Right, Align::Right, Align::Right],
    )
    .with_title("R1. DISTINCT vs cross-community linkage noise (standard world)");

    for noise in [0.0, 0.04, 0.08, 0.16, 0.32] {
        let mut config: WorldConfig = standard_world_config(99);
        config.cross_community_prob = noise;
        let dataset = to_catalog(&World::generate(config)).expect("valid world");
        let mut engine = Distinct::prepare(
            &dataset.catalog,
            "Publish",
            "author",
            DistinctConfig::default(),
        )
        .expect("prepare");
        engine.train().expect("train");
        let min_sim = engine.config().min_sim;
        let results: Vec<_> = dataset
            .truths
            .iter()
            .map(|t| evaluate_name(&engine, t, min_sim))
            .collect();
        let n = results.len() as f64;
        let p = results.iter().map(|r| r.scores.precision).sum::<f64>() / n;
        let r = results.iter().map(|r| r.scores.recall).sum::<f64>() / n;
        let f = results.iter().map(|r| r.scores.f_measure).sum::<f64>() / n;
        table.row(vec![format!("{noise:.2}"), f3(p), f3(r), f3(f)]);
        eprintln!("done: noise {noise}");
    }
    println!("{}", table.render());
}

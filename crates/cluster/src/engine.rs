//! The agglomerative clustering engine (paper §4).
//!
//! Every item starts as a singleton cluster; the engine repeatedly merges
//! the most similar pair of clusters until no pair reaches `min_sim`.
//! Cluster-pair similarities come from a pluggable [`Merger`], which is
//! also notified of merges so it can maintain its state *incrementally* —
//! the efficiency technique of §4.2: the similarity between a merged
//! cluster and any other cluster is aggregated from the children's
//! similarities rather than recomputed from scratch.
//!
//! The engine keeps candidate pairs in a lazy max-heap. A pair's
//! similarity never changes while both clusters are alive (only new
//! clusters introduce new pairs), so stale entries are exactly those
//! naming a dead cluster and can be skipped on pop.

use crate::dendrogram::Dendrogram;
use crate::linkage::Linkage;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::ops::Range;
use std::sync::atomic::{self, AtomicBool};

/// Provides cluster-pair similarities and receives merge notifications.
///
/// Cluster ids follow the dendrogram convention: `0..n` are the initial
/// singletons, and the `k`-th merge creates id `n + k`.
pub trait Merger {
    /// Similarity between two live clusters. Must be symmetric and finite.
    fn similarity(&self, a: usize, b: usize) -> f64;

    /// Clusters `a` and `b` were merged into the new cluster `into`.
    ///
    /// Implementations update their internal state so later
    /// `similarity(into, _)` calls work. Sizes are tracked by the engine
    /// and passed for convenience.
    fn merged(&mut self, a: usize, b: usize, into: usize, size_a: usize, size_b: usize);
}

/// Result of a clustering run.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Label per item (dense, in order of first appearance).
    pub labels: Vec<usize>,
    /// Full merge history.
    pub dendrogram: Dendrogram,
}

impl Clustering {
    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Items grouped by cluster label.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        crate::dendrogram::groups(&self.labels)
    }
}

#[derive(Debug, Clone, Copy)]
struct Candidate {
    sim: f64,
    a: usize,
    b: usize,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.sim == other.sim && self.a == other.a && self.b == other.b
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by similarity; ties broken by ids for determinism.
        self.sim
            .total_cmp(&other.sim)
            .then_with(|| (other.a, other.b).cmp(&(self.a, self.b)))
    }
}

/// Outcome of a guarded clustering run: the best clustering reached before
/// the guard stopped the engine (identical to the full result when
/// `completed` is true).
#[derive(Debug, Clone)]
pub struct PartialClustering {
    /// Labels and merge history as of the stopping point. Always a valid
    /// partition of the items — interruption only means some merges that
    /// would have happened did not.
    pub clustering: Clustering,
    /// False iff the guard stopped the run early.
    pub completed: bool,
}

/// Run agglomerative clustering over `n` items.
///
/// Merging stops when the best remaining pair's similarity is below
/// `min_sim` (or nothing is left to merge). Similarities must be finite;
/// non-finite values are treated as "do not merge".
pub fn agglomerate<M: Merger>(n: usize, merger: &mut M, min_sim: f64) -> Clustering {
    agglomerate_guarded(n, merger, min_sim, &mut |_| true).clustering
}

/// Like [`agglomerate`], but cooperatively interruptible.
///
/// `guard` is called with a count of similarity evaluations about to be
/// charged; returning `false` stops the engine at the next safe point. The
/// result is then the clustering built so far — every merge already
/// recorded stands, pending ones are abandoned — with `completed = false`.
/// Merges happen in decreasing similarity order, so an interrupted run has
/// performed a prefix of the full run's merges: the strongest evidence is
/// applied first and an early stop only leaves clusters *less* merged.
pub fn agglomerate_guarded<M: Merger>(
    n: usize,
    merger: &mut M,
    min_sim: f64,
    guard: &mut dyn FnMut(u64) -> bool,
) -> PartialClustering {
    let mut dendrogram = Dendrogram::new(n);
    if n == 0 {
        return PartialClustering {
            clustering: Clustering {
                labels: Vec::new(),
                dendrogram,
            },
            completed: true,
        };
    }

    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    let mut completed = true;

    // Seed the heap row by row, checking the guard between rows: with no
    // candidates admitted yet an early stop yields all-singletons.
    // NaN means "do not merge"; +inf (a must-link constraint) sorts first;
    // −inf (a cannot-link veto) fails the threshold like any low value.
    'seed: for a in 0..n {
        if !guard((n - a - 1) as u64) {
            completed = false;
            break 'seed;
        }
        for b in (a + 1)..n {
            let sim = merger.similarity(a, b);
            if !sim.is_nan() && sim >= min_sim {
                heap.push(Candidate { sim, a, b });
            }
        }
    }

    if completed {
        completed = merge_down(n, merger, min_sim, &mut heap, &mut dendrogram, guard);
    }

    // The dendrogram only contains merges with sim >= min_sim, so cutting
    // at -inf applies them all.
    let labels = dendrogram.cut(f64::NEG_INFINITY);
    PartialClustering {
        clustering: Clustering { labels, dendrogram },
        completed,
    }
}

/// The sequential merge loop shared by every entry point: pop the best
/// candidate, skip stale entries, merge, push the new cluster's pairs.
/// Returns `false` iff the guard stopped the loop before the heap drained.
fn merge_down<M: Merger>(
    n: usize,
    merger: &mut M,
    min_sim: f64,
    heap: &mut BinaryHeap<Candidate>,
    dendrogram: &mut Dendrogram,
    guard: &mut dyn FnMut(u64) -> bool,
) -> bool {
    // alive[id] for ids 0..n+merges; sizes likewise.
    let mut alive = vec![true; n];
    let mut sizes = vec![1usize; n];
    while let Some(c) = heap.pop() {
        if !alive[c.a] || !alive[c.b] {
            continue; // stale entry
        }
        // One merge costs up to `into` fresh similarity evaluations.
        if !guard(alive.iter().filter(|&&v| v).count() as u64) {
            return false;
        }
        // Merge.
        let (sa, sb) = (sizes[c.a], sizes[c.b]);
        let into = dendrogram.record(c.a, c.b, c.sim, sa + sb);
        alive[c.a] = false;
        alive[c.b] = false;
        alive.push(true);
        sizes.push(sa + sb);
        merger.merged(c.a, c.b, into, sa, sb);
        // New candidate pairs against every live cluster.
        for other in 0..into {
            if alive[other] {
                let sim = merger.similarity(into, other);
                if !sim.is_nan() && sim >= min_sim {
                    heap.push(Candidate {
                        sim,
                        a: into,
                        b: other,
                    });
                }
            }
        }
    }
    true
}

/// Like [`agglomerate_guarded`], but seeds the candidate heap **in
/// parallel** over the flat upper-triangle pair index space
/// `0..n·(n−1)/2` — the O(n²) initial similarity matrix that dominates
/// clustering cost for large reference groups.
///
/// Determinism: chunk boundaries are a pure function of the pair count and
/// thread count; each pair's similarity is computed independently from the
/// immutable merger state; and [`Candidate`]'s total order (similarity,
/// then ids) makes the heap's pop sequence independent of insertion order.
/// A complete run therefore produces **bit-identical** output to
/// [`agglomerate_guarded`] at any thread count. The merge loop itself is
/// inherently sequential and runs on the calling thread.
///
/// Interruption: `guard` is charged once per chunk (with the chunk's pair
/// count) during seeding and per merge afterwards. If it trips during
/// seeding, pending chunks are abandoned and **no merges are applied** —
/// mirroring [`agglomerate_guarded`]'s all-singletons degradation — because
/// an incomplete candidate set no longer guarantees best-first merge order.
/// The returned [`exec::ParStats`] describes the seeding stage (the merge
/// loop's time is the caller's to measure).
pub fn agglomerate_exec<M: Merger + Sync>(
    n: usize,
    merger: &mut M,
    min_sim: f64,
    executor: &exec::Executor,
    guard: &(dyn Fn(u64) -> bool + Sync),
) -> (PartialClustering, exec::ParStats) {
    let mut dendrogram = Dendrogram::new(n);
    if n == 0 {
        return (
            PartialClustering {
                clustering: Clustering {
                    labels: Vec::new(),
                    dendrogram,
                },
                completed: true,
            },
            exec::ParStats {
                threads: 1,
                ..Default::default()
            },
        );
    }

    let total = exec::triangle_count(n);
    let tripped = AtomicBool::new(false);
    let m: &M = &*merger;
    let (chunks, mut stats) = executor.par_chunks(
        total,
        |range: Range<usize>| -> Option<Vec<Candidate>> {
            if !guard(range.len() as u64) {
                tripped.store(true, atomic::Ordering::Relaxed);
                return None;
            }
            let mut local = Vec::new();
            for k in range {
                let (a, b) = exec::triangle_pair(n, k);
                let sim = m.similarity(a, b);
                if !sim.is_nan() && sim >= min_sim {
                    local.push(Candidate { sim, a, b });
                }
            }
            Some(local)
        },
        || tripped.load(atomic::Ordering::Relaxed),
    );

    // A chunk whose guard charge was refused produced nothing: report it as
    // not covered and treat the whole seeding stage as stopped.
    stats.stopped = stats.stopped || tripped.load(atomic::Ordering::Relaxed);
    stats.completed = chunks
        .iter()
        .filter(|(_, v)| v.is_some())
        .map(|(r, _)| r.len())
        .sum();

    let mut completed = !stats.stopped;
    if completed {
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
        for (_, local) in chunks {
            // distinct-lint: allow(D002, D101, reason="stats.stopped was checked above; a complete run leaves every chunk Some by the exec pool contract")
            heap.extend(local.expect("complete seeding has no refused chunks"));
        }
        let mut g = |units: u64| guard(units);
        completed = merge_down(n, merger, min_sim, &mut heap, &mut dendrogram, &mut g);
    }

    let labels = dendrogram.cut(f64::NEG_INFINITY);
    (
        PartialClustering {
            clustering: Clustering { labels, dendrogram },
            completed,
        },
        stats,
    )
}

/// A [`Merger`] over a precomputed pairwise similarity matrix with a
/// classic [`Linkage`] rule — the textbook algorithm, used directly by the
/// ablation experiments and as the reference implementation in tests.
#[derive(Debug, Clone)]
pub struct MatrixMerger {
    /// Similarities indexed by cluster id pairs; grows as merges happen.
    sims: Vec<Vec<f64>>,
    sizes: Vec<usize>,
    linkage: Linkage,
    n: usize,
}

impl MatrixMerger {
    /// Build from a symmetric `n × n` similarity matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    // distinct-lint: allow(D005, reason="O(n) squareness validation at construction; agglomerate charges the budget per merge")
    pub fn new(matrix: Vec<Vec<f64>>, linkage: Linkage) -> Self {
        let n = matrix.len();
        for row in &matrix {
            assert_eq!(row.len(), n, "similarity matrix must be square");
        }
        MatrixMerger {
            sims: matrix,
            sizes: vec![1; n],
            linkage,
            n,
        }
    }

    /// Number of initial items.
    pub fn items(&self) -> usize {
        self.n
    }
}

impl Merger for MatrixMerger {
    fn similarity(&self, a: usize, b: usize) -> f64 {
        self.sims[a][b]
    }

    // distinct-lint: allow(D005, reason="Merger callback doing O(live clusters) work; merge_down charges the budget once per merge")
    fn merged(&mut self, a: usize, b: usize, into: usize, size_a: usize, size_b: usize) {
        debug_assert_eq!(into, self.sims.len());
        // Row/column for the new cluster, combined per the linkage rule.
        let mut row: Vec<f64> = Vec::with_capacity(into + 1);
        for c in 0..into {
            row.push(
                self.linkage
                    .combine(self.sims[a][c], self.sims[b][c], size_a, size_b),
            );
        }
        row.push(1.0); // self-similarity, never queried
        for (c, &s) in row.iter().enumerate().take(into) {
            self.sims[c].push(s);
        }
        self.sims.push(row);
        self.sizes.push(size_a + size_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three tight pairs: (0,1), (2,3), (4,5); weak links across.
    fn three_pairs() -> Vec<Vec<f64>> {
        let n = 6;
        let mut m = vec![vec![0.0; n]; n];
        let set = |m: &mut Vec<Vec<f64>>, i: usize, j: usize, v: f64| {
            m[i][j] = v;
            m[j][i] = v;
        };
        set(&mut m, 0, 1, 0.9);
        set(&mut m, 2, 3, 0.8);
        set(&mut m, 4, 5, 0.85);
        set(&mut m, 1, 2, 0.1);
        set(&mut m, 3, 4, 0.05);
        m
    }

    #[test]
    fn min_sim_controls_granularity() {
        let mut merger = MatrixMerger::new(three_pairs(), Linkage::Average);
        let c = agglomerate(6, &mut merger, 0.5);
        assert_eq!(c.cluster_count(), 3);
        let g = c.groups();
        assert!(g.contains(&vec![0, 1]));
        assert!(g.contains(&vec![2, 3]));
        assert!(g.contains(&vec![4, 5]));
    }

    #[test]
    fn zero_min_sim_merges_connected_components() {
        // min_sim 0.0 still requires positive similarity? No: >= 0 merges
        // everything with sim >= 0, i.e. all pairs here.
        let mut merger = MatrixMerger::new(three_pairs(), Linkage::Single);
        let c = agglomerate(6, &mut merger, 0.01);
        // Single-link chains: 0-1-2-3-4-5 all connected via 0.1 and 0.05.
        assert_eq!(c.cluster_count(), 1);
    }

    #[test]
    fn high_min_sim_keeps_singletons() {
        let mut merger = MatrixMerger::new(three_pairs(), Linkage::Average);
        let c = agglomerate(6, &mut merger, 0.95);
        assert_eq!(c.cluster_count(), 6);
        assert!(c.dendrogram.merges().is_empty());
    }

    #[test]
    fn merge_order_is_by_decreasing_similarity() {
        let mut merger = MatrixMerger::new(three_pairs(), Linkage::Average);
        let c = agglomerate(6, &mut merger, 0.5);
        let sims: Vec<f64> = c.dendrogram.merges().iter().map(|m| m.similarity).collect();
        assert_eq!(sims, vec![0.9, 0.85, 0.8]);
    }

    #[test]
    fn complete_link_resists_chaining() {
        // Chain 0-1-2 with strong consecutive links but zero 0-2 link.
        let mut m = vec![vec![0.0; 3]; 3];
        m[0][1] = 0.9;
        m[1][0] = 0.9;
        m[1][2] = 0.8;
        m[2][1] = 0.8;
        // Complete link: after (0,1) merge, sim to 2 is min(0, 0.8) = 0.
        let mut merger = MatrixMerger::new(m.clone(), Linkage::Complete);
        let c = agglomerate(3, &mut merger, 0.1);
        assert_eq!(c.cluster_count(), 2);
        // Single link: chain collapses into one cluster.
        let mut merger = MatrixMerger::new(m, Linkage::Single);
        let c = agglomerate(3, &mut merger, 0.1);
        assert_eq!(c.cluster_count(), 1);
    }

    #[test]
    fn average_link_matches_brute_force() {
        // Compare engine's average-link result against a brute-force
        // implementation on a random-ish fixed matrix.
        let n = 8;
        let mut m = vec![vec![0.0; n]; n];
        let mut v = 0.13f64;
        for i in 0..n {
            for j in (i + 1)..n {
                v = (v * 7.7).fract();
                m[i][j] = v;
                m[j][i] = v;
            }
        }
        let min_sim = 0.4;
        let mut merger = MatrixMerger::new(m.clone(), Linkage::Average);
        let got = agglomerate(n, &mut merger, min_sim);

        // Brute force: repeatedly find best pair by average pairwise sim.
        let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        loop {
            let mut best = (f64::NEG_INFINITY, 0, 0);
            for i in 0..clusters.len() {
                for j in (i + 1)..clusters.len() {
                    let mut s = 0.0;
                    for &x in &clusters[i] {
                        for &y in &clusters[j] {
                            s += m[x][y];
                        }
                    }
                    s /= (clusters[i].len() * clusters[j].len()) as f64;
                    if s > best.0 {
                        best = (s, i, j);
                    }
                }
            }
            if best.0 < min_sim || clusters.len() < 2 {
                break;
            }
            let merged_b = clusters.remove(best.2);
            clusters[best.1].extend(merged_b);
        }
        let mut expected: Vec<Vec<usize>> = clusters
            .into_iter()
            .map(|mut c| {
                c.sort_unstable();
                c
            })
            .collect();
        expected.sort();
        let mut actual: Vec<Vec<usize>> = got
            .groups()
            .into_iter()
            .map(|mut c| {
                c.sort_unstable();
                c
            })
            .collect();
        actual.sort();
        assert_eq!(actual, expected);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let mut merger = MatrixMerger::new(vec![], Linkage::Average);
        let c = agglomerate(0, &mut merger, 0.5);
        assert_eq!(c.cluster_count(), 0);
        assert!(c.labels.is_empty());

        let mut merger = MatrixMerger::new(vec![vec![1.0]], Linkage::Average);
        let c = agglomerate(1, &mut merger, 0.5);
        assert_eq!(c.labels, vec![0]);
        assert_eq!(c.cluster_count(), 1);
    }

    #[test]
    fn nan_similarity_means_no_merge() {
        let m = vec![vec![0.0, f64::NAN], vec![f64::NAN, 0.0]];
        let mut merger = MatrixMerger::new(m, Linkage::Average);
        let c = agglomerate(2, &mut merger, 0.0);
        assert_eq!(c.cluster_count(), 2);
    }

    #[test]
    fn guarded_run_with_permissive_guard_matches_unguarded() {
        let mut merger = MatrixMerger::new(three_pairs(), Linkage::Average);
        let full = agglomerate(6, &mut merger, 0.5);
        let mut merger = MatrixMerger::new(three_pairs(), Linkage::Average);
        let guarded = agglomerate_guarded(6, &mut merger, 0.5, &mut |_| true);
        assert!(guarded.completed);
        assert_eq!(guarded.clustering.labels, full.labels);
    }

    #[test]
    fn guard_tripped_during_seeding_yields_singletons() {
        let mut merger = MatrixMerger::new(three_pairs(), Linkage::Average);
        let mut calls = 0u32;
        let out = agglomerate_guarded(6, &mut merger, 0.5, &mut |_| {
            calls += 1;
            calls <= 1
        });
        assert!(!out.completed);
        assert_eq!(out.clustering.cluster_count(), 6, "no merges applied");
    }

    #[test]
    fn guard_tripped_mid_merge_keeps_strongest_merges() {
        // Budget admits seeding (6 rows) plus exactly one merge: the
        // strongest pair (0,1) at 0.9 merges, the rest stay singletons.
        let mut merger = MatrixMerger::new(three_pairs(), Linkage::Average);
        let mut checks = 0u32;
        let out = agglomerate_guarded(6, &mut merger, 0.5, &mut |_| {
            checks += 1;
            checks <= 7
        });
        assert!(!out.completed);
        let merges = out.clustering.dendrogram.merges();
        assert_eq!(merges.len(), 1);
        assert_eq!(merges[0].similarity, 0.9);
        assert_eq!(out.clustering.cluster_count(), 5);
        // Labels still partition every item.
        assert_eq!(out.clustering.labels.len(), 6);
    }

    #[test]
    fn guarded_merge_prefix_property() {
        // However early the guard trips, the merges performed are a prefix
        // of the full run's merge sequence.
        let mut merger = MatrixMerger::new(three_pairs(), Linkage::Average);
        let full: Vec<f64> = agglomerate(6, &mut merger, 0.5)
            .dendrogram
            .merges()
            .iter()
            .map(|m| m.similarity)
            .collect();
        for budget in 0..12u32 {
            let mut merger = MatrixMerger::new(three_pairs(), Linkage::Average);
            let mut checks = 0u32;
            let out = agglomerate_guarded(6, &mut merger, 0.5, &mut |_| {
                checks += 1;
                checks <= budget
            });
            let got: Vec<f64> = out
                .clustering
                .dendrogram
                .merges()
                .iter()
                .map(|m| m.similarity)
                .collect();
            assert!(
                full.starts_with(&got),
                "budget {budget}: {got:?} not a prefix of {full:?}"
            );
        }
    }

    #[test]
    fn exec_seeding_matches_sequential_at_any_thread_count() {
        // Larger pseudo-random matrix so multiple chunks actually form.
        let n = 40;
        let mut m = vec![vec![0.0; n]; n];
        let mut v = 0.37f64;
        for i in 0..n {
            for j in (i + 1)..n {
                v = (v * 9.9).fract();
                m[i][j] = v;
                m[j][i] = v;
            }
        }
        let mut reference = MatrixMerger::new(m.clone(), Linkage::Average);
        let expected = agglomerate(n, &mut reference, 0.5);
        for threads in [1usize, 2, 3, 8] {
            let mut merger = MatrixMerger::new(m.clone(), Linkage::Average);
            let (out, stats) = agglomerate_exec(
                n,
                &mut merger,
                0.5,
                &exec::Executor::with_threads(threads),
                &|_| true,
            );
            assert!(out.completed, "threads={threads}");
            assert!(!stats.stopped);
            assert_eq!(stats.tasks, n * (n - 1) / 2);
            assert_eq!(stats.completed, stats.tasks);
            assert_eq!(out.clustering.labels, expected.labels, "threads={threads}");
            let sims: Vec<f64> = out
                .clustering
                .dendrogram
                .merges()
                .iter()
                .map(|mg| mg.similarity)
                .collect();
            let want: Vec<f64> = expected
                .dendrogram
                .merges()
                .iter()
                .map(|mg| mg.similarity)
                .collect();
            assert_eq!(sims, want, "threads={threads}");
        }
    }

    #[test]
    fn exec_guard_trip_during_seeding_yields_singletons() {
        for threads in [1usize, 4] {
            let mut merger = MatrixMerger::new(three_pairs(), Linkage::Average);
            let (out, stats) = agglomerate_exec(
                6,
                &mut merger,
                0.5,
                &exec::Executor::with_threads(threads),
                &|_| false, // budget already exhausted
            );
            assert!(!out.completed, "threads={threads}");
            assert!(stats.stopped);
            assert_eq!(out.clustering.cluster_count(), 6, "no merges applied");
            assert_eq!(out.clustering.labels.len(), 6);
        }
    }

    #[test]
    fn exec_empty_and_tiny_inputs() {
        let ex = exec::Executor::with_threads(4);
        let mut merger = MatrixMerger::new(vec![], Linkage::Average);
        let (out, stats) = agglomerate_exec(0, &mut merger, 0.5, &ex, &|_| true);
        assert!(out.completed);
        assert!(out.clustering.labels.is_empty());
        assert_eq!(stats.tasks, 0);

        let mut merger = MatrixMerger::new(vec![vec![1.0]], Linkage::Average);
        let (out, _) = agglomerate_exec(1, &mut merger, 0.5, &ex, &|_| true);
        assert!(out.completed);
        assert_eq!(out.clustering.labels, vec![0]);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two identical-similarity pairs: results must be stable across runs.
        let mut m = vec![vec![0.0; 4]; 4];
        m[0][1] = 0.5;
        m[1][0] = 0.5;
        m[2][3] = 0.5;
        m[3][2] = 0.5;
        let run = || {
            let mut merger = MatrixMerger::new(m.clone(), Linkage::Average);
            agglomerate(4, &mut merger, 0.4).labels
        };
        assert_eq!(run(), run());
    }
}

//! Sharded profile cache.
//!
//! Profile construction is the pipeline's dominant cost, so computed
//! profiles are cached per engine. With the parallel fan-out
//! ([`crate::pipeline::Distinct::resolve`]) many workers hit the cache
//! concurrently; a single mutex would serialize them, so entries are
//! spread over fixed shards keyed by a hash of the reference. Work lists
//! are deduplicated *before* the fan-out, so within one call no reference
//! is ever computed twice; the shards only arbitrate concurrent calls,
//! where `insert` keeps the first entry (both candidates are
//! bit-identical — profile construction is deterministic).
//!
//! Placeholder profiles ([`crate::features::empty_profile`]) are refused:
//! caching one would make a later, unrestricted run silently reuse a
//! zero-mass profile instead of recomputing the real one.

use crate::features::Profile;
use parking_lot::Mutex;
use relstore::{FxHashMap, TupleRef};
use std::sync::Arc;

/// Shard count: a small power of two comfortably above any realistic
/// worker count, so concurrent inserts rarely contend.
const SHARDS: usize = 16;

/// A concurrent map from references to their (immutable) profiles.
#[derive(Debug)]
pub(crate) struct ProfileCache {
    // distinct-lint: shared(first-insert-wins: a profile is a pure function of its tuple, so racing builders insert bit-identical values)
    shards: Vec<Mutex<FxHashMap<TupleRef, Arc<Profile>>>>,
}

impl ProfileCache {
    /// An empty cache with all shards unlocked.
    pub fn new() -> Self {
        ProfileCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
        }
    }

    fn shard(&self, r: &TupleRef) -> &Mutex<FxHashMap<TupleRef, Arc<Profile>>> {
        let key = ((r.rel.0 as u64) << 32) | r.tid.0 as u64;
        // Fibonacci hashing: spreads the sequential tuple ids the store
        // hands out evenly over the shards.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h as usize) % SHARDS]
    }

    /// The cached profile for `r`, if one has been inserted.
    pub fn get(&self, r: &TupleRef) -> Option<Arc<Profile>> {
        self.shard(r).lock().get(r).map(Arc::clone)
    }

    /// Whether a profile for `r` is already cached.
    pub fn contains(&self, r: &TupleRef) -> bool {
        self.shard(r).lock().contains_key(r)
    }

    /// Insert a computed profile, keeping any entry that won a concurrent
    /// race (the values are identical). Placeholders are silently dropped.
    pub fn insert(&self, r: TupleRef, p: Arc<Profile>) {
        debug_assert!(!p.placeholder, "placeholder profile offered to the cache");
        if p.placeholder {
            return;
        }
        self.shard(&r).lock().entry(r).or_insert(p);
    }

    /// Total number of cached profiles across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// All entries, in unspecified order (checkpointing sorts them).
    pub fn snapshot(&self) -> Vec<(TupleRef, Arc<Profile>)> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .iter()
                    .map(|(&r, p)| (r, Arc::clone(p)))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Drop every cached profile, releasing the memory (the `Arc`s may
    /// keep individual profiles alive while in use elsewhere). Used by the
    /// run manager's memory-budget guard: evicting is always safe —
    /// profiles are pure caches of deterministic computation, so a later
    /// run recomputes bit-identical values.
    pub fn evict_all(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Drop exactly the given references' profiles, keeping the rest warm.
    /// Used by incremental updates: only references whose neighborhoods an
    /// update touched need recomputation, everything else stays cached.
    pub fn evict(&self, refs: &[TupleRef]) {
        for r in refs {
            self.shard(r).lock().remove(r);
        }
    }

    /// Replace the whole cache (checkpoint restore).
    pub fn replace(&self, entries: Vec<(TupleRef, Arc<Profile>)>) {
        for shard in &self.shards {
            shard.lock().clear();
        }
        for (r, p) in entries {
            self.insert(r, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{RelId, TupleId};

    fn fake_profile(tid: u32, placeholder: bool) -> (TupleRef, Arc<Profile>) {
        let r = TupleRef::new(RelId(0), TupleId(tid));
        (
            r,
            Arc::new(Profile {
                reference: r,
                props: Vec::new(),
                sets: Vec::new(),
                placeholder,
            }),
        )
    }

    #[test]
    fn insert_get_len_round_trip() {
        let cache = ProfileCache::new();
        assert_eq!(cache.len(), 0);
        for tid in 0..100 {
            let (r, p) = fake_profile(tid, false);
            cache.insert(r, p);
        }
        assert_eq!(cache.len(), 100);
        for tid in 0..100 {
            let r = TupleRef::new(RelId(0), TupleId(tid));
            assert!(cache.contains(&r));
            assert_eq!(cache.get(&r).unwrap().reference, r);
        }
        assert_eq!(cache.snapshot().len(), 100);
    }

    #[test]
    fn first_insert_wins_a_race() {
        let cache = ProfileCache::new();
        let (r, p1) = fake_profile(7, false);
        let (_, p2) = fake_profile(7, false);
        cache.insert(r, Arc::clone(&p1));
        cache.insert(r, p2);
        assert!(Arc::ptr_eq(&cache.get(&r).unwrap(), &p1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "placeholder"))]
    fn placeholders_never_enter_the_cache() {
        let cache = ProfileCache::new();
        let (r, p) = fake_profile(3, true);
        cache.insert(r, p);
        // Release builds skip the debug assertion but still drop the entry.
        assert_eq!(cache.len(), 0);
        assert!(cache.get(&r).is_none());
    }

    #[test]
    fn evict_all_empties_every_shard_but_keeps_live_arcs_valid() {
        let cache = ProfileCache::new();
        let (r, p) = fake_profile(42, false);
        cache.insert(r, Arc::clone(&p));
        for tid in 0..50 {
            let (r, p) = fake_profile(tid, false);
            cache.insert(r, p);
        }
        let held = cache.get(&r).unwrap();
        cache.evict_all();
        assert_eq!(cache.len(), 0);
        assert!(cache.get(&r).is_none());
        // The evicted entry stays usable through outstanding handles.
        assert_eq!(held.reference, r);
    }

    #[test]
    fn evict_drops_only_the_named_references() {
        let cache = ProfileCache::new();
        for tid in 0..20 {
            let (r, p) = fake_profile(tid, false);
            cache.insert(r, p);
        }
        let gone: Vec<TupleRef> = [3u32, 7, 19]
            .iter()
            .map(|&tid| TupleRef::new(RelId(0), TupleId(tid)))
            .collect();
        cache.evict(&gone);
        assert_eq!(cache.len(), 17);
        for r in &gone {
            assert!(!cache.contains(r));
        }
        assert!(cache.contains(&TupleRef::new(RelId(0), TupleId(4))));
        // Evicting a missing reference is a no-op.
        cache.evict(&gone);
        assert_eq!(cache.len(), 17);
    }

    #[test]
    fn replace_installs_exactly_the_given_entries() {
        let cache = ProfileCache::new();
        for tid in 0..10 {
            let (r, p) = fake_profile(tid, false);
            cache.insert(r, p);
        }
        let fresh: Vec<_> = (100..103).map(|tid| fake_profile(tid, false)).collect();
        cache.replace(fresh);
        assert_eq!(cache.len(), 3);
        assert!(cache.get(&TupleRef::new(RelId(0), TupleId(5))).is_none());
        assert!(cache.contains(&TupleRef::new(RelId(0), TupleId(101))));
    }
}

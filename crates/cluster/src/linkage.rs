//! Classic linkage rules for similarity-based agglomerative clustering.
//!
//! Expressed as Lance–Williams-style updates on *similarities* (not
//! distances): when clusters `a` (size `na`) and `b` (size `nb`) merge,
//! the similarity of the merged cluster to any other cluster `c` is a
//! function of `sim(a, c)` and `sim(b, c)`.

use serde::{Deserialize, Serialize};

/// Linkage rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Linkage {
    /// Similarity of the closest pair: `max(s_ac, s_bc)`.
    Single,
    /// Similarity of the farthest pair: `min(s_ac, s_bc)`.
    Complete,
    /// Size-weighted mean pairwise similarity (UPGMA):
    /// `(na·s_ac + nb·s_bc) / (na + nb)`.
    Average,
}

impl Linkage {
    /// Combine the similarities of two merged clusters toward a third.
    pub fn combine(self, s_ac: f64, s_bc: f64, na: usize, nb: usize) -> f64 {
        match self {
            Linkage::Single => s_ac.max(s_bc),
            Linkage::Complete => s_ac.min(s_bc),
            Linkage::Average => {
                let (na, nb) = (na as f64, nb as f64);
                (na * s_ac + nb * s_bc) / (na + nb)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_takes_max() {
        assert_eq!(Linkage::Single.combine(0.2, 0.8, 3, 1), 0.8);
    }

    #[test]
    fn complete_takes_min() {
        assert_eq!(Linkage::Complete.combine(0.2, 0.8, 3, 1), 0.2);
    }

    #[test]
    fn average_is_size_weighted() {
        // (3*0.2 + 1*0.8) / 4 = 0.35
        assert!((Linkage::Average.combine(0.2, 0.8, 3, 1) - 0.35).abs() < 1e-12);
        // Equal sizes -> arithmetic mean.
        assert!((Linkage::Average.combine(0.2, 0.8, 2, 2) - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn combined_similarity_is_between_inputs(
            a in 0.0f64..1.0, b in 0.0f64..1.0,
            na in 1usize..100, nb in 1usize..100,
        ) {
            for l in [Linkage::Single, Linkage::Complete, Linkage::Average] {
                let s = l.combine(a, b, na, nb);
                prop_assert!(s >= a.min(b) - 1e-12 && s <= a.max(b) + 1e-12);
            }
        }

        #[test]
        fn single_dominates_average_dominates_complete(
            a in 0.0f64..1.0, b in 0.0f64..1.0,
            na in 1usize..100, nb in 1usize..100,
        ) {
            let s = Linkage::Single.combine(a, b, na, nb);
            let m = Linkage::Average.combine(a, b, na, nb);
            let c = Linkage::Complete.combine(a, b, na, nb);
            prop_assert!(s >= m - 1e-12);
            prop_assert!(m >= c - 1e-12);
        }
    }
}

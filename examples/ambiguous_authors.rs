//! The paper's motivating scenario: a DBLP-style bibliography where one
//! author string ("Wei Wang") covers many real people. Generates the
//! standard synthetic world, trains the full supervised pipeline, and
//! prints the resolution of every planted name with its mistakes.
//!
//! Run: `cargo run --release --example ambiguous_authors`

use datagen::{to_catalog, World, WorldConfig};
use distinct::{render_name_report, Distinct, DistinctConfig};
use eval::PairCounts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-sized world with three planted names of varying difficulty.
    let mut config = WorldConfig::default();
    config.ambiguous = vec![
        datagen::AmbiguousSpec::new("Wei Wang", vec![30, 20, 12, 8, 5, 3]),
        datagen::AmbiguousSpec::new("Bing Liu", vec![25, 10, 4]),
        datagen::AmbiguousSpec::new("Hui Fang", vec![6, 5]),
    ];
    let world = World::generate(config);
    let dataset = to_catalog(&world)?;
    println!(
        "world: {} authors, {} papers, {} references",
        dataset.catalog.relation(dataset.authors).len(),
        dataset
            .catalog
            .relation(dataset.catalog.relation_id("Publications").unwrap())
            .len(),
        dataset.catalog.relation(dataset.publish).len(),
    );

    // Full DISTINCT: automatic training set, SVM path weights, composite
    // clustering at the calibrated threshold.
    let mut engine = Distinct::prepare(
        &dataset.catalog,
        "Publish",
        "author",
        DistinctConfig::default(),
    )?;
    let report = engine.train()?;
    println!(
        "trained on {} unique names ({} + {} pairs); top join paths by learned weight:",
        report.unique_names, report.positives, report.negatives
    );
    let mut ranked = report.path_weights.clone();
    ranked.sort_by(|a, b| (b.1 + b.2).total_cmp(&(a.1 + a.2)));
    for (desc, r, w) in ranked.iter().take(5) {
        println!("  resem {r:.3}  walk {w:.3}  {desc}");
    }
    println!();

    for truth in &dataset.truths {
        let clustering = engine
            .resolve(&distinct::ResolveRequest::new(&truth.refs))
            .clustering;
        let counts = PairCounts::from_labels(&truth.labels, &clustering.labels);
        let s = counts.scores();
        println!(
            "{}: {} refs, {} true entities -> {} groups (p {:.3}, r {:.3}, f {:.3})",
            truth.name,
            truth.refs.len(),
            truth.entity_count(),
            clustering.cluster_count(),
            s.precision,
            s.recall,
            s.f_measure
        );
    }

    // Detailed report for the hardest name.
    let wei = &dataset.truths[0];
    let clustering = engine
        .resolve(&distinct::ResolveRequest::new(&wei.refs))
        .clustering;
    println!(
        "\n{}",
        render_name_report(&wei.name, &wei.labels, &clustering.labels, None)
    );
    Ok(())
}

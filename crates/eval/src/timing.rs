//! Lightweight phase timing for the experiment harness (the paper reports
//! wall-clock for training-set construction + SVM learning: 62.1 s at DBLP
//! scale).

use std::time::{Duration, Instant};

/// Records named phases with wall-clock durations.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimer {
    phases: Vec<(String, Duration)>,
}

impl PhaseTimer {
    /// A fresh timer.
    pub fn new() -> Self {
        PhaseTimer::default()
    }

    /// Time a closure as a named phase, returning its output.
    pub fn time<T>(&mut self, name: impl Into<String>, f: impl FnOnce() -> T) -> T {
        // distinct-lint: allow(D004, reason="PhaseTimer exists to report wall time; it never drives control flow")
        let start = Instant::now();
        let out = f();
        self.phases.push((name.into(), start.elapsed()));
        out
    }

    /// Record a duration measured elsewhere.
    pub fn record(&mut self, name: impl Into<String>, d: Duration) {
        self.phases.push((name.into(), d));
    }

    /// All recorded phases, in order.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// Total of all phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Duration of a named phase (first match).
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    /// Render as `name: seconds` lines.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for (name, d) in &self.phases {
            out.push_str(&format!("{name}: {:.3} s\n", d.as_secs_f64()));
        }
        out.push_str(&format!("total: {:.3} s\n", self.total().as_secs_f64()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_phase_and_returns_output() {
        let mut t = PhaseTimer::new();
        let v = t.time("phase-a", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(t.phases().len(), 1);
        assert!(t.get("phase-a").is_some());
        assert!(t.get("missing").is_none());
    }

    #[test]
    fn record_and_total() {
        let mut t = PhaseTimer::new();
        t.record("x", Duration::from_millis(10));
        t.record("y", Duration::from_millis(20));
        assert_eq!(t.total(), Duration::from_millis(30));
    }

    #[test]
    fn report_contains_all_phases() {
        let mut t = PhaseTimer::new();
        t.record("build", Duration::from_millis(5));
        t.record("train", Duration::from_millis(7));
        let r = t.report();
        assert!(r.contains("build:"));
        assert!(r.contains("train:"));
        assert!(r.contains("total:"));
    }
}

//! Pegasos: primal estimated sub-gradient solver for the linear SVM
//! (Shalev-Shwartz et al.), used as a fast cross-check of the SMO solver —
//! both optimize the same objective, so their models must agree in sign
//! structure on well-separated data.

use crate::data::{Dataset, Result, SvmError};
use crate::model::LinearModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyperparameters for Pegasos.
#[derive(Debug, Clone)]
pub struct PegasosConfig {
    /// Regularization strength λ (> 0). Roughly `1 / (C · n)`.
    pub lambda: f64,
    /// Number of stochastic iterations.
    pub iterations: usize,
    /// RNG seed for sample selection.
    pub seed: u64,
    /// Average the iterates of the final half of training (reduces variance).
    pub average: bool,
}

impl Default for PegasosConfig {
    fn default() -> Self {
        PegasosConfig {
            lambda: 1e-3,
            iterations: 50_000,
            seed: 7,
            average: true,
        }
    }
}

/// Train a linear SVM with Pegasos SGD.
///
/// The bias is learned via feature augmentation (an implicit constant-1
/// feature, unregularized in effect because λ is small).
pub fn train_pegasos(data: &Dataset, cfg: &PegasosConfig) -> Result<LinearModel> {
    if cfg.lambda <= 0.0 {
        return Err(SvmError::BadParameter {
            name: "lambda",
            reason: "must be > 0".into(),
        });
    }
    if cfg.iterations == 0 {
        return Err(SvmError::BadParameter {
            name: "iterations",
            reason: "must be >= 1".into(),
        });
    }
    data.require_both_classes()?;

    let n = data.len();
    let dim = data.dim();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut w = vec![0.0f64; dim];
    let mut b = 0.0f64;
    let mut w_avg = vec![0.0f64; dim];
    let mut b_avg = 0.0f64;
    let avg_start = cfg.iterations / 2;
    let mut avg_count = 0usize;

    for t in 1..=cfg.iterations {
        let i = rng.gen_range(0..n);
        let (x, y) = (data.x(i), data.y(i));
        let eta = 1.0 / (cfg.lambda * t as f64);
        let margin = y * (crate::data::dot(&w, x) + b);
        let shrink = 1.0 - eta * cfg.lambda;
        for wj in w.iter_mut() {
            *wj *= shrink;
        }
        // The bias is treated as an augmented constant feature: shrinking it
        // with w keeps the early steps (η = 1/(λt) is huge at t = 1) from
        // launching b far from the optimum.
        b *= shrink;
        if margin < 1.0 {
            for (wj, &xj) in w.iter_mut().zip(x) {
                *wj += eta * y * xj;
            }
            b += eta * y;
        }
        if cfg.average && t > avg_start {
            for (aj, &wj) in w_avg.iter_mut().zip(&w) {
                *aj += wj;
            }
            b_avg += b;
            avg_count += 1;
        }
    }

    if cfg.average && avg_count > 0 {
        let inv = 1.0 / avg_count as f64;
        for aj in w_avg.iter_mut() {
            *aj *= inv;
        }
        Ok(LinearModel {
            weights: w_avg,
            bias: b_avg * inv,
        })
    } else {
        Ok(LinearModel {
            weights: w,
            bias: b,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use crate::smo::{train_smo, SmoConfig};

    fn blobs(n_per: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n_per {
            d.push(
                vec![
                    1.5 + rng.gen_range(-0.5..0.5),
                    1.5 + rng.gen_range(-0.5..0.5),
                ],
                1.0,
            )
            .unwrap();
            d.push(
                vec![
                    -1.5 + rng.gen_range(-0.5..0.5),
                    -1.5 + rng.gen_range(-0.5..0.5),
                ],
                -1.0,
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn separable_blobs_reach_full_accuracy() {
        let d = blobs(50, 1);
        let m = train_pegasos(&d, &PegasosConfig::default()).unwrap();
        assert_eq!(m.accuracy(&d), 1.0);
    }

    #[test]
    fn agrees_with_smo_in_direction() {
        let d = blobs(40, 2);
        let p = train_pegasos(&d, &PegasosConfig::default()).unwrap();
        let s = train_smo(&d, Kernel::Linear, &SmoConfig::default())
            .unwrap()
            .to_linear()
            .unwrap();
        // Cosine similarity of the weight vectors should be high.
        let dotp = crate::data::dot(&p.weights, &s.weights);
        let cos = dotp / (p.weight_norm() * s.weight_norm());
        assert!(
            cos > 0.95,
            "cosine {cos}, pegasos {:?}, smo {:?}",
            p.weights,
            s.weights
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = blobs(20, 3);
        let m1 = train_pegasos(&d, &PegasosConfig::default()).unwrap();
        let m2 = train_pegasos(&d, &PegasosConfig::default()).unwrap();
        assert_eq!(m1.weights, m2.weights);
        assert_eq!(m1.bias, m2.bias);
    }

    #[test]
    fn unaveraged_variant_also_learns() {
        let d = blobs(40, 4);
        let m = train_pegasos(
            &d,
            &PegasosConfig {
                average: false,
                iterations: 30_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(m.accuracy(&d) > 0.95);
    }

    #[test]
    fn informative_feature_dominates_noise() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut d = Dataset::new();
        for _ in 0..80 {
            d.push(
                vec![1.0 + rng.gen_range(-0.3..0.3), rng.gen_range(-1.0..1.0)],
                1.0,
            )
            .unwrap();
            d.push(
                vec![-1.0 + rng.gen_range(-0.3..0.3), rng.gen_range(-1.0..1.0)],
                -1.0,
            )
            .unwrap();
        }
        let m = train_pegasos(&d, &PegasosConfig::default()).unwrap();
        assert!(m.weights[0] > 3.0 * m.weights[1].abs(), "{:?}", m.weights);
    }

    #[test]
    fn parameter_validation() {
        let d = blobs(5, 6);
        assert!(train_pegasos(
            &d,
            &PegasosConfig {
                lambda: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(train_pegasos(
            &d,
            &PegasosConfig {
                iterations: 0,
                ..Default::default()
            }
        )
        .is_err());
        let single = Dataset::from_parts(vec![vec![1.0]], vec![1.0]).unwrap();
        assert!(train_pegasos(&single, &PegasosConfig::default()).is_err());
    }
}

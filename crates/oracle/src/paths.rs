//! Join-path selection, restated independently of the production
//! `distinct::paths` module.
//!
//! DISTINCT analyzes every join path from the reference relation up to a
//! length bound, except paths whose *first* step follows the reference
//! attribute's own foreign key (that step reaches the tuple the name
//! itself identifies — shared by all resembling references by definition,
//! so it carries no distinguishing signal). The enumeration order is the
//! catalog's deterministic `enumerate_paths` order, which the production
//! `PathSet` also uses; a differential test pins the two selections to
//! each other so per-path weights stay aligned.

use relstore::{enumerate_paths, Catalog, Direction, FkId, JoinPath, PathEnumOptions};

/// Select the join paths for references held in `ref_relation.ref_attr`.
///
/// Returns the paths together with the reference foreign key (needed to
/// locate each reference's own name tuple for blocking), or `None` if the
/// relation/attribute cannot be resolved to a foreign key.
pub fn select_paths(
    catalog: &Catalog,
    ref_relation: &str,
    ref_attr: &str,
    max_len: usize,
) -> Option<(Vec<JoinPath>, FkId)> {
    let start = catalog.relation_id(ref_relation)?;
    let attr_idx = catalog.relation(start).schema().attr_index(ref_attr)?;
    let ref_fk = catalog
        .fk_edges()
        .iter()
        .find(|e| e.from == start && e.attr == attr_idx)?
        .id;
    let opts = PathEnumOptions {
        max_len,
        ..Default::default()
    };
    let paths = enumerate_paths(catalog, start, &opts)
        .into_iter()
        .filter(|p| {
            let first = &p.steps[0]; // distinct-lint: allow(D002, reason="enumerate_paths never yields an empty step list (paths grow from one step); test-only reference crate")
            !(first.fk == ref_fk && first.dir == Direction::Forward)
        })
        .collect();
    Some((paths, ref_fk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{AmbiguousSpec, World, WorldConfig};

    #[test]
    fn selection_excludes_identity_first_step() {
        let mut config = WorldConfig::tiny(3);
        config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![4, 3])];
        let d = datagen::to_catalog(&World::generate(config)).unwrap();
        let ex = relstore::expand_values(&d.catalog).unwrap();
        let (paths, ref_fk) = select_paths(&ex.catalog, "Publish", "author", 3).unwrap();
        assert!(!paths.is_empty());
        for p in &paths {
            let first = &p.steps[0];
            assert!(!(first.fk == ref_fk && first.dir == Direction::Forward));
        }
        assert!(select_paths(&ex.catalog, "Nope", "author", 3).is_none());
        assert!(select_paths(&ex.catalog, "Publish", "nope", 3).is_none());
    }
}

//! Clustering references with the composite similarity measure (paper §4).
//!
//! Cluster similarity combines, by geometric mean:
//!
//! * **average set resemblance** — Average-Link over the weighted per-pair
//!   resemblances (robust to individual misleading linkages); and
//! * **collective random walk probability** — the probability of walking
//!   from one cluster to the other, treating each cluster as a single
//!   object (robust to an author's weakly linked collaboration partitions).
//!
//! Both are maintained *incrementally* (§4.2): the tables hold pairwise
//! **sums**, so the values for a merged cluster are the sums of its
//! children's values — O(live clusters) per merge instead of a full
//! recomputation.

use crate::config::{CompositeMode, MeasureMode};
use crate::features::{directed_walk_features, resemblance_features, weighted_sum, Profile};
use crate::learn::PathWeights;
use cluster::Merger;
use std::borrow::Borrow;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};

/// A [`Merger`] implementing DISTINCT's composite cluster similarity.
#[derive(Debug, Clone)]
pub struct DistinctMerger {
    /// `resem[a][b]` = Σ over member pairs of weighted set resemblance
    /// (symmetric).
    resem: Vec<Vec<f64>>,
    /// `dwalk[a][b]` = Σ over member pairs of weighted *directed* walk
    /// probability from a member of `a` to a member of `b` (asymmetric).
    dwalk: Vec<Vec<f64>>,
    /// Cluster sizes (leaves = 1).
    sizes: Vec<usize>,
    measure: MeasureMode,
    composite: CompositeMode,
    n: usize,
}

impl DistinctMerger {
    /// Build the pairwise tables from reference profiles.
    pub fn from_profiles(
        profiles: &[Profile],
        weights: &PathWeights,
        measure: MeasureMode,
        composite: CompositeMode,
    ) -> Self {
        Self::from_profiles_exec(
            profiles,
            weights,
            measure,
            composite,
            &exec::Executor::sequential(),
            &|_| true,
        )
        .0
        // distinct-lint: allow(D002, reason="guard is the constant true closure above, so the build can never be refused")
        .expect("permissive guard never stops the matrix build")
    }

    /// Like [`DistinctMerger::from_profiles`], but computes the O(n²)
    /// pairwise feature tables **in parallel** over the flat upper-triangle
    /// pair index space — this is the similarity-matrix hot path of
    /// resolution. Each pair's features depend only on its two (immutable)
    /// profiles and every value lands in a fixed matrix cell, so the
    /// resulting tables are bit-identical for any thread count.
    ///
    /// `guard` is charged once per chunk with the chunk's pair count; if it
    /// trips, pending chunks are abandoned and `None` is returned — a
    /// partially filled matrix would silently bias the clustering toward
    /// whichever pairs happened to be computed. The [`exec::ParStats`]
    /// records how far the stage got either way.
    pub fn from_profiles_exec<P>(
        profiles: &[P],
        weights: &PathWeights,
        measure: MeasureMode,
        composite: CompositeMode,
        executor: &exec::Executor,
        guard: &(dyn Fn(u64) -> bool + Sync),
    ) -> (Option<Self>, exec::ParStats)
    where
        P: Borrow<Profile> + Sync,
    {
        let n = profiles.len();
        let total = exec::triangle_count(n);
        let tripped = AtomicBool::new(false);
        let (chunks, mut stats) = executor.par_chunks(
            total,
            |range: Range<usize>| -> Option<Vec<(f64, f64, f64)>> {
                if !guard(range.len() as u64) {
                    tripped.store(true, Ordering::Relaxed);
                    return None;
                }
                Some(
                    range
                        .map(|k| {
                            let (i, j) = exec::triangle_pair(n, k);
                            let (pi, pj) = (profiles[i].borrow(), profiles[j].borrow());
                            let r = weighted_sum(&resemblance_features(pi, pj), &weights.resem);
                            let dij = weighted_sum(&directed_walk_features(pi, pj), &weights.walk);
                            let dji = weighted_sum(&directed_walk_features(pj, pi), &weights.walk);
                            (r, dij, dji)
                        })
                        .collect(),
                )
            },
            || tripped.load(Ordering::Relaxed),
        );
        stats.stopped = stats.stopped || tripped.load(Ordering::Relaxed);
        stats.completed = chunks
            .iter()
            .filter(|(_, v)| v.is_some())
            .map(|(r, _)| r.len())
            .sum();
        if stats.stopped {
            return (None, stats);
        }
        let mut resem = vec![vec![0.0; n]; n];
        let mut dwalk = vec![vec![0.0; n]; n];
        for (range, vals) in chunks {
            // distinct-lint: allow(D002, D101, reason="stats.stopped was checked above; a complete run leaves every chunk Some by the exec pool contract")
            let vals = vals.expect("complete run has no refused chunks");
            for (k, (r, dij, dji)) in range.zip(vals) {
                let (i, j) = exec::triangle_pair(n, k);
                resem[i][j] = r;
                resem[j][i] = r;
                dwalk[i][j] = dij;
                dwalk[j][i] = dji;
            }
        }
        (
            Some(DistinctMerger {
                resem,
                dwalk,
                sizes: vec![1; n],
                measure,
                composite,
                n,
            }),
            stats,
        )
    }

    /// Number of leaf references.
    pub fn items(&self) -> usize {
        self.n
    }

    /// The leaf pairwise tables `(resemblance, directed walk)`, for the
    /// run manager's similarity-stage checkpoint. Only meaningful on a
    /// freshly built merger (before any merge extends the tables).
    pub(crate) fn to_tables(&self) -> (&[Vec<f64>], &[Vec<f64>]) {
        (&self.resem, &self.dwalk)
    }

    /// Rebuild a merger from checkpointed leaf tables. Inverse of
    /// [`DistinctMerger::to_tables`] — JSON round-trips `f64` exactly, so
    /// a merger restored this way clusters bit-identically to the one that
    /// was saved. Returns `None` when the tables are not square matrices
    /// of matching size.
    pub(crate) fn from_tables(
        resem: Vec<Vec<f64>>,
        dwalk: Vec<Vec<f64>>,
        measure: MeasureMode,
        composite: CompositeMode,
    ) -> Option<Self> {
        let n = resem.len();
        if dwalk.len() != n
            || resem.iter().any(|row| row.len() != n)
            || dwalk.iter().any(|row| row.len() != n)
        {
            return None;
        }
        Some(DistinctMerger {
            resem,
            dwalk,
            sizes: vec![1; n],
            measure,
            composite,
            n,
        })
    }

    /// The weighted resemblance between two leaf references (diagnostics).
    pub fn leaf_resemblance(&self, i: usize, j: usize) -> f64 {
        self.resem[i][j]
    }

    /// The symmetrized weighted walk probability between two leaves.
    pub fn leaf_walk(&self, i: usize, j: usize) -> f64 {
        0.5 * (self.dwalk[i][j] + self.dwalk[j][i])
    }

    /// Average-Link resemblance between clusters `a` and `b`.
    fn average_resemblance(&self, a: usize, b: usize) -> f64 {
        self.resem[a][b] / (self.sizes[a] * self.sizes[b]) as f64
    }

    /// Collective random walk probability between clusters: start at a
    /// uniformly random member of one cluster, land anywhere in the other;
    /// symmetrized by averaging both directions.
    fn collective_walk(&self, a: usize, b: usize) -> f64 {
        let a_to_b = self.dwalk[a][b] / self.sizes[a] as f64;
        let b_to_a = self.dwalk[b][a] / self.sizes[b] as f64;
        0.5 * (a_to_b + b_to_a)
    }
}

impl Merger for DistinctMerger {
    fn similarity(&self, a: usize, b: usize) -> f64 {
        match self.measure {
            MeasureMode::SetResemblance => self.average_resemblance(a, b),
            MeasureMode::RandomWalk => self.collective_walk(a, b),
            MeasureMode::Combined => {
                let r = self.average_resemblance(a, b);
                let w = self.collective_walk(a, b);
                match self.composite {
                    CompositeMode::Geometric => (r * w).sqrt(),
                    CompositeMode::Arithmetic => 0.5 * (r + w),
                }
            }
        }
    }

    // distinct-lint: allow(D005, reason="Merger callback doing O(live clusters) row sums; the clustering driver charges the budget once per merge")
    fn merged(&mut self, a: usize, b: usize, into: usize, size_a: usize, size_b: usize) {
        debug_assert_eq!(into, self.resem.len());
        let total = into + 1;
        // New resemblance row: plain sums.
        let mut r_row = Vec::with_capacity(total);
        for c in 0..into {
            r_row.push(self.resem[a][c] + self.resem[b][c]);
        }
        r_row.push(0.0); // self entry, never queried
        for (c, &v) in r_row.iter().enumerate().take(into) {
            self.resem[c].push(v);
        }
        self.resem.push(r_row);
        // New directed-walk row and column.
        let mut out_row = Vec::with_capacity(total); // into -> c
        for c in 0..into {
            out_row.push(self.dwalk[a][c] + self.dwalk[b][c]);
        }
        out_row.push(0.0);
        for c in 0..into {
            let incoming = self.dwalk[c][a] + self.dwalk[c][b]; // c -> into
            self.dwalk[c].push(incoming);
        }
        self.dwalk.push(out_row);
        self.sizes.push(size_a + size_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::agglomerate;
    use relgraph::{NodeId, Propagation, WeightedSet};
    use relstore::{FxHashMap, RelId, TupleId, TupleRef};

    /// Build a synthetic profile over one "path" whose forward map is given
    /// by (node, weight) pairs; backward mirrors forward (good enough for
    /// merger arithmetic tests).
    fn profile(idx: u32, pairs: &[(u32, f64)]) -> Profile {
        let mut fwd: FxHashMap<NodeId, f64> = FxHashMap::default();
        for &(n, w) in pairs {
            fwd.insert(NodeId(n), w);
        }
        let prop = Propagation {
            forward: fwd.clone(),
            backward: fwd.clone(),
        };
        Profile {
            reference: TupleRef::new(RelId(0), TupleId(idx)),
            sets: vec![WeightedSet::from_map(prop.forward.clone())],
            props: vec![prop],
            placeholder: false,
        }
    }

    fn weights() -> PathWeights {
        PathWeights {
            resem: vec![1.0],
            walk: vec![1.0],
        }
    }

    /// Two tight groups: {0,1} share node 1, {2,3} share node 2.
    fn two_groups() -> Vec<Profile> {
        vec![
            profile(0, &[(1, 1.0)]),
            profile(1, &[(1, 1.0)]),
            profile(2, &[(2, 1.0)]),
            profile(3, &[(2, 1.0)]),
        ]
    }

    #[test]
    fn leaf_similarities_reflect_shared_context() {
        let m = DistinctMerger::from_profiles(
            &two_groups(),
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        );
        assert_eq!(m.items(), 4);
        assert!((m.leaf_resemblance(0, 1) - 1.0).abs() < 1e-12);
        assert_eq!(m.leaf_resemblance(0, 2), 0.0);
        assert!(m.leaf_walk(0, 1) > 0.0);
        assert_eq!(m.leaf_walk(0, 3), 0.0);
    }

    #[test]
    fn combined_measure_clusters_the_groups() {
        let mut m = DistinctMerger::from_profiles(
            &two_groups(),
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        );
        let c = agglomerate(4, &mut m, 0.01);
        assert_eq!(c.cluster_count(), 2);
        let g = c.groups();
        assert!(g.contains(&vec![0, 1]));
        assert!(g.contains(&vec![2, 3]));
    }

    #[test]
    fn geometric_composite_vetoes_on_either_zero() {
        // Profiles share neighbors (resemblance > 0) but have zero walk
        // probability: different nodes in backward maps would be needed.
        // Construct resem > 0, walk = 0 by giving asymmetric supports:
        // here we instead verify the arithmetic difference directly.
        let p = vec![profile(0, &[(1, 1.0)]), profile(1, &[(1, 1.0)])];
        let geo = DistinctMerger::from_profiles(
            &p,
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        );
        let ari = DistinctMerger::from_profiles(
            &p,
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Arithmetic,
        );
        let sg = geo.similarity(0, 1);
        let sa = ari.similarity(0, 1);
        // Both positive here; geometric <= arithmetic (AM-GM).
        assert!(sg > 0.0);
        assert!(sg <= sa + 1e-12);
    }

    #[test]
    fn single_measure_modes() {
        let p = two_groups();
        let r_only = DistinctMerger::from_profiles(
            &p,
            &weights(),
            MeasureMode::SetResemblance,
            CompositeMode::Geometric,
        );
        assert!((r_only.similarity(0, 1) - 1.0).abs() < 1e-12);
        let w_only = DistinctMerger::from_profiles(
            &p,
            &weights(),
            MeasureMode::RandomWalk,
            CompositeMode::Geometric,
        );
        assert!((w_only.similarity(0, 1) - 1.0).abs() < 1e-12); // 1*1 both ways
        assert_eq!(w_only.similarity(0, 2), 0.0);
    }

    #[test]
    fn incremental_aggregation_matches_recomputation() {
        // After merging 0 and 1, avg resemblance to 2 must equal the mean
        // of the leaf resemblances, and collective walk must equal the
        // formula over members.
        let profiles = vec![
            profile(0, &[(1, 0.8), (2, 0.2)]),
            profile(1, &[(1, 0.5), (3, 0.5)]),
            profile(2, &[(1, 0.4), (2, 0.6)]),
        ];
        let mut m = DistinctMerger::from_profiles(
            &profiles,
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        );
        let r02 = m.leaf_resemblance(0, 2);
        let r12 = m.leaf_resemblance(1, 2);
        let d02 = m.dwalk[0][2];
        let d12 = m.dwalk[1][2];
        let d20 = m.dwalk[2][0];
        let d21 = m.dwalk[2][1];
        m.merged(0, 1, 3, 1, 1);
        let avg = m.average_resemblance(3, 2);
        assert!((avg - 0.5 * (r02 + r12)).abs() < 1e-12);
        let cw = m.collective_walk(3, 2);
        let expected = 0.5 * ((d02 + d12) / 2.0 + (d20 + d21) / 1.0);
        assert!((cw - expected).abs() < 1e-12);
    }

    #[test]
    fn parallel_matrix_build_matches_sequential() {
        // A spread of profiles with varying overlap so the matrices are
        // non-trivial; compare every table entry across thread counts.
        let profiles: Vec<Profile> = (0..12)
            .map(|i| profile(i, &[(i % 4, 0.5 + 0.04 * i as f64), ((i + 1) % 4, 0.3)]))
            .collect();
        let reference = DistinctMerger::from_profiles(
            &profiles,
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        );
        for threads in [2usize, 5, 8] {
            let (m, stats) = DistinctMerger::from_profiles_exec(
                &profiles,
                &weights(),
                MeasureMode::Combined,
                CompositeMode::Geometric,
                &exec::Executor::with_threads(threads),
                &|_| true,
            );
            let m = m.expect("permissive guard");
            assert!(!stats.stopped);
            assert_eq!(stats.completed, 12 * 11 / 2);
            assert_eq!(m.resem, reference.resem, "threads={threads}");
            assert_eq!(m.dwalk, reference.dwalk, "threads={threads}");
        }
    }

    #[test]
    fn table_round_trip_restores_a_bit_identical_merger() {
        let profiles: Vec<Profile> = (0..9)
            .map(|i| profile(i, &[(i % 3, 0.4 + 0.05 * i as f64), ((i + 1) % 3, 0.25)]))
            .collect();
        let m = DistinctMerger::from_profiles(
            &profiles,
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        );
        let (resem, dwalk) = m.to_tables();
        let restored = DistinctMerger::from_tables(
            resem.to_vec(),
            dwalk.to_vec(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        )
        .unwrap();
        let (mut a, mut b) = (m.clone(), restored);
        let ca = agglomerate(9, &mut a, 0.01);
        let cb = agglomerate(9, &mut b, 0.01);
        assert_eq!(ca.labels, cb.labels);
        assert_eq!(ca.dendrogram.merges(), cb.dendrogram.merges());
        // Malformed tables are refused, not misindexed.
        assert!(DistinctMerger::from_tables(
            vec![vec![0.0; 2]; 3],
            vec![vec![0.0; 3]; 3],
            MeasureMode::Combined,
            CompositeMode::Geometric,
        )
        .is_none());
    }

    #[test]
    fn tripped_matrix_build_returns_none() {
        let profiles = two_groups();
        let (m, stats) = DistinctMerger::from_profiles_exec(
            &profiles,
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
            &exec::Executor::sequential(),
            &|_| false,
        );
        assert!(m.is_none());
        assert!(stats.stopped);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn merged_tables_stay_symmetric_in_resemblance() {
        let profiles = two_groups();
        let mut m = DistinctMerger::from_profiles(
            &profiles,
            &weights(),
            MeasureMode::Combined,
            CompositeMode::Geometric,
        );
        m.merged(0, 1, 4, 1, 1);
        for c in 0..4 {
            assert_eq!(m.resem[4][c], m.resem[c][4]);
        }
    }
}

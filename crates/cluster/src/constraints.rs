//! Instance-level constraints for agglomerative clustering.
//!
//! Entity-resolution systems routinely receive user feedback: "these two
//! references are the same person" (must-link) or "these are different
//! people" (cannot-link). [`ConstrainedMerger`] wraps any [`Merger`] and
//! enforces both kinds:
//!
//! * **must-link** pairs report `f64::INFINITY` similarity, so the engine
//!   merges them before anything else;
//! * **cannot-link** pairs report `f64::NEG_INFINITY`, and the veto is
//!   propagated across merges: a cluster containing a reference
//!   cannot-linked to a reference of another cluster can never merge with
//!   it.

use crate::engine::Merger;
use std::collections::HashSet;

/// A [`Merger`] decorator enforcing must-link / cannot-link constraints.
#[derive(Debug)]
pub struct ConstrainedMerger<M> {
    inner: M,
    /// Members (leaf items) per cluster id; grows with merges.
    members: Vec<Vec<usize>>,
    /// Leaf-level cannot-link pairs (stored both ways).
    cannot: HashSet<(usize, usize)>,
    /// Leaf-level must-link pairs (stored once, a < b).
    must: HashSet<(usize, usize)>,
}

impl<M: Merger> ConstrainedMerger<M> {
    /// Wrap `inner` for a clustering over `n` items.
    ///
    /// # Panics
    /// Panics if a constraint names an item `>= n`, pairs an item with
    /// itself, or the same pair appears in both constraint sets.
    pub fn new(
        inner: M,
        n: usize,
        must_link: &[(usize, usize)],
        cannot_link: &[(usize, usize)],
    ) -> Self {
        let mut cannot = HashSet::new();
        for &(a, b) in cannot_link {
            assert!(a < n && b < n, "cannot-link names item out of range");
            assert_ne!(a, b, "cannot-link an item with itself");
            cannot.insert((a, b));
            cannot.insert((b, a));
        }
        let mut must = HashSet::new();
        for &(a, b) in must_link {
            assert!(a < n && b < n, "must-link names item out of range");
            assert_ne!(a, b, "must-link an item with itself");
            assert!(
                !cannot.contains(&(a, b)),
                "pair ({a}, {b}) is both must-link and cannot-link"
            );
            must.insert((a.min(b), a.max(b)));
        }
        ConstrainedMerger {
            inner,
            members: (0..n).map(|i| vec![i]).collect(),
            cannot,
            must,
        }
    }

    /// True if any member of cluster `a` is cannot-linked to any member of
    /// cluster `b`.
    fn vetoed(&self, a: usize, b: usize) -> bool {
        let (small, large) = if self.members[a].len() <= self.members[b].len() {
            (&self.members[a], &self.members[b])
        } else {
            (&self.members[b], &self.members[a])
        };
        small
            .iter()
            .any(|&x| large.iter().any(|&y| self.cannot.contains(&(x, y))))
    }

    /// True if some must-link pair spans clusters `a` and `b`.
    fn demanded(&self, a: usize, b: usize) -> bool {
        self.members[a].iter().any(|&x| {
            self.members[b]
                .iter()
                .any(|&y| self.must.contains(&(x.min(y), x.max(y))))
        })
    }

    /// Access the wrapped merger.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Merger> Merger for ConstrainedMerger<M> {
    fn similarity(&self, a: usize, b: usize) -> f64 {
        if self.vetoed(a, b) {
            return f64::NEG_INFINITY;
        }
        if self.demanded(a, b) {
            return f64::INFINITY;
        }
        self.inner.similarity(a, b)
    }

    fn merged(&mut self, a: usize, b: usize, into: usize, size_a: usize, size_b: usize) {
        debug_assert_eq!(into, self.members.len());
        let mut m = Vec::with_capacity(self.members[a].len() + self.members[b].len());
        m.extend_from_slice(&self.members[a]);
        m.extend_from_slice(&self.members[b]);
        self.members.push(m);
        self.inner.merged(a, b, into, size_a, size_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{agglomerate, MatrixMerger};
    use crate::linkage::Linkage;

    /// 4 items: (0,1) similar, (2,3) similar, weak cross links.
    fn base_matrix() -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; 4]; 4];
        let set = |m: &mut Vec<Vec<f64>>, i: usize, j: usize, v: f64| {
            m[i][j] = v;
            m[j][i] = v;
        };
        set(&mut m, 0, 1, 0.9);
        set(&mut m, 2, 3, 0.9);
        set(&mut m, 1, 2, 0.3);
        m
    }

    fn cluster_with(
        must: &[(usize, usize)],
        cannot: &[(usize, usize)],
        min_sim: f64,
    ) -> Vec<usize> {
        let inner = MatrixMerger::new(base_matrix(), Linkage::Average);
        let mut merger = ConstrainedMerger::new(inner, 4, must, cannot);
        agglomerate(4, &mut merger, min_sim).labels
    }

    #[test]
    fn unconstrained_baseline() {
        let labels = cluster_with(&[], &[], 0.5);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn cannot_link_blocks_a_natural_merge() {
        let labels = cluster_with(&[], &[(0, 1)], 0.5);
        assert_ne!(labels[0], labels[1], "vetoed pair must stay apart");
        assert_eq!(labels[2], labels[3]);
    }

    #[test]
    fn cannot_link_propagates_through_clusters() {
        // 0-1 merge naturally; cannot-link(0, 2) must then keep {0,1} from
        // ever merging with anything containing 2 — even at min_sim 0.
        let labels = cluster_with(&[], &[(0, 2)], 0.0);
        assert_ne!(labels[0], labels[2]);
        assert_eq!(labels[0], labels[1]); // natural merge unaffected
    }

    #[test]
    fn must_link_forces_a_merge_across_weak_similarity() {
        // (0, 3) have similarity 0: must-link forces them together anyway.
        let labels = cluster_with(&[(0, 3)], &[], 0.5);
        assert_eq!(labels[0], labels[3]);
    }

    #[test]
    fn must_link_merges_first_then_clustering_continues() {
        // must-link(0, 2) fires before any natural merge; afterwards the
        // engine keeps clustering with the (now combined) similarities:
        // {0,2}+1 has average 0.6 >= 0.5 and joins, while 3's average to
        // {0,1,2} is 0.3 and stays out.
        let labels = cluster_with(&[(0, 2)], &[], 0.5);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[3], labels[0]);
    }

    #[test]
    fn constraints_combine() {
        // Force 0-3 together but keep 1 away from 2.
        let labels = cluster_with(&[(0, 3)], &[(1, 2)], 0.5);
        assert_eq!(labels[0], labels[3]);
        assert_ne!(labels[1], labels[2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_constraint_panics() {
        cluster_with(&[], &[(0, 9)], 0.5);
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn self_constraint_panics() {
        cluster_with(&[(1, 1)], &[], 0.5);
    }

    #[test]
    #[should_panic(expected = "both must-link and cannot-link")]
    fn contradictory_constraint_panics() {
        cluster_with(&[(0, 1)], &[(0, 1)], 0.5);
    }

    #[test]
    fn inner_access() {
        let inner = MatrixMerger::new(base_matrix(), Linkage::Average);
        let merger = ConstrainedMerger::new(inner, 4, &[], &[]);
        assert_eq!(merger.inner().items(), 4);
    }
}

//! Deterministic world shrinking for minimal differential counterexamples.
//!
//! When a differential test finds a generated world on which the
//! production pipeline disagrees with the reference oracle, the raw
//! config is a poor bug report: hundreds of authors, most irrelevant.
//! [`shrink_world`] greedily applies a fixed sequence of structural
//! reductions — fewer authors, venues, communities, papers, ambiguous
//! entities, references, names — keeping each reduction only if the
//! failure predicate still holds on the reduced world, until no
//! reduction survives. The result is a locally minimal failing
//! [`WorldConfig`] whose JSON serialization is the counterexample to
//! paste into a regression test.
//!
//! Everything is deterministic: the reduction order is fixed, each
//! candidate is validated before the predicate runs, and the predicate
//! sees fully-formed configs only — so the same failing seed always
//! shrinks to the same minimal config.

use crate::config::WorldConfig;

/// Floors for the structural reductions: small enough to be readable,
/// large enough that datagen still produces a well-formed world.
const MIN_AUTHORS: usize = 20;
const MIN_VENUES: usize = 4;
const MIN_COMMUNITIES: usize = 2;
const MIN_MEAN_PAPERS: f64 = 3.0;
const MIN_NAME_POOL: usize = 10;

/// One pass of candidate reductions, coarsest first. Returns every
/// distinct config one reduction step away from `c`.
fn reductions(c: &WorldConfig) -> Vec<WorldConfig> {
    let mut out = Vec::new();
    let mut push = |candidate: WorldConfig| {
        if candidate != *c && candidate.validate().is_ok() {
            out.push(candidate);
        }
    };

    // Halve the population (toward the floor).
    let mut r = c.clone();
    r.n_authors = (c.n_authors / 2).max(MIN_AUTHORS);
    push(r);
    let mut r = c.clone();
    r.n_venues = (c.n_venues / 2).max(MIN_VENUES.max(c.venues_per_community));
    push(r);
    let mut r = c.clone();
    r.n_communities = (c.n_communities / 2).max(MIN_COMMUNITIES);
    push(r);
    let mut r = c.clone();
    r.mean_papers_per_author = (c.mean_papers_per_author / 2.0).max(MIN_MEAN_PAPERS);
    push(r);

    // Drop whole ambiguous specs from the back (the predicate usually
    // cares about one group).
    if c.ambiguous.len() > 1 {
        let mut r = c.clone();
        r.ambiguous.pop();
        push(r);
    }
    // Drop trailing entities within each spec, one spec at a time.
    for (i, spec) in c.ambiguous.iter().enumerate() {
        if spec.refs_per_entity.len() > 1 {
            let mut r = c.clone();
            r.ambiguous[i].refs_per_entity.pop();
            push(r);
        }
    }
    // Halve reference counts within each spec, one spec at a time.
    for (i, spec) in c.ambiguous.iter().enumerate() {
        if spec.refs_per_entity.iter().any(|&k| k > 1) {
            let mut r = c.clone();
            for k in &mut r.ambiguous[i].refs_per_entity {
                *k = (*k / 2).max(1);
            }
            push(r);
        }
    }

    // Shrink the name pools (more collisions, but fewer moving parts).
    let mut r = c.clone();
    r.first_name_pool = (c.first_name_pool / 2).max(MIN_NAME_POOL);
    push(r);
    let mut r = c.clone();
    r.last_name_pool = (c.last_name_pool / 2).max(MIN_NAME_POOL);
    push(r);

    out
}

/// Greedily shrink `initial` while `still_fails` keeps returning `true`.
///
/// `still_fails` must return `true` for a config reproducing the failure
/// under investigation; it is never called on an invalid config, and is
/// called on `initial` candidates' *reductions* only — the caller is
/// expected to have already observed `initial` failing. Returns the
/// fixed point: a config none of whose one-step reductions still fails.
pub fn shrink_world<F>(initial: WorldConfig, mut still_fails: F) -> WorldConfig
where
    F: FnMut(&WorldConfig) -> bool,
{
    let mut current = initial;
    // Each accepted reduction strictly decreases some bounded quantity,
    // so this terminates; the cap is a defensive backstop.
    for _ in 0..10_000 {
        let next = reductions(&current)
            .into_iter()
            .find(|candidate| still_fails(candidate));
        match next {
            Some(c) => current = c,
            None => break,
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AmbiguousSpec;

    fn seed_config() -> WorldConfig {
        let mut c = WorldConfig::tiny(5);
        c.ambiguous = vec![
            AmbiguousSpec::new("Wei Wang", vec![8, 6, 4]),
            AmbiguousSpec::new("Hui Fang", vec![5, 4]),
        ];
        c
    }

    #[test]
    fn shrinks_to_floors_when_everything_fails() {
        let minimal = shrink_world(seed_config(), |_| true);
        assert_eq!(minimal.n_authors, MIN_AUTHORS);
        assert_eq!(minimal.n_communities, MIN_COMMUNITIES);
        assert!(minimal.n_venues >= minimal.venues_per_community);
        assert_eq!(minimal.ambiguous.len(), 1);
        assert_eq!(minimal.ambiguous[0].refs_per_entity, vec![1]);
        minimal.validate().unwrap();
    }

    #[test]
    fn fixed_point_when_nothing_else_fails() {
        let initial = seed_config();
        let out = shrink_world(initial.clone(), |_| false);
        assert_eq!(out, initial);
    }

    #[test]
    fn predicate_constraints_are_respected() {
        // Keep failing only while the first group retains ≥ 2 entities:
        // the shrinker must stop with exactly 2, never below.
        let minimal = shrink_world(seed_config(), |c| {
            c.ambiguous
                .first()
                .is_some_and(|s| s.refs_per_entity.len() >= 2)
        });
        assert_eq!(minimal.ambiguous[0].refs_per_entity.len(), 2);
        minimal.validate().unwrap();
    }

    #[test]
    fn shrinking_is_deterministic() {
        let a = shrink_world(seed_config(), |c| c.n_authors >= 40);
        let b = shrink_world(seed_config(), |c| c.n_authors >= 40);
        assert_eq!(a, b);
    }
}

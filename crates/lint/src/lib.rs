//! distinct-lint: dependency-free static analysis for this workspace's
//! project invariants (determinism, graceful degradation, budget
//! coverage, exec-pool ownership of parallelism, f64 numerics, core API
//! docs).
//!
//! The pipeline is: discover files ([`workspace`]), lex them ([`lexer`]),
//! build per-file context ([`model`]), run the passes ([`passes`]), apply
//! inline suppressions ([`suppress`]), then resolve what is left against
//! the checked-in debt baseline ([`baseline`]). The [`graph`] module maps
//! the crate topology for the `graph` subcommand and the layering
//! self-checks.

pub mod baseline;
pub mod catalog;
pub mod graph;
pub mod lexer;
pub mod model;
pub mod passes;
pub mod suppress;
pub mod workspace;

use baseline::{Baseline, Diff};
use catalog::{Finding, LintId};
use std::path::Path;

/// Result of analyzing the whole workspace (before baseline resolution).
#[derive(Debug)]
pub struct Analysis {
    /// Findings that survived inline suppressions, plus D000s for
    /// malformed or unused suppressions. Sorted by (file, line, id).
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files: usize,
    /// Number of suppressions that matched a finding.
    pub suppressions_used: usize,
}

/// Lex, model, lint, and suppress every analyzable file under `root`.
pub fn analyze(root: &Path) -> Result<Analysis, String> {
    let ctxs = workspace::collect_files(root)?;
    let mut findings = Vec::new();
    let mut suppressions_used = 0usize;
    let files = ctxs.len();
    for ctx in &ctxs {
        let (mut sups, malformed) = suppress::collect(ctx);
        findings.extend(malformed);
        let raw = passes::run_all(ctx);
        let kept = suppress::apply(raw, &mut sups);
        findings.extend(kept);
        for s in &sups {
            if s.used {
                suppressions_used += 1;
            } else {
                findings.push(Finding {
                    id: LintId::D000,
                    file: ctx.path.clone(),
                    line: s.comment_line,
                    message: format!(
                        "suppression for {} matches no finding on line {}",
                        s.ids.iter().map(|i| i.name()).collect::<Vec<_>>().join("/"),
                        s.target_line
                    ),
                });
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.id).cmp(&(&b.file, b.line, b.id)));
    Ok(Analysis {
        findings,
        files,
        suppressions_used,
    })
}

/// Outcome of a `check` run, ready for reporting and exit-code mapping.
#[derive(Debug)]
pub struct CheckOutcome {
    /// The underlying analysis.
    pub analysis: Analysis,
    /// The baseline that was applied (empty if `lint.toml` is absent).
    pub baseline: Baseline,
    /// Exact-count comparison result; clean means exit 0.
    pub diff: Diff,
}

/// Run the full check: analyze, load `lint.toml` (missing file means an
/// empty baseline), and diff.
pub fn check(root: &Path) -> Result<CheckOutcome, String> {
    let analysis = analyze(root)?;
    let baseline_path = root.join("lint.toml");
    let baseline = if baseline_path.exists() {
        let text =
            std::fs::read_to_string(&baseline_path).map_err(|e| format!("read lint.toml: {e}"))?;
        Baseline::parse(&text)?
    } else {
        Baseline::default()
    };
    let diff = baseline.diff(&analysis.findings);
    Ok(CheckOutcome {
        analysis,
        baseline,
        diff,
    })
}

/// Rewrite `lint.toml` to exactly cover the current findings. Returns the
/// number of baselined findings. D000s are never baselined and make this
/// fail, so a broken suppression cannot be ratcheted in.
pub fn fix_baseline(root: &Path) -> Result<usize, String> {
    let analysis = analyze(root)?;
    if let Some(d0) = analysis.findings.iter().find(|f| f.id == LintId::D000) {
        return Err(format!(
            "cannot baseline suppression-hygiene findings; fix them first: {d0}"
        ));
    }
    let baseline = Baseline::from_findings(&analysis.findings);
    std::fs::write(root.join("lint.toml"), baseline.render())
        .map_err(|e| format!("write lint.toml: {e}"))?;
    Ok(analysis.findings.len())
}

//! Metamorphic invariants of the resolution pipeline.
//!
//! Each property transforms an input in a way that must not change the
//! answer (or must change it in a predictable direction) and asserts the
//! pipeline honors the relation:
//!
//! 1. **Reference-order permutation invariance** — permuting the `refs`
//!    slice permutes labels and pairwise tables, nothing else.
//! 2. **Tuple-order permutation invariance** — physically reordering a
//!    relation's rows leaves every propagation probability unchanged
//!    (modulo the key-preserving tuple-id relabeling) within `1e-9`.
//! 3. **Duplicate-constraint idempotence** — repeating `must_link` /
//!    `cannot_link` pairs changes nothing: constraints are a set.
//! 4. **Similarity symmetry** — `sim(a, b) = sim(b, a)` at every stage,
//!    on both the production probe and the oracle.
//! 5. **Min-sim monotonicity** — raising the threshold only splits
//!    clusters: the higher-threshold clustering refines the lower one.
//! 6. **Resume-after-kill equivalence** — crashing a durable run at an
//!    arbitrary write and resuming it on a cold engine yields exactly the
//!    partition of an uninterrupted resolve: durability is invisible in
//!    the answer.
//! 7. **Streaming ≡ batch convergence** — streaming a tuple log into a
//!    base engine one update at a time, in *any* block order, under 1 or
//!    4 worker threads, converges to exactly the partition a cold batch
//!    engine computes on the union catalog (labels bit-identical within
//!    an order, similarities within `1e-9`, partitions canonically equal
//!    across orders). Corollaries: re-applying an absorbed log is a
//!    no-op, and the chunking of the stream (1-tuple chunks vs. k-tuple
//!    chunks vs. one shot) is unobservable.
//!
//! Property tests run on the vendored `proptest` (deterministic per-test
//! seeding, no shrinking); the worlds are small so each case is cheap.

use datagen::{AmbiguousSpec, DblpDataset, UpdateStream, World, WorldConfig};
use distinct::{
    Distinct, DistinctConfig, DistinctError, ResolveRequest, RunOptions, TrainingConfig,
    UpdateTuple, WeightingMode,
};
use oracle::{Composite, Measure, OracleEngine};
use proptest::prelude::*;
use relgraph::LinkGraph;
use relstore::{
    AttrType, Catalog, FaultKind, FaultPlan, FaultyVfs, JoinPath, JoinStep, SchemaBuilder, StdVfs,
    Tuple, TupleRef, Value,
};
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Shared fixture
// ---------------------------------------------------------------------------

fn fixture() -> &'static DblpDataset {
    static DATA: OnceLock<DblpDataset> = OnceLock::new();
    DATA.get_or_init(|| {
        let mut config = WorldConfig::tiny(47);
        config.n_authors = 120;
        config.n_venues = 12;
        config.n_communities = 5;
        config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![5, 4])];
        datagen::to_catalog(&World::generate(config)).unwrap()
    })
}

fn engine() -> Distinct {
    let config = DistinctConfig {
        max_path_len: 3,
        min_sim: 1e-4,
        weighting: WeightingMode::Uniform,
        training: TrainingConfig {
            positives: 60,
            negatives: 60,
            ..Default::default()
        },
        ..Default::default()
    };
    Distinct::prepare(&fixture().catalog, "Publish", "author", config).unwrap()
}

/// Deterministic Fisher–Yates permutation of `0..n` from a seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// `true` iff `fine` refines `coarse`: items sharing a `fine` cluster
/// always share a `coarse` cluster.
fn refines(fine: &[usize], coarse: &[usize]) -> bool {
    for i in 0..fine.len() {
        for j in i + 1..fine.len() {
            if fine[i] == fine[j] && coarse[i] != coarse[j] {
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Invariant 2's two-relation catalog (row order is the variable)
// ---------------------------------------------------------------------------

/// `Child(key, parent -> Parent)` with children inserted in `order`;
/// returns the catalog and each logical child's [`TupleRef`] indexed by
/// its key.
fn ordered_catalog(
    parents: usize,
    assignment: &[usize],
    order: &[usize],
) -> (Catalog, Vec<TupleRef>) {
    let mut c = Catalog::new();
    c.add_relation(
        SchemaBuilder::new("Parent")
            .key("key", AttrType::Int)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.add_relation(
        SchemaBuilder::new("Child")
            .key("key", AttrType::Int)
            .fk("parent", AttrType::Int, "Parent")
            .build()
            .unwrap(),
    )
    .unwrap();
    for p in 0..parents {
        c.insert("Parent", Tuple::new(vec![Value::Int(p as i64)]))
            .unwrap();
    }
    let child_rel = c.relation_id("Child").unwrap();
    let mut by_key = vec![TupleRef::new(child_rel, relstore::TupleId(0)); assignment.len()];
    for &k in order {
        by_key[k] = c
            .insert(
                "Child",
                Tuple::new(vec![
                    Value::Int(k as i64),
                    Value::Int((assignment[k] % parents) as i64),
                ]),
            )
            .unwrap();
    }
    c.finalize(false).unwrap();
    (c, by_key)
}

/// The `Child → Parent → Child` round-trip path.
fn round_trip_path(c: &Catalog) -> JoinPath {
    let fk = c.fk_edges()[0].clone();
    JoinPath::new(
        fk.from,
        vec![JoinStep::forward(fk.id), JoinStep::backward(fk.id)],
        c,
    )
    .unwrap()
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // 1. Permuting the reference slice permutes the output, nothing else.
    #[test]
    fn reference_order_permutation_invariance(seed in 1u64..1_000_000) {
        let engine = engine();
        let refs = &fixture().truths[0].refs;
        let n = refs.len();
        let perm = permutation(n, seed);
        let permuted: Vec<TupleRef> = perm.iter().map(|&i| refs[i]).collect();

        let base = engine.resolve(&ResolveRequest::new(refs));
        let shuffled = engine.resolve(&ResolveRequest::new(&permuted));
        let lb = &base.clustering.labels;
        let ls = &shuffled.clustering.labels;
        for a in 0..n {
            for b in 0..n {
                // permuted[a] is refs[perm[a]]: co-membership must carry over.
                prop_assert_eq!(ls[a] == ls[b], lb[perm[a]] == lb[perm[b]]);
            }
        }

        let probe = engine.stage_probe(refs);
        let probe_shuffled = engine.stage_probe(&permuted);
        for a in 0..n {
            for b in 0..n {
                let d = (probe_shuffled.similarity[a][b]
                    - probe.similarity[perm[a]][perm[b]])
                    .abs();
                prop_assert!(d <= 1e-9, "similarity moved by {} under permutation", d);
            }
        }
    }

    // 2. Physical row order of a relation never changes propagation.
    #[test]
    fn tuple_order_permutation_invariance(
        seed in 1u64..1_000_000,
        parents in 2usize..6,
        children in 4usize..12,
    ) {
        let assignment: Vec<usize> = (0..children)
            .map(|i| (i.wrapping_mul(7).wrapping_add(seed as usize)) % parents)
            .collect();
        let identity: Vec<usize> = (0..children).collect();
        let shuffled = permutation(children, seed);

        let (cat_a, refs_a) = ordered_catalog(parents, &assignment, &identity);
        let (cat_b, refs_b) = ordered_catalog(parents, &assignment, &shuffled);
        let graph_a = LinkGraph::build(&cat_a);
        let graph_b = LinkGraph::build(&cat_b);
        let path_a = round_trip_path(&cat_a);
        let path_b = round_trip_path(&cat_b);

        for k in 0..children {
            let prop_a = relgraph::propagate(&graph_a, &cat_a, &path_a, refs_a[k]);
            let prop_b = relgraph::propagate(&graph_b, &cat_b, &path_b, refs_b[k]);
            prop_assert_eq!(prop_a.forward.len(), prop_b.forward.len());
            for (&node, &mass) in &prop_a.forward {
                // Identify end tuples by their logical key, not tuple id.
                let t = graph_a.tuple(node);
                let key = cat_a.relation(t.rel).tuple(t.tid).values()[0].clone();
                let matched = prop_b.forward.iter().find(|(&nb, _)| {
                    let tb = graph_b.tuple(nb);
                    cat_b.relation(tb.rel).tuple(tb.tid).values()[0] == key
                });
                let (_, &mass_b) = matched.expect("same support under row permutation");
                prop_assert!((mass - mass_b).abs() <= 1e-9);
            }
        }
    }

    // 3. Constraints are a set: duplicating them changes nothing.
    #[test]
    fn duplicate_constraint_idempotence(
        a in 0usize..9,
        b in 0usize..9,
        c in 0usize..9,
        d in 0usize..9,
    ) {
        prop_assume!(a != b && c != d && (a, b) != (c, d) && (a, b) != (d, c));
        let engine = engine();
        let refs = &fixture().truths[0].refs;
        let must = [(a, b)];
        let cannot = [(c, d)];
        let once = engine.resolve(
            &ResolveRequest::new(refs).must_link(&must).cannot_link(&cannot),
        );
        let twice = engine.resolve(
            &ResolveRequest::new(refs)
                .must_link(&must)
                .must_link(&must)
                .cannot_link(&cannot)
                .cannot_link(&cannot),
        );
        prop_assert_eq!(&once.clustering.labels, &twice.clustering.labels);
        prop_assert_eq!(
            once.clustering.dendrogram.merges(),
            twice.clustering.dendrogram.merges()
        );
    }

    // 4. Similarity is symmetric at every stage, on both implementations.
    #[test]
    fn similarity_symmetry(seed in 1u64..1_000_000) {
        let engine = engine();
        let refs = &fixture().truths[0].refs;
        let n = refs.len();
        // Probe a permuted slice so symmetry is not an artifact of one
        // fixed pair orientation.
        let perm = permutation(n, seed);
        let permuted: Vec<TupleRef> = perm.iter().map(|&i| refs[i]).collect();
        let probe = engine.stage_probe(&permuted);

        let (paths, ref_fk) =
            oracle::select_paths(engine.catalog(), "Publish", "author", 3).unwrap();
        let uniform = vec![1.0 / paths.len() as f64; paths.len()];
        let orc = OracleEngine::new(
            engine.catalog(),
            paths,
            ref_fk,
            uniform.clone(),
            uniform,
            Measure::Combined,
            Composite::Geometric,
        );
        let tables = orc.pairwise(&permuted);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(probe.resemblance[i][j], probe.resemblance[j][i]);
                prop_assert_eq!(probe.walk[i][j], probe.walk[j][i]);
                prop_assert_eq!(probe.similarity[i][j], probe.similarity[j][i]);
                prop_assert_eq!(tables.resemblance[i][j], tables.resemblance[j][i]);
                prop_assert_eq!(tables.walk[i][j], tables.walk[j][i]);
                prop_assert_eq!(tables.similarity[i][j], tables.similarity[j][i]);
            }
        }
    }

    // 5. Raising min-sim only splits clusters, never re-mixes them.
    #[test]
    fn min_sim_monotonicity(lo_bits in 1u32..500, hi_bits in 1u32..500) {
        let lo = f64::from(lo_bits.min(hi_bits)) * 1e-5;
        let hi = f64::from(lo_bits.max(hi_bits)) * 1e-5;
        let engine = engine();
        let refs = &fixture().truths[0].refs;
        let coarse = engine.resolve(&ResolveRequest::new(refs).min_sim(lo));
        let fine = engine.resolve(&ResolveRequest::new(refs).min_sim(hi));
        prop_assert!(
            refines(&fine.clustering.labels, &coarse.clustering.labels),
            "threshold {} does not refine {}: {:?} vs {:?}",
            hi,
            lo,
            fine.clustering.labels,
            coarse.clustering.labels
        );
        // And the merge sequence at `hi` is a prefix of the one at `lo`.
        let fm = fine.clustering.dendrogram.merges();
        let cm = coarse.clustering.dendrogram.merges();
        prop_assert!(fm.len() <= cm.len());
        prop_assert_eq!(fm, &cm[..fm.len()]);
    }

    // 6. Durability is invisible: kill anywhere, resume cold, same answer.
    #[test]
    fn resume_after_kill_equals_cold_resolve(
        kill_point in 1u64..=6,
        torn in proptest::bool::ANY,
    ) {
        let eng = engine();
        let refs = &fixture().truths[0].refs;
        let cold = eng.resolve(&ResolveRequest::new(refs)).clustering;

        let dir = std::env::temp_dir().join(format!(
            "distinct_meta_resume_{}_{kill_point}_{torn}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = RunOptions {
            chunk_size: 4,
            ..Default::default()
        };
        let req = ResolveRequest::new(refs).resume(&dir);

        // Crash the durable run at the swept write (9 refs / chunks of 4:
        // manifest, three chunks, similarity, clustering — 6 writes).
        let kind = if torn { FaultKind::Torn } else { FaultKind::Fail };
        let mut vfs = FaultyVfs::new(
            FaultPlan::new(kill_point.wrapping_mul(0x9e37)).with_fault(kill_point, kind),
        );
        let fatal = RunOptions { max_retries: 0, ..opts.clone() };
        let err = eng
            .resolve_durable_with(&req, &mut vfs, &fatal)
            .expect_err("the injected crash must surface");
        prop_assert!(matches!(err, DistinctError::Store(_)), "{}", err);

        // A cold engine resumes to the identical partition.
        let resumed = engine().resolve_durable_with(&req, &mut StdVfs, &opts);
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert!(resumed.is_ok(), "resume failed: {:?}", resumed.err());
        let resumed = resumed.unwrap();
        prop_assert!(resumed.outcome.is_complete());
        prop_assert_eq!(&resumed.outcome.clustering.labels, &cold.labels);
        prop_assert_eq!(
            resumed.outcome.clustering.dendrogram.merges(),
            cold.dendrogram.merges()
        );
    }
}

// ---------------------------------------------------------------------------
// Invariant 7: streaming ≡ batch convergence
// ---------------------------------------------------------------------------

/// A small world with one planted two-entity name, split into a base
/// catalog plus an update log holding out ~15% of the papers.
fn convergence_stream(world_seed: u64) -> UpdateStream {
    let mut config = WorldConfig::tiny(world_seed);
    config.n_authors = 80;
    config.n_venues = 10;
    config.n_communities = 4;
    config.mean_papers_per_author = 4.0;
    config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![6, 5])];
    datagen::update_stream(&config, 0.15, world_seed ^ 0xA5A5).unwrap()
}

fn prepare(catalog: &Catalog) -> Distinct {
    Distinct::prepare(catalog, "Publish", "author", DistinctConfig::default()).unwrap()
}

fn as_updates(log: &[datagen::LogTuple]) -> Vec<UpdateTuple> {
    log.iter()
        .map(|(rel, values)| UpdateTuple::new(rel.clone(), values.clone()))
        .collect()
}

/// Clusters as sorted multisets of `(author, paper_key)` value keys —
/// the partition quotient that is invariant under catalog row order, so
/// streams applied in different orders become comparable.
fn canonical_partition(
    catalog: &Catalog,
    refs: &[TupleRef],
    labels: &[usize],
) -> Vec<Vec<(String, String)>> {
    let clusters = labels.iter().max().map_or(0, |&m| m + 1);
    let mut out = vec![Vec::new(); clusters];
    for (i, r) in refs.iter().enumerate() {
        let values = catalog.relation(r.rel).tuple(r.tid).values();
        out[labels[i]].push((format!("{:?}", values[0]), format!("{:?}", values[1])));
    }
    for cluster in &mut out {
        cluster.sort();
    }
    out.sort();
    out
}

/// Invariant 7 proper: one-tuple-at-a-time streaming over every block
/// order and thread count lands on the cold batch partition.
#[test]
fn streaming_updates_converge_to_cold_batch() {
    for world_seed in [3u64, 7, 21, 33, 47] {
        let stream = convergence_stream(world_seed);
        assert!(stream.held_out_papers > 0, "world {world_seed}: empty log");

        // The orders: the natural dependency order plus two block shuffles.
        let orders = [
            stream.log.clone(),
            datagen::shuffle_log(&stream.log, world_seed ^ 1),
            datagen::shuffle_log(&stream.log, world_seed ^ 2),
        ];

        let mut canonical: Option<Vec<Vec<(String, String)>>> = None;
        for (oi, log) in orders.iter().enumerate() {
            let updates = as_updates(log);
            for threads in [1usize, 4] {
                // Stream one tuple at a time into an engine prepared on
                // the base catalog.
                let mut streamed = prepare(&stream.base.catalog);
                for update in &updates {
                    streamed
                        .apply_updates(std::slice::from_ref(update))
                        .unwrap();
                }
                let refs = streamed.references_of("Wei Wang");
                assert_eq!(refs.len(), 11, "world {world_seed}: planted 6+5 refs");
                let inc = streamed.resolve(&ResolveRequest::incremental(&refs).threads(threads));

                // Within an order the streamed catalog *is* the union
                // catalog, so the cold batch comparison is exact. Checked
                // on the natural order; shuffles are covered by the
                // canonical cross-order comparison below.
                if oi == 0 {
                    let cold = prepare(streamed.catalog());
                    let batch = cold.resolve(&ResolveRequest::new(&refs).threads(threads));
                    assert_eq!(
                        inc.clustering.labels, batch.clustering.labels,
                        "world {world_seed} threads {threads}: streamed labels != batch"
                    );
                    assert_eq!(
                        inc.clustering.dendrogram.merges(),
                        batch.clustering.dendrogram.merges(),
                        "world {world_seed} threads {threads}: streamed merges != batch"
                    );
                    if threads == 1 {
                        // Stage-level agreement within 1e-9 (bit-identity
                        // is asserted above; the tolerance is the contract).
                        let ps = streamed.stage_probe(&refs);
                        let pc = cold.stage_probe(&refs);
                        for i in 0..refs.len() {
                            for j in 0..refs.len() {
                                let d = (ps.similarity[i][j] - pc.similarity[i][j]).abs();
                                assert!(d <= 1e-9, "world {world_seed}: sim[{i}][{j}] off by {d}");
                            }
                        }
                    }
                }

                // Across orders and thread counts: identical partition of
                // the same logical references.
                let canon = canonical_partition(streamed.catalog(), &refs, &inc.clustering.labels);
                match &canonical {
                    None => canonical = Some(canon),
                    Some(expected) => assert_eq!(
                        expected, &canon,
                        "world {world_seed} order {oi} threads {threads}: partition moved"
                    ),
                }
            }
        }
    }
}

/// Corollary: a log the engine has already absorbed is a no-op to
/// re-apply, and the answer does not move.
#[test]
fn re_streaming_an_absorbed_log_is_idempotent() {
    let stream = convergence_stream(21);
    let updates = as_updates(&stream.log);
    let mut e = prepare(&stream.base.catalog);

    let first = e.apply_updates(&updates).unwrap();
    assert_eq!(first.applied, updates.len());
    let refs = e.references_of("Wei Wang");
    let before = e.resolve(&ResolveRequest::incremental(&refs));

    let again = e.apply_updates(&updates).unwrap();
    assert_eq!(again.applied, 0, "absorbed tuples must be skipped");
    assert_eq!(again.skipped, updates.len());
    assert_eq!(again.refs_added, 0);
    assert_eq!(again.refs_dirtied, 0, "a no-op update dirties nothing");
    assert!(again.names.is_empty());

    let after = e.resolve(&ResolveRequest::incremental(&refs));
    assert_eq!(before.clustering.labels, after.clustering.labels);
    assert_eq!(
        before.clustering.dendrogram.merges(),
        after.clustering.dendrogram.merges()
    );
}

/// Corollary: the chunking of the stream is unobservable — 1-tuple
/// chunks, k-tuple chunks, and a single batch land on the same engine
/// state and partition.
#[test]
fn stream_chunking_is_unobservable() {
    let stream = convergence_stream(7);
    let updates = as_updates(&stream.log);

    let chunkings: [&[usize]; 3] = [&[1], &[3, 5], &[usize::MAX]];
    let mut results: Vec<(usize, Vec<usize>, Vec<cluster::Merge>)> = Vec::new();
    for sizes in chunkings {
        let mut e = prepare(&stream.base.catalog);
        let mut applied = 0;
        let mut cursor = 0;
        let mut pick = 0;
        while cursor < updates.len() {
            let take = sizes[pick % sizes.len()].min(updates.len() - cursor);
            pick += 1;
            let report = e.apply_updates(&updates[cursor..cursor + take]).unwrap();
            applied += report.applied;
            cursor += take;
        }
        let refs = e.references_of("Wei Wang");
        let out = e.resolve(&ResolveRequest::incremental(&refs));
        results.push((
            applied,
            out.clustering.labels.clone(),
            out.clustering.dendrogram.merges().to_vec(),
        ));
    }

    let (applied, labels, merges) = &results[0];
    for (other_applied, other_labels, other_merges) in &results[1..] {
        assert_eq!(applied, other_applied, "chunking changed the applied count");
        assert_eq!(labels, other_labels, "chunking changed the partition");
        assert_eq!(merges, other_merges, "chunking changed the dendrogram");
    }
}

//! Criterion bench: weighted Jaccard resemblance between neighbor sets
//! (Definition 2), at several set sizes and overlap regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relgraph::{NodeId, WeightedSet};
use std::hint::black_box;

fn make_set(start: u32, len: u32) -> WeightedSet {
    (start..start + len)
        .map(|n| (NodeId(n), 1.0 / (n - start + 1) as f64))
        .collect()
}

fn bench_resemblance(c: &mut Criterion) {
    let mut group = c.benchmark_group("resemblance");
    for &n in &[10u32, 100, 1000] {
        // Half-overlapping sets.
        let a = make_set(0, n);
        let b = make_set(n / 2, n);
        group.bench_with_input(
            BenchmarkId::new("weighted_half_overlap", n),
            &n,
            |bench, _| bench.iter(|| black_box(a.resemblance(black_box(&b)))),
        );
        group.bench_with_input(
            BenchmarkId::new("unweighted_half_overlap", n),
            &n,
            |bench, _| bench.iter(|| black_box(a.jaccard_unweighted(black_box(&b)))),
        );
        // Disjoint sets (no shared keys).
        let d = make_set(10 * n, n);
        group.bench_with_input(BenchmarkId::new("weighted_disjoint", n), &n, |bench, _| {
            bench.iter(|| black_box(a.resemblance(black_box(&d))))
        });
    }
    group.finish();

    c.bench_function("weighted_set_merge_1000", |b| {
        let src = make_set(0, 1000);
        b.iter(|| {
            let mut acc = make_set(500, 1000);
            acc.merge(black_box(&src));
            black_box(acc.len())
        })
    });
}

criterion_group!(benches, bench_resemblance);
criterion_main!(benches);

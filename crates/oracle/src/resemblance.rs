//! Exact weighted Jaccard resemblance (paper Definition 2), written as
//! the paper states it:
//!
//! ```text
//!                Σ_{t ∈ A ∪ B} min(w_A(t), w_B(t))
//! Resem(A, B) = -----------------------------------
//!                Σ_{t ∈ A ∪ B} max(w_A(t), w_B(t))
//! ```
//!
//! (min over the union equals min over the intersection, since an absent
//! tuple has weight 0.) Unlike the production implementation — which
//! iterates the smaller hash map and rearranges the denominator to
//! `totalA + totalB − Σmin` — this walks the explicit union of both
//! supports in tuple order and accumulates both sums literally.

use crate::propagate::Mass;
use relstore::TupleRef;
use std::collections::BTreeSet;

/// Weighted Jaccard resemblance between two weighted tuple sets.
///
/// Returns 0 when the denominator is empty or non-positive (the paper's
/// convention for references with no shared context along a path).
pub fn weighted_jaccard(a: &Mass, b: &Mass) -> f64 {
    let union: BTreeSet<TupleRef> = a.keys().chain(b.keys()).copied().collect();
    let mut num = 0.0;
    let mut den = 0.0;
    for t in union {
        let wa = a.get(&t).copied().unwrap_or(0.0);
        let wb = b.get(&t).copied().unwrap_or(0.0);
        num += wa.min(wb);
        den += wa.max(wb);
    }
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{RelId, TupleId};

    fn mass(pairs: &[(u32, f64)]) -> Mass {
        pairs
            .iter()
            .map(|&(t, w)| (TupleRef::new(RelId(0), TupleId(t)), w))
            .collect()
    }

    #[test]
    fn hand_computed_example() {
        // A = {1: .5, 2: .5}, B = {2: .25, 3: .75}
        // Σ min = .25; Σ max = .5 + .5 + .75 = 1.75.
        let a = mass(&[(1, 0.5), (2, 0.5)]);
        let b = mass(&[(2, 0.25), (3, 0.75)]);
        let r = weighted_jaccard(&a, &b);
        assert!((r - 0.25 / 1.75).abs() < 1e-15, "{r}");
        assert!((weighted_jaccard(&b, &a) - r).abs() < 1e-15);
    }

    #[test]
    fn identical_sets_resemble_fully() {
        let a = mass(&[(1, 0.3), (2, 0.7)]);
        assert!((weighted_jaccard(&a, &a) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn disjoint_and_empty_sets() {
        let a = mass(&[(1, 0.5)]);
        let b = mass(&[(2, 0.5)]);
        assert_eq!(weighted_jaccard(&a, &b), 0.0);
        let empty = Mass::new();
        assert_eq!(weighted_jaccard(&empty, &a), 0.0);
        assert_eq!(weighted_jaccard(&empty, &empty), 0.0);
    }
}

//! Failure injection: corrupt inputs, degenerate databases, and hostile
//! edge cases must produce errors (or sane no-op results), never panics.

use datagen::{to_catalog, AmbiguousSpec, World, WorldConfig};
use distinct::{Distinct, DistinctConfig, TrainingConfig};
use relstore::{
    persist, AttrType, Catalog, Predicate, Query, SchemaBuilder, Tuple, Value,
};

fn training() -> TrainingConfig {
    TrainingConfig {
        positives: 20,
        negatives: 20,
        ..Default::default()
    }
}

#[test]
fn persist_load_with_missing_relation_file_errors() {
    let dir = std::env::temp_dir().join(format!("distinct_fail_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut c = Catalog::new();
    c.add_relation(
        SchemaBuilder::new("A")
            .key("a", AttrType::Int)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.insert("A", [Value::Int(1)].into()).unwrap();
    c.finalize(true).unwrap();
    persist::save_catalog(&c, &dir).unwrap();
    std::fs::remove_file(dir.join("A.csv")).unwrap();
    assert!(persist::load_catalog(&dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn persist_load_with_corrupt_relation_body_errors() {
    let dir = std::env::temp_dir().join(format!("distinct_fail2_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut c = Catalog::new();
    c.add_relation(
        SchemaBuilder::new("A")
            .key("a", AttrType::Int)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.insert("A", [Value::Int(1)].into()).unwrap();
    c.finalize(true).unwrap();
    persist::save_catalog(&c, &dir).unwrap();
    std::fs::write(dir.join("A.csv"), "a\nnot_an_int\n").unwrap();
    assert!(persist::load_catalog(&dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pipeline_on_database_with_no_informative_structure() {
    // A database where every reference links to one single shared paper:
    // all neighborhoods identical, no training signal. The pipeline must
    // fail gracefully at training (no unique names / degenerate features),
    // and unsupervised resolution must still return a clustering.
    let mut c = Catalog::new();
    c.add_relation(
        SchemaBuilder::new("Authors")
            .key("author", AttrType::Str)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.add_relation(
        SchemaBuilder::new("Papers")
            .key("paper", AttrType::Int)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.add_relation(
        SchemaBuilder::new("Publish")
            .fk("author", AttrType::Str, "Authors")
            .fk("paper", AttrType::Int, "Papers")
            .build()
            .unwrap(),
    )
    .unwrap();
    c.insert("Papers", [Value::Int(1)].into()).unwrap();
    for a in ["Shared Name", "Other Name"] {
        c.insert("Authors", [Value::str(a)].into()).unwrap();
    }
    for _ in 0..3 {
        c.insert("Publish", [Value::str("Shared Name"), Value::Int(1)].into())
            .unwrap();
    }
    c.insert("Publish", [Value::str("Other Name"), Value::Int(1)].into())
        .unwrap();

    let config = DistinctConfig {
        training: training(),
        ..Default::default()
    };
    let mut engine = Distinct::prepare(&c, "Publish", "author", config).unwrap();
    // Training has nothing to learn from (too few unique names).
    assert!(engine.train().is_err());
    // Resolution still works with uniform weights.
    let (refs, clustering) = engine.resolve_name("Shared Name");
    assert_eq!(refs.len(), 3);
    assert_eq!(clustering.labels.len(), 3);
}

#[test]
fn resolving_a_nonexistent_name_is_a_no_op() {
    let mut config = WorldConfig::tiny(3);
    config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![4, 3])];
    let d = to_catalog(&World::generate(config)).unwrap();
    let engine = Distinct::prepare(
        &d.catalog,
        "Publish",
        "author",
        DistinctConfig {
            training: training(),
            ..Default::default()
        },
    )
    .unwrap();
    let (refs, clustering) = engine.resolve_name("Nobody At All");
    assert!(refs.is_empty());
    assert!(clustering.labels.is_empty());
    assert_eq!(clustering.cluster_count(), 0);
}

#[test]
fn query_layer_rejects_type_confusion_gracefully() {
    let mut c = Catalog::new();
    c.add_relation(
        SchemaBuilder::new("A")
            .key("a", AttrType::Int)
            .data("s", AttrType::Str)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.insert("A", [Value::Int(1), Value::str("x")].into()).unwrap();
    c.finalize(true).unwrap();
    // Comparing an int column against a string value simply matches
    // nothing (cross-type order is total but never equal).
    let rows = Query::new(&c, "A")
        .unwrap()
        .filter("a", Predicate::Eq(Value::str("1")))
        .run()
        .unwrap();
    assert!(rows.is_empty());
}

#[test]
fn catalog_rejects_inserting_wrong_arity_after_finalize() {
    let mut c = Catalog::new();
    c.add_relation(
        SchemaBuilder::new("A")
            .key("a", AttrType::Int)
            .build()
            .unwrap(),
    )
    .unwrap();
    c.finalize(true).unwrap();
    assert!(c.insert("A", Tuple::new(vec![Value::Int(1), Value::Int(2)])).is_err());
    // The failed insert still invalidated finalization (mutable access).
    assert!(!c.is_finalized());
    c.finalize(true).unwrap();
}

#[test]
fn training_with_absurd_thresholds_errors_not_panics() {
    let mut config = WorldConfig::tiny(3);
    config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![4, 3])];
    let d = to_catalog(&World::generate(config)).unwrap();
    // Zero rare-name thresholds: nothing qualifies as unique.
    let cfg = DistinctConfig {
        training: TrainingConfig {
            max_first_name_freq: 0,
            max_last_name_freq: 0,
            ..training()
        },
        ..Default::default()
    };
    let mut engine = Distinct::prepare(&d.catalog, "Publish", "author", cfg).unwrap();
    assert!(engine.train().is_err());
}

//! The lint registry: every ID, its severity, and the invariant it guards.

use std::fmt;

/// Lint identifiers. `D000` is the meta-lint about the suppression
/// machinery itself; `D001`–`D007` guard the project invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the catalog below documents each variant
pub enum LintId {
    D000,
    D001,
    D002,
    D003,
    D004,
    D005,
    D006,
    D007,
}

/// How bad a violation is. `Deny` findings fail the build outright (after
/// baseline resolution); `Warn` findings fail only when new.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Violates a correctness invariant.
    Deny,
    /// Violates a hygiene contract.
    Warn,
}

impl LintId {
    /// All registered lints, in ID order.
    pub const ALL: [LintId; 8] = [
        LintId::D000,
        LintId::D001,
        LintId::D002,
        LintId::D003,
        LintId::D004,
        LintId::D005,
        LintId::D006,
        LintId::D007,
    ];

    /// Parse `"D001"` (case-insensitive) into an ID.
    pub fn parse(s: &str) -> Option<LintId> {
        let s = s.trim().to_ascii_uppercase();
        LintId::ALL.iter().copied().find(|id| id.name() == s)
    }

    /// The canonical `D00x` name.
    pub fn name(self) -> &'static str {
        match self {
            LintId::D000 => "D000",
            LintId::D001 => "D001",
            LintId::D002 => "D002",
            LintId::D003 => "D003",
            LintId::D004 => "D004",
            LintId::D005 => "D005",
            LintId::D006 => "D006",
            LintId::D007 => "D007",
        }
    }

    /// Severity class.
    pub fn severity(self) -> Severity {
        match self {
            LintId::D000 => Severity::Deny,
            LintId::D001 => Severity::Deny,
            LintId::D002 => Severity::Warn,
            LintId::D003 => Severity::Deny,
            LintId::D004 => Severity::Deny,
            LintId::D005 => Severity::Warn,
            LintId::D006 => Severity::Warn,
            LintId::D007 => Severity::Warn,
        }
    }

    /// One-line description (shown with each finding).
    pub fn title(self) -> &'static str {
        match self {
            LintId::D000 => "malformed, reason-less, or unused lint suppression",
            LintId::D001 => "hash-order iteration feeding float accumulation or ordered output",
            LintId::D002 => "panic path (unwrap/expect/panic!/literal index) in library code",
            LintId::D003 => "raw thread or channel construction outside crates/exec",
            LintId::D004 => "direct wall-clock read outside RunControl internals",
            LintId::D005 => "loop in a budget-scoped hot path without a guard",
            LintId::D006 => "lossy float cast or f32 reduction in numeric code",
            LintId::D007 => "public API item without a doc comment in crates/core",
        }
    }

    /// Full rationale for `--explain`: which invariant, why it matters for
    /// DISTINCT, and what the sanctioned fix is.
    pub fn rationale(self) -> &'static str {
        match self {
            LintId::D000 => {
                "Suppressions are part of the audit trail: `// distinct-lint: \
                 allow(D00x, reason=\"...\")` must name at least one known lint \
                 and carry a non-empty reason, and must actually match a finding \
                 on its line (or the next line, for a comment standing alone). \
                 Anything else is noise that hides real debt, so the analyzer \
                 rejects it."
            }
            LintId::D001 => {
                "DISTINCT promises bit-identical output at any thread count. \
                 Iterating a HashMap/HashSet/FxHashMap while summing floats or \
                 appending to ordered output makes the result depend on hash \
                 iteration order — float addition is not associative, so the \
                 weighted-Jaccard and walk-probability pillars silently drift \
                 when the map's insertion history changes. Fix: iterate in \
                 sorted key order (collect + sort, or a BTreeMap), as \
                 crates/oracle does, or show the accumulation is order-free \
                 (integer counters, max/min) in an allow reason."
            }
            LintId::D002 => {
                "PR 1's graceful-degradation contract: library code reachable \
                 from resolve()/train_with() must surface failures as typed \
                 errors or Degraded reports, never panics. unwrap(), expect(), \
                 panic!(), unreachable!() and indexing by integer literal are \
                 all panic paths. Fix: propagate a DistinctError / StoreError, \
                 return Option, or document the proven invariant in an allow \
                 reason. Test code is exempt."
            }
            LintId::D003 => {
                "All parallelism goes through crates/exec's ordered-commit \
                 pool: it is the only code that knows how to keep output \
                 deterministic under any thread count and to honor RunControl \
                 at chunk boundaries. A raw std::thread::spawn or mpsc channel \
                 anywhere else bypasses both guarantees. Fix: use \
                 exec::Executor (par_map_guarded / par_chunks), or move the \
                 primitive into crates/exec."
            }
            LintId::D004 => {
                "Deadlines are RunControl's job: it amortizes clock reads and \
                 latches the first trip so every worker observes one coherent \
                 interruption cause. Scattered Instant::now()/SystemTime reads \
                 make timing-dependent control flow that no test can pin down. \
                 Reading the clock for *reporting* (ExecReport wall times, the \
                 eval timing harness) is fine — say so in an allow reason."
            }
            LintId::D005 => {
                "Every hot loop must charge the shared work budget, or a \
                 budget/deadline/cancellation can only trip between stages and \
                 the resilience contract (PR 1) silently weakens as code moves. \
                 In the designated hot-path files, a function that loops must \
                 either accept a guard parameter or call a guard/charge/status \
                 control hook. Bounded per-pair helpers charged by their \
                 caller at pair granularity should say so in an allow reason."
            }
            LintId::D006 => {
                "The numeric pillars accumulate in f64 end to end; an `as f32` \
                 narrowing (or an f32 sum) anywhere in core/cluster/svm/ \
                 relgraph/eval library code silently halves the mantissa and \
                 breaks the 1e-9 oracle-differential tolerance. Fix: stay in \
                 f64; cast only at presentation boundaries (and allow with a \
                 reason there)."
            }
            LintId::D007 => {
                "crates/core is the public API surface of the system; every \
                 public item there must carry a doc comment so the request/ \
                 outcome vocabulary (ResolveRequest, Degraded, ExecReport...) \
                 stays discoverable. rustc's missing_docs warning already \
                 guards rustdoc-visible items; this pass keeps the invariant \
                 in the same report as the rest and covers macro-generated \
                 gaps rustc misses."
            }
        }
    }
}

impl fmt::Display for LintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub id: LintId,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What was seen (short, single line).
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {} — {}",
            self.id,
            self.file,
            self.line,
            self.id.title(),
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for id in LintId::ALL {
            assert_eq!(LintId::parse(id.name()), Some(id));
            assert_eq!(LintId::parse(&id.name().to_lowercase()), Some(id));
        }
        assert_eq!(LintId::parse("D999"), None);
        assert_eq!(LintId::parse(""), None);
    }

    #[test]
    fn every_lint_has_title_and_rationale() {
        for id in LintId::ALL {
            assert!(!id.title().is_empty());
            assert!(id.rationale().len() > 80, "{id} rationale too thin");
        }
    }
}

//! Hand-computed fixtures for every clustering metric.
//!
//! Three tiny partitions whose metric values were worked out on paper,
//! including the two degenerate predictions (all-singletons, single
//! cluster) where metric conventions — not formulas — decide the answer.
//! If any implementation, convention, or edge-case choice changes, these
//! numbers move and the test says exactly which metric drifted.

use eval::{adjusted_rand_index, bcubed_scores, pairwise_scores, rand_index};

fn close(actual: f64, expected: f64, what: &str) {
    assert!(
        (actual - expected).abs() < 1e-12,
        "{what}: got {actual}, hand-computed {expected}"
    );
}

/// Fixture A: gold {0,1} {2,3}, predicted all-singletons.
///
/// Pairwise: no predicted positive pairs, so precision falls back to 1.0
/// (the "no claims, no errors" convention) and recall is 0 over the two
/// gold pairs. B³: each item's singleton is pure (P = 1) and captures
/// half its 2-item gold cluster (R = 1/2). Rand: the 4 cross pairs are
/// correctly separated, the 2 gold pairs are not: 4/6. ARI: singleton
/// prediction is chance level, exactly 0.
#[test]
fn all_singletons_prediction() {
    let gold = [0, 0, 1, 1];
    let pred = [0, 1, 2, 3];
    let pw = pairwise_scores(&gold, &pred);
    close(pw.precision, 1.0, "pairwise precision");
    close(pw.recall, 0.0, "pairwise recall");
    close(pw.f_measure, 0.0, "pairwise F");
    let b3 = bcubed_scores(&gold, &pred);
    close(b3.precision, 1.0, "B³ precision");
    close(b3.recall, 0.5, "B³ recall");
    close(b3.f_measure, 2.0 / 3.0, "B³ F");
    close(rand_index(&gold, &pred), 2.0 / 3.0, "Rand index");
    close(
        adjusted_rand_index(&gold, &pred),
        0.0,
        "adjusted Rand index",
    );
}

/// Fixture B: gold {0,1} {2,3}, predicted one 4-item cluster.
///
/// Pairwise: all 6 pairs claimed, 2 correct: P = 1/3, R = 1, F = 1/2.
/// B³: every item's predicted cluster is half-impure (P = 1/2) but
/// captures its whole gold cluster (R = 1). Rand: only the 2 gold pairs
/// score: 2/6. ARI: merging everything is also chance level, exactly 0.
#[test]
fn single_cluster_prediction() {
    let gold = [0, 0, 1, 1];
    let pred = [0, 0, 0, 0];
    let pw = pairwise_scores(&gold, &pred);
    close(pw.precision, 1.0 / 3.0, "pairwise precision");
    close(pw.recall, 1.0, "pairwise recall");
    close(pw.f_measure, 0.5, "pairwise F");
    let b3 = bcubed_scores(&gold, &pred);
    close(b3.precision, 0.5, "B³ precision");
    close(b3.recall, 1.0, "B³ recall");
    close(b3.f_measure, 2.0 / 3.0, "B³ F");
    close(rand_index(&gold, &pred), 1.0 / 3.0, "Rand index");
    close(
        adjusted_rand_index(&gold, &pred),
        0.0,
        "adjusted Rand index",
    );
}

/// Fixture C: gold {0,1,2} {3,4}, predicted {0,1} {2,3} {4} — one split,
/// one wrong merge, one stray singleton.
///
/// Pairwise over the 10 pairs: predicted {01, 23}, gold {01, 02, 12,
/// 34}; only 01 is right: P = 1/2, R = 1/4, F = 1/3. B³ per item
/// (P, R): (1, 2/3), (1, 2/3), (1/2, 1/3), (1/2, 1/2), (1, 1/2) →
/// P = 4/5, R = 8/15, F = 2·(4/5)(8/15)/(4/5 + 8/15) = 16/25. Rand:
/// 1 true positive + 5 true negatives = 6/10. ARI: expected index
/// 4·2/10 = 4/5, max (4+2)/2 = 3 → (1 − 4/5)/(3 − 4/5) = 1/11.
#[test]
fn partial_overlap_prediction() {
    let gold = [0, 0, 0, 1, 1];
    let pred = [0, 0, 1, 1, 2];
    let pw = pairwise_scores(&gold, &pred);
    close(pw.precision, 0.5, "pairwise precision");
    close(pw.recall, 0.25, "pairwise recall");
    close(pw.f_measure, 1.0 / 3.0, "pairwise F");
    let b3 = bcubed_scores(&gold, &pred);
    close(b3.precision, 0.8, "B³ precision");
    close(b3.recall, 8.0 / 15.0, "B³ recall");
    close(b3.f_measure, 0.64, "B³ F");
    close(rand_index(&gold, &pred), 0.6, "Rand index");
    close(
        adjusted_rand_index(&gold, &pred),
        1.0 / 11.0,
        "adjusted Rand index",
    );
}

/// Metric conventions must not depend on label numbering: relabeling
/// clusters arbitrarily leaves every score unchanged.
#[test]
fn scores_are_invariant_to_label_renaming() {
    let gold = [0, 0, 0, 1, 1];
    let pred = [0, 0, 1, 1, 2];
    let gold_renamed = [7, 7, 7, 3, 3];
    let pred_renamed = [9, 9, 4, 4, 0];
    assert_eq!(
        pairwise_scores(&gold, &pred),
        pairwise_scores(&gold_renamed, &pred_renamed)
    );
    assert_eq!(
        bcubed_scores(&gold, &pred),
        bcubed_scores(&gold_renamed, &pred_renamed)
    );
    assert_eq!(
        rand_index(&gold, &pred),
        rand_index(&gold_renamed, &pred_renamed)
    );
    assert_eq!(
        adjusted_rand_index(&gold, &pred),
        adjusted_rand_index(&gold_renamed, &pred_renamed)
    );
}

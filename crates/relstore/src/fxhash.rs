//! A small, fast, non-cryptographic hasher in the style of rustc's FxHash.
//!
//! The store hashes millions of small keys (integers, short strings, tuple
//! ids) on hot paths such as index lookups and neighbor-set intersection.
//! SipHash — the standard library default — is designed to resist HashDoS,
//! which is irrelevant for an in-process research store, and is markedly
//! slower for small keys. This module provides a word-at-a-time
//! multiply-rotate hasher and type aliases for maps and sets built on it.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit golden-ratio constant used to mix each word into the state.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiplicative hasher (FxHash algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
            // Mix in the length so prefixes of each other hash differently.
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&(1u32, "a")), hash_of(&(1u32, "a")));
    }

    #[test]
    fn different_values_usually_hash_differently() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
        // Prefixes must not collide (length mixing).
        assert_ne!(hash_of(&"abcdefgh"), hash_of(&"abcdefg"));
        assert_ne!(hash_of(&""), hash_of(&"\0"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("x".into(), 1);
        m.insert("y".into(), 2);
        assert_eq!(m.get("x"), Some(&1));

        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i);
        }
        assert_eq!(s.len(), 1000);
        assert!(s.contains(&999));
    }

    #[test]
    fn build_hasher_is_deterministic() {
        let b = FxBuildHasher::default();
        let h1 = { b.hash_one(7u64) };
        let h2 = { b.hash_one(7u64) };
        assert_eq!(h1, h2);
    }

    #[test]
    fn distribution_smoke_test() {
        // 10k sequential integers should produce close to 10k distinct hashes.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(hash_of(&i));
        }
        assert!(seen.len() > 9_990, "too many collisions: {}", seen.len());
    }
}

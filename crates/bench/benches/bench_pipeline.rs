//! Criterion bench: end-to-end DISTINCT stages — profile construction and
//! full name resolution — on a generated world.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{to_catalog, AmbiguousSpec, World, WorldConfig};
use distinct::{build_profile, Distinct, DistinctConfig, TrainingConfig};
use relgraph::LinkGraph;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut config = WorldConfig::tiny(5);
    config.ambiguous = vec![AmbiguousSpec::new("Wei Wang", vec![20, 12, 8])];
    let d = to_catalog(&World::generate(config)).unwrap();
    let engine_config = DistinctConfig {
        training: TrainingConfig {
            positives: 60,
            negatives: 60,
            ..Default::default()
        },
        ..Default::default()
    };
    let engine = Distinct::prepare(&d.catalog, "Publish", "author", engine_config.clone()).unwrap();
    let refs = d.truths[0].refs.clone();

    // Raw profile construction (uncached).
    let ex = relstore::expand_values(&d.catalog).unwrap();
    let graph = LinkGraph::build(&ex.catalog);
    let paths = distinct::PathSet::build(&ex.catalog, "Publish", "author", 4).unwrap();
    c.bench_function("profile_build_one_reference", |b| {
        b.iter(|| {
            let p = build_profile(&graph, &ex.catalog, &paths, black_box(refs[0]));
            black_box(p.neighbor_total())
        })
    });

    // Resolution of a 40-reference name with warm profile cache.
    for &r in &refs {
        let _ = engine.profile(r);
    }
    c.bench_function("resolve_40_references_cached", |b| {
        b.iter(|| {
            let outcome = engine.resolve(&distinct::ResolveRequest::new(black_box(&refs)));
            black_box(outcome.clustering.cluster_count())
        })
    });

    // Engine preparation (expansion + path enumeration + CSR build).
    let mut group = c.benchmark_group("prepare");
    group.sample_size(10);
    group.bench_function("prepare_engine", |b| {
        b.iter(|| {
            let e =
                Distinct::prepare(&d.catalog, "Publish", "author", engine_config.clone()).unwrap();
            black_box(e.paths().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);

//! A hand-rolled Rust lexer, just deep enough for line-accurate lints.
//!
//! The analyzer does not need a full grammar: every pass works on a token
//! stream where comments and literal *contents* have been stripped, so an
//! `unwrap` inside a string or a doc example can never trip a lint. What
//! must be exact is the hard part of scanning Rust by hand: nested block
//! comments, raw strings with arbitrary `#` fences, char literals versus
//! lifetimes, and line numbers that survive multi-line tokens.

/// What a token is, as far as the lints care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, ...).
    Ident,
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Integer literal (`0`, `42u64`, `0xff`).
    Int,
    /// Float literal (`0.5`, `1e-9`).
    Float,
    /// String, raw-string, byte-string, or char literal (contents dropped).
    Literal,
    /// One punctuation character (`.`, `:`, `(`, `!`, ...).
    Punct,
    /// A `//` or `/* */` comment, text preserved (suppressions live here).
    Comment,
    /// A `///`, `//!`, `/** */`, or `/*! */` doc comment.
    DocComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text. Comments keep their full text; string/char literals are
    /// reduced to `""` so their contents can never match a pass.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lex `src` into tokens. Never fails: unterminated constructs consume to
/// end of input (the analyzer lints real, compiling code; fixtures are
/// well-formed too, so graceful EOF handling is all that is needed).
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = chars.len();

    // Count newlines in chars[from..to] (multi-line tokens advance `line`).
    let newlines = |from: usize, to: usize| -> u32 {
        chars[from..to].iter().filter(|&&c| c == '\n').count() as u32
    };

    while i < n {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && (chars[i + 1] == '/' || chars[i + 1] == '*') {
            let start = i;
            let start_line = line;
            let kind;
            if chars[i + 1] == '/' {
                // Line comment; `///` and `//!` are doc comments, but a
                // bare `////...` divider is a plain comment again.
                let is_doc = (i + 2 < n && chars[i + 2] == '!')
                    || (i + 2 < n && chars[i + 2] == '/' && !(i + 3 < n && chars[i + 3] == '/'));
                kind = if is_doc {
                    TokKind::DocComment
                } else {
                    TokKind::Comment
                };
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            } else {
                // Block comment, possibly nested.
                let is_doc = i + 2 < n && (chars[i + 2] == '*' || chars[i + 2] == '!');
                kind = if is_doc {
                    TokKind::DocComment
                } else {
                    TokKind::Comment
                };
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            line += newlines(start, i);
            toks.push(Tok {
                kind,
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Raw strings: r"...", r#"..."#, br#"..."#, with any fence depth.
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (prefix_len, rest) = if c == 'b' && chars[i + 1] == 'r' {
                (2, i + 2)
            } else if c == 'r' {
                (1, i + 1)
            } else {
                (0, i)
            };
            if prefix_len > 0 && rest < n && (chars[rest] == '#' || chars[rest] == '"') {
                let start = i;
                let start_line = line;
                let mut j = rest;
                let mut fences = 0usize;
                while j < n && chars[j] == '#' {
                    fences += 1;
                    j += 1;
                }
                if j < n && chars[j] == '"' {
                    j += 1;
                    // Scan to `"` followed by `fences` hashes.
                    'raw: while j < n {
                        if chars[j] == '"' {
                            let mut k = j + 1;
                            let mut seen = 0usize;
                            while k < n && chars[k] == '#' && seen < fences {
                                seen += 1;
                                k += 1;
                            }
                            if seen == fences {
                                j = k;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    line += newlines(start, j);
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
            }
        }
        // Plain and byte strings.
        if c == '"' || (c == 'b' && i + 1 < n && chars[i + 1] == '"') {
            let start = i;
            let start_line = line;
            i += if c == 'b' { 2 } else { 1 };
            while i < n {
                if chars[i] == '\\' {
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    i += 1;
                    break;
                }
                i += 1;
            }
            line += newlines(start, i.min(n));
            i = i.min(n);
            toks.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line: start_line,
            });
            continue;
        }
        // Lifetimes vs char literals. A `'` followed by an identifier and
        // NOT a closing `'` is a lifetime (or loop label).
        if c == '\'' {
            if i + 1 < n && is_ident_start(chars[i + 1]) {
                // Find the end of the identifier run.
                let mut j = i + 1;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                if j < n && chars[j] == '\'' && j == i + 2 {
                    // 'x' — a one-char char literal.
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text: String::new(),
                        line,
                    });
                    i = j + 1;
                    continue;
                }
                // Lifetime / loop label.
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[i..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            // Escaped or punctuation char literal: '\n', '\'', '(' ...
            let mut j = i + 1;
            if j < n && chars[j] == '\\' {
                j += 2;
            } else {
                j += 1;
            }
            while j < n && chars[j] != '\'' {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line,
            });
            i = (j + 1).min(n);
            continue;
        }
        // Identifiers and keywords (including r#ident raw identifiers).
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Numeric literals. Good enough: digits, an optional fraction,
        // exponents with signs; suffixes fold into the token.
        if c.is_ascii_digit() {
            let start = i;
            let is_radix =
                c == '0' && i + 1 < n && matches!(chars[i + 1], 'x' | 'X' | 'b' | 'B' | 'o' | 'O');
            let consume_digits = |i: &mut usize| {
                while *i < n && (chars[*i].is_ascii_alphanumeric() || chars[*i] == '_') {
                    // Exponent sign: `1e-9`, `2.5E+3` (not in hex literals).
                    if !is_radix
                        && (chars[*i] == 'e' || chars[*i] == 'E')
                        && *i + 1 < n
                        && (chars[*i + 1] == '+' || chars[*i + 1] == '-')
                    {
                        *i += 1;
                    }
                    *i += 1;
                }
            };
            consume_digits(&mut i);
            // Fraction: `1.5` but not `1.method()` or `1..2`.
            if i < n && chars[i] == '.' && i + 1 < n && chars[i + 1].is_ascii_digit() {
                i += 1;
                consume_digits(&mut i);
            }
            let text: String = chars[start..i].iter().collect();
            // An `e`/`E` only marks a float when it is a genuine exponent
            // (digits before it, a digit or sign after) — otherwise it is
            // part of a suffix like `usize`.
            let has_exponent = {
                let b = text.as_bytes();
                b.iter().enumerate().find_map(|(k, &ch)| {
                    if ch == b'e' || ch == b'E' {
                        Some(
                            k + 1 < b.len() && {
                                let nx = b[k + 1];
                                nx.is_ascii_digit() || nx == b'+' || nx == b'-'
                            },
                        )
                    } else if ch.is_ascii_digit() || ch == b'_' || ch == b'.' {
                        None
                    } else {
                        Some(false)
                    }
                })
            } == Some(true);
            let is_float = text.contains('.') || (!is_radix && has_exponent);
            toks.push(Tok {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text,
                line,
            });
            continue;
        }
        // Everything else: one punctuation character.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("foo.unwrap()");
        assert_eq!(
            t,
            vec![
                (TokKind::Ident, "foo".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Ident, "unwrap".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Punct, ")".into()),
            ]
        );
    }

    #[test]
    fn strings_are_opaque() {
        // An `unwrap` inside a string must not surface as an identifier.
        let t = lex(r#"let s = "x.unwrap()"; y.unwrap()"#);
        let unwraps = t.iter().filter(|t| t.is_ident("unwrap")).count();
        assert_eq!(unwraps, 1);
    }

    #[test]
    fn raw_strings_with_fences() {
        let t = lex(r##"let s = r#"contains "quotes" and unwrap()"#; done"##);
        assert!(t.iter().any(|t| t.is_ident("done")));
        assert!(!t.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn nested_block_comments() {
        let t = lex("/* a /* nested */ still comment */ code");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].kind, TokKind::Comment);
        assert!(t[1].is_ident("code"));
    }

    #[test]
    fn doc_vs_plain_comments() {
        let t = lex("/// doc\n//! inner\n// plain\n//// divider\nfn f() {}");
        let doc = t.iter().filter(|t| t.kind == TokKind::DocComment).count();
        let plain = t.iter().filter(|t| t.kind == TokKind::Comment).count();
        assert_eq!(doc, 2);
        assert_eq!(plain, 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes = t.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        let chars = t.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "a\n\"two\nline\"\nb /* c\nd */ e";
        let t = lex(src);
        let a = t.iter().find(|t| t.is_ident("a")).unwrap();
        let b = t.iter().find(|t| t.is_ident("b")).unwrap();
        let e = t.iter().find(|t| t.is_ident("e")).unwrap();
        assert_eq!(a.line, 1);
        assert_eq!(b.line, 4);
        assert_eq!(e.line, 5);
    }

    #[test]
    fn numeric_kinds() {
        let t = kinds("1 2.5 0xff 1e-9 3usize");
        assert_eq!(t[0].0, TokKind::Int);
        assert_eq!(t[1].0, TokKind::Float);
        assert_eq!(t[2].0, TokKind::Int);
        assert_eq!(t[3].0, TokKind::Float);
        assert_eq!(t[4].0, TokKind::Int);
    }

    #[test]
    fn float_method_call_is_not_a_fraction() {
        let t = kinds("1.max(2)");
        assert_eq!(t[0], (TokKind::Int, "1".into()));
        assert_eq!(t[2], (TokKind::Ident, "max".into()));
    }
}

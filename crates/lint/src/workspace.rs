//! Workspace discovery: find the root, walk it, classify every `.rs` file.

use crate::model::{classify, FileCtx};
use std::fs;
use std::path::{Path, PathBuf};

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` contains a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collect every analyzable `.rs` file under `root`, in sorted path order
/// so reports and the baseline are stable. Skips `target/`, `vendor/`,
/// hidden directories, and the lint fixtures (see [`classify`]).
pub fn collect_files(root: &Path) -> Result<Vec<FileCtx>, String> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut out = Vec::new();
    for rel in paths {
        let Some((crate_name, role)) = classify(&rel) else {
            continue;
        };
        let src = fs::read_to_string(root.join(&rel)).map_err(|e| format!("read {rel}: {e}"))?;
        out.push(FileCtx::new(&rel, &crate_name, role, &src));
    }
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || name == "target" || name == "vendor" {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip_prefix: {e}"))?
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        assert!(root.join("Cargo.toml").exists());
        let files = collect_files(&root).expect("collect");
        // The workspace certainly contains its own core pipeline.
        assert!(files
            .iter()
            .any(|f| f.path == "crates/core/src/pipeline.rs"));
        // And never the vendored stubs or lint fixtures.
        assert!(files.iter().all(|f| !f.path.starts_with("vendor/")));
        assert!(files
            .iter()
            .all(|f| !f.path.starts_with("crates/lint/tests/fixtures/")));
        // Sorted, so reports are stable run to run.
        let mut sorted: Vec<_> = files.iter().map(|f| f.path.clone()).collect();
        sorted.sort();
        assert_eq!(
            sorted,
            files.iter().map(|f| f.path.clone()).collect::<Vec<_>>()
        );
    }
}

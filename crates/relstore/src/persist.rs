//! Catalog persistence: save/load a whole database to a directory.
//!
//! Layout: `schema.json` holds the ordered relation schemas; each relation
//! body lives in `<name>.csv` (RFC-4180 quoting via [`crate::csv`]).
//! Relation names are sanitized for the filesystem (`#`, `/`, etc. map to
//! `_`), with the original names preserved in the schema file. Loading
//! re-finalizes the catalog with integrity checking.

use crate::catalog::Catalog;
use crate::csv::{load_csv, to_csv};
use crate::error::{Result, StoreError};
use crate::schema::RelationSchema;
use std::fs;
use std::path::Path;

/// Map a relation name to a safe file stem.
fn file_stem(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Collision-free file stems for an ordered list of relation names
/// (sanitization can alias, e.g. `R#x` and `R_x`; later duplicates get a
/// positional suffix). Deterministic, so save and load agree.
fn unique_stems<'a>(names: impl Iterator<Item = &'a str>) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    names
        .enumerate()
        .map(|(i, name)| {
            let base = file_stem(name);
            if seen.insert(base.clone()) {
                base
            } else {
                let stem = format!("{base}__{i}");
                seen.insert(stem.clone());
                stem
            }
        })
        .collect()
}

fn io_err(context: &str, e: std::io::Error) -> StoreError {
    StoreError::Csv {
        line: 0,
        reason: format!("{context}: {e}"),
    }
}

/// Save a catalog into `dir` (created if absent).
pub fn save_catalog(catalog: &Catalog, dir: &Path) -> Result<()> {
    fs::create_dir_all(dir).map_err(|e| io_err("create dir", e))?;
    let schemas: Vec<&RelationSchema> = catalog.relations().map(|(_, r)| r.schema()).collect();
    let schema_json = serde_json::to_string_pretty(&schemas).expect("schemas serialize");
    fs::write(dir.join("schema.json"), schema_json).map_err(|e| io_err("write schema", e))?;
    let stems = unique_stems(catalog.relations().map(|(_, r)| r.name()));
    for ((_, rel), stem) in catalog.relations().zip(&stems) {
        let path = dir.join(format!("{stem}.csv"));
        fs::write(&path, to_csv(rel)).map_err(|e| io_err("write relation", e))?;
    }
    Ok(())
}

/// Load a catalog saved by [`save_catalog`]. The result is finalized with
/// integrity checking enabled.
pub fn load_catalog(dir: &Path) -> Result<Catalog> {
    let schema_json =
        fs::read_to_string(dir.join("schema.json")).map_err(|e| io_err("read schema", e))?;
    let schemas: Vec<RelationSchema> =
        serde_json::from_str(&schema_json).map_err(|e| StoreError::Csv {
            line: 0,
            reason: format!("bad schema.json: {e}"),
        })?;
    let mut catalog = Catalog::new();
    let stems = unique_stems(schemas.iter().map(|s| s.name.as_str()));
    for (schema, stem) in schemas.into_iter().zip(stems) {
        let rid = catalog.add_relation(schema)?;
        let path = dir.join(format!("{stem}.csv"));
        let text = fs::read_to_string(&path).map_err(|e| io_err("read relation", e))?;
        load_csv(catalog.relation_mut(rid), &text)?;
    }
    catalog.finalize(true)?;
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::value::{AttrType, Value};

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            SchemaBuilder::new("Venues")
                .key("venue", AttrType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_relation(
            SchemaBuilder::new("Papers")
                .key("paper", AttrType::Int)
                .fk("venue", AttrType::Str, "Venues")
                .data("title", AttrType::Str)
                .build()
                .unwrap(),
        )
        .unwrap();
        c.insert("Venues", [Value::str("VLDB")].into()).unwrap();
        c.insert("Venues", [Value::str("Conf, with comma")].into())
            .unwrap();
        c.insert(
            "Papers",
            [
                Value::Int(1),
                Value::str("VLDB"),
                Value::str("quoted \"title\""),
            ]
            .into(),
        )
        .unwrap();
        c.insert(
            "Papers",
            [Value::Int(2), Value::str("VLDB"), Value::Null].into(),
        )
        .unwrap();
        c.finalize(true).unwrap();
        c
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("relstore_persist_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_preserves_everything() {
        let dir = temp_dir("rt");
        let original = sample_catalog();
        save_catalog(&original, &dir).unwrap();
        let loaded = load_catalog(&dir).unwrap();
        assert_eq!(loaded.relation_count(), original.relation_count());
        assert_eq!(loaded.tuple_count(), original.tuple_count());
        assert!(loaded.is_finalized());
        for (rid, rel) in original.relations() {
            let other = loaded.relation(rid);
            assert_eq!(rel.name(), other.name());
            assert_eq!(rel.schema(), other.schema());
            for (tid, t) in rel.iter() {
                assert_eq!(t, other.tuple(tid));
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pseudo_relation_names_are_sanitized() {
        // `Conferences#publisher`-style names must map to valid filenames.
        let dir = temp_dir("pseudo");
        let original = crate::expand::expand_values(&sample_catalog())
            .unwrap()
            .catalog;
        save_catalog(&original, &dir).unwrap();
        let loaded = load_catalog(&dir).unwrap();
        assert!(loaded.relation_id("Papers#title").is_some());
        assert_eq!(loaded.tuple_count(), original.tuple_count());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_errors() {
        let dir = temp_dir("missing");
        assert!(load_catalog(&dir).is_err());
    }

    #[test]
    fn corrupt_schema_errors() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("schema.json"), "{ not json").unwrap();
        assert!(load_catalog(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}

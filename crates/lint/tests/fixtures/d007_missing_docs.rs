//@ crate: core
//@ path: crates/core/src/bad_d007.rs
//@ role: library

pub struct Naked { //~ D007
    /// Documented fields do not rescue an undocumented item.
    pub count: usize,
}

/// Documented struct: fine.
pub struct Fine {
    inner: u32,
}

pub fn naked_fn() -> u32 { //~ D007
    7
}

#[derive(Debug)]
pub enum Bare { //~ D007
    One,
}

/// Attributes between the doc comment and the item are fine.
#[derive(Debug)]
pub enum Covered {
    Two,
}

pub(crate) fn internal() -> &'static Fine {
    unreachable_helper()
}

fn unreachable_helper() -> &'static Fine {
    &Fine { inner: 0 }
}

//! Pairwise clustering metrics — exactly the paper's §5 definitions.
//!
//! Given the gold clustering `C*` and a predicted clustering `C`:
//! *TP* counts reference pairs co-clustered in both, *FP* pairs
//! co-clustered only in the prediction, *FN* pairs co-clustered only in
//! the gold standard. Precision = TP/(TP+FP), recall = TP/(TP+FN),
//! f-measure = their harmonic mean.

use serde::{Deserialize, Serialize};

/// Pair counts underlying the metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PairCounts {
    /// Pairs together in both clusterings.
    pub tp: u64,
    /// Pairs together only in the prediction.
    pub fp: u64,
    /// Pairs together only in the gold standard.
    pub fn_: u64,
    /// Pairs apart in both clusterings.
    pub tn: u64,
}

/// Precision / recall / f-measure triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrfScores {
    /// TP / (TP + FP); 1.0 when the prediction makes no positive pairs.
    pub precision: f64,
    /// TP / (TP + FN); 1.0 when the gold standard has no positive pairs.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f_measure: f64,
}

impl PairCounts {
    /// Count pairs from two parallel label vectors.
    ///
    /// `gold[i]` and `pred[i]` are the cluster labels of item `i`; label
    /// values are arbitrary (only equality matters).
    ///
    /// # Panics
    /// Panics if the vectors differ in length.
    pub fn from_labels(gold: &[usize], pred: &[usize]) -> Self {
        assert_eq!(gold.len(), pred.len(), "label vectors must be parallel");
        let n = gold.len();
        let mut counts = PairCounts::default();
        for i in 0..n {
            for j in (i + 1)..n {
                let same_gold = gold[i] == gold[j];
                let same_pred = pred[i] == pred[j];
                match (same_gold, same_pred) {
                    (true, true) => counts.tp += 1,
                    (false, true) => counts.fp += 1,
                    (true, false) => counts.fn_ += 1,
                    (false, false) => counts.tn += 1,
                }
            }
        }
        counts
    }

    /// Accumulate another set of counts (for micro-averaging across names).
    pub fn add(&mut self, other: PairCounts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }

    /// Pairwise accuracy: fraction of reference pairs whose together/apart
    /// decision matches the gold standard (the "accuracy" bar of Fig. 4).
    /// 1.0 when there are no pairs at all.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.fn_ + self.tn;
        if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Derive precision / recall / f-measure.
    ///
    /// Empty denominators score 1.0 (a prediction that asserts no pairs
    /// has perfect precision; a gold standard with no pairs is perfectly
    /// recalled) — the standard convention so that singleton-only names do
    /// not corrupt averages.
    pub fn scores(&self) -> PrfScores {
        let precision = if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        };
        let recall = if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        };
        let f_measure = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        PrfScores {
            precision,
            recall,
            f_measure,
        }
    }
}

/// Convenience: scores straight from label vectors.
pub fn pairwise_scores(gold: &[usize], pred: &[usize]) -> PrfScores {
    PairCounts::from_labels(gold, pred).scores()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_prediction() {
        let gold = vec![0, 0, 1, 1, 2];
        let s = pairwise_scores(&gold, &gold);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f_measure, 1.0);
    }

    #[test]
    fn label_values_do_not_matter() {
        let gold = vec![0, 0, 1, 1];
        let pred = vec![7, 7, 3, 3];
        let s = pairwise_scores(&gold, &pred);
        assert_eq!(s.f_measure, 1.0);
    }

    #[test]
    fn all_merged_prediction_has_full_recall() {
        let gold = vec![0, 0, 1, 1];
        let pred = vec![0, 0, 0, 0];
        let c = PairCounts::from_labels(&gold, &pred);
        assert_eq!(
            c,
            PairCounts {
                tp: 2,
                fp: 4,
                fn_: 0,
                tn: 0
            }
        );
        let s = c.scores();
        assert_eq!(s.recall, 1.0);
        assert!((s.precision - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn all_singletons_prediction_has_full_precision() {
        let gold = vec![0, 0, 1, 1];
        let pred = vec![0, 1, 2, 3];
        let c = PairCounts::from_labels(&gold, &pred);
        assert_eq!(
            c,
            PairCounts {
                tp: 0,
                fp: 0,
                fn_: 2,
                tn: 4
            }
        );
        let s = c.scores();
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f_measure, 0.0);
    }

    #[test]
    fn split_one_gold_cluster_costs_recall_only() {
        // One author's 4 refs split into two groups of 2 (the "Michael
        // Wagner" failure mode): precision 1, recall = 2/6.
        let gold = vec![0, 0, 0, 0];
        let pred = vec![0, 0, 1, 1];
        let s = pairwise_scores(&gold, &pred);
        assert_eq!(s.precision, 1.0);
        assert!((s.recall - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_mixed_case() {
        let gold = vec![0, 0, 1, 1];
        let pred = vec![0, 1, 1, 0];
        // gold pairs: (0,1), (2,3). pred pairs: (0,3), (1,2).
        let c = PairCounts::from_labels(&gold, &pred);
        assert_eq!(
            c,
            PairCounts {
                tp: 0,
                fp: 2,
                fn_: 2,
                tn: 2
            }
        );
    }

    #[test]
    fn accumulation_micro_averages() {
        let mut total = PairCounts::from_labels(&[0, 0], &[0, 0]); // tp 1
        total.add(PairCounts::from_labels(&[0, 1], &[0, 0])); // fp 1
        assert_eq!(
            total,
            PairCounts {
                tp: 1,
                fp: 1,
                fn_: 0,
                tn: 0
            }
        );
        let s = total.scores();
        assert_eq!(s.precision, 0.5);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn empty_and_single_item() {
        let s = pairwise_scores(&[], &[]);
        assert_eq!(s.f_measure, 1.0);
        let s = pairwise_scores(&[0], &[0]);
        assert_eq!(s.f_measure, 1.0);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_lengths_panic() {
        pairwise_scores(&[0, 1], &[0]);
    }

    #[test]
    fn accuracy_counts_both_decisions() {
        // gold {0,1},{2,3}; pred {0,1},{2},{3}: tp 1, tn 4, fn 1, fp 0.
        let c = PairCounts::from_labels(&[0, 0, 1, 1], &[0, 0, 1, 2]);
        assert!((c.accuracy() - 5.0 / 6.0).abs() < 1e-12);
        // Perfect prediction = accuracy 1.
        let c = PairCounts::from_labels(&[0, 0, 1], &[0, 0, 1]);
        assert_eq!(c.accuracy(), 1.0);
        // No pairs at all.
        assert_eq!(PairCounts::default().accuracy(), 1.0);
    }

    proptest! {
        #[test]
        fn scores_are_in_unit_interval(
            gold in proptest::collection::vec(0usize..4, 0..30),
            pred_seed in proptest::collection::vec(0usize..4, 0..30),
        ) {
            let n = gold.len().min(pred_seed.len());
            let s = pairwise_scores(&gold[..n], &pred_seed[..n]);
            prop_assert!((0.0..=1.0).contains(&s.precision));
            prop_assert!((0.0..=1.0).contains(&s.recall));
            prop_assert!((0.0..=1.0).contains(&s.f_measure));
            prop_assert!(s.f_measure <= s.precision.max(s.recall) + 1e-12);
            prop_assert!(s.f_measure >= 0.0);
        }

        #[test]
        fn identical_labelings_are_perfect(
            gold in proptest::collection::vec(0usize..5, 1..40),
        ) {
            let s = pairwise_scores(&gold, &gold);
            prop_assert_eq!(s.f_measure, 1.0);
        }

        #[test]
        fn refining_prediction_keeps_precision_at_one(
            gold in proptest::collection::vec(0usize..3, 2..30),
        ) {
            // A prediction that splits gold clusters further (here: every
            // item alone) can never create a false positive.
            let pred: Vec<usize> = (0..gold.len()).collect();
            let c = PairCounts::from_labels(&gold, &pred);
            prop_assert_eq!(c.fp, 0);
        }
    }
}
